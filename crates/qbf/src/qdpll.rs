//! A search-based QDPLL solver for prenex-CNF QBF.
//!
//! This deliberately models the *general-purpose* QBF solvers the paper
//! evaluated in 2005 (QuBE/semprop/Quaffle class): DPLL search that
//! respects the quantifier prefix, with
//!
//! * unit propagation under universal reduction,
//! * pure-literal elimination (existential: satisfy; universal:
//!   falsify),
//! * chronological backtracking (existential decisions retried on
//!   conflict, universal decisions retried on satisfaction),
//! * decision/wall-clock budgets returning [`QbfResult::Unknown`].
//!
//! The paper's finding — that such solvers collapse on the BMC
//! formulations (2) and (3) — reproduces with this solver; see
//! experiment E1.

use std::time::Instant;

use sebmc_logic::{Lit, Var};

use crate::formula::{QbfFormula, Quantifier};

/// Verdict of a QBF solver.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QbfResult {
    /// The formula is true (valid).
    True,
    /// The formula is false.
    False,
    /// A resource budget was exhausted.
    Unknown,
}

impl QbfResult {
    /// `true` when a definite verdict was reached.
    pub fn is_decided(self) -> bool {
        self != QbfResult::Unknown
    }
}

/// Resource budgets for a QBF solve call.
#[derive(Clone, Debug, Default)]
pub struct QbfLimits {
    /// Maximum number of decisions.
    pub max_decisions: Option<u64>,
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag, polled at the same cadence as the
    /// deadline; a stored `true` aborts the solve with
    /// [`QbfResult::Unknown`].
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl QbfLimits {
    /// No limits.
    pub fn none() -> Self {
        QbfLimits::default()
    }
}

/// Search statistics of a QDPLL run.
#[derive(Clone, Debug, Default)]
pub struct QdpllStats {
    /// Decisions made.
    pub decisions: u64,
    /// Unit/pure propagations applied.
    pub propagations: u64,
    /// Conflicts (matrix falsified) encountered.
    pub conflicts: u64,
    /// Subtree satisfactions (matrix satisfied) encountered.
    pub satisfactions: u64,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Prop {
    Conflict,
    AllSat,
    Open,
}

#[derive(Debug)]
struct Frame {
    var: Var,
    quantifier: Quantifier,
    phase: bool,
    flipped: bool,
    trail_mark: usize,
}

/// The QDPLL solver. Create one, optionally set limits, then call
/// [`QdpllSolver::solve`].
///
/// ```
/// use sebmc_logic::{Cnf, Var};
/// use sebmc_qbf::{QbfFormula, QbfResult, QdpllSolver, Quantifier};
///
/// // ∀x ∃y. (x ↔ y)
/// let (x, y) = (Var::new(0), Var::new(1));
/// let mut m = Cnf::new();
/// m.add_equiv(x.positive(), y.positive());
/// let mut qbf = QbfFormula::new(m);
/// qbf.push_block(Quantifier::ForAll, [x]);
/// qbf.push_block(Quantifier::Exists, [y]);
/// assert_eq!(QdpllSolver::new().solve(&qbf), QbfResult::True);
/// ```
#[derive(Debug, Default)]
pub struct QdpllSolver {
    limits: QbfLimits,
    stats: QdpllStats,
    // Per-solve state.
    clauses: Vec<Vec<Lit>>,
    level: Vec<usize>,
    quant: Vec<Quantifier>,
    assign: Vec<Option<bool>>,
    trail: Vec<Var>,
    frames: Vec<Frame>,
    order: Vec<Var>,
}

impl QdpllSolver {
    /// Creates a solver with no limits.
    pub fn new() -> Self {
        QdpllSolver::default()
    }

    /// Creates a solver with the given budgets.
    pub fn with_limits(limits: QbfLimits) -> Self {
        QdpllSolver {
            limits,
            ..QdpllSolver::default()
        }
    }

    /// Sets the budgets for subsequent solves.
    pub fn set_limits(&mut self, limits: QbfLimits) {
        self.limits = limits;
    }

    /// Statistics of the most recent solve.
    pub fn stats(&self) -> &QdpllStats {
        &self.stats
    }

    /// Decides the truth of `qbf` (free variables are treated as
    /// outermost existentials).
    pub fn solve(&mut self, qbf: &QbfFormula) -> QbfResult {
        let mut closed = qbf.clone();
        closed.close();
        debug_assert!(closed.validate().is_ok());
        self.stats = QdpllStats::default();
        let n = closed.matrix().num_vars();
        // Drop tautologies (a tautological clause must never reach the
        // universal-reduction conflict rule) and merge duplicates.
        self.clauses = closed
            .matrix()
            .iter()
            .filter_map(|c| {
                let mut c = c.clone();
                let tautology = c.normalize();
                (!tautology).then(|| c.lits().to_vec())
            })
            .collect();
        self.level = vec![0; n];
        self.quant = vec![Quantifier::Exists; n];
        for (i, block) in closed.prefix().iter().enumerate() {
            for v in &block.vars {
                self.level[v.index()] = i;
                self.quant[v.index()] = block.quantifier;
            }
        }
        self.assign = vec![None; n];
        self.trail.clear();
        self.frames.clear();
        // Decision order: outermost block first; stable within a block.
        self.order = closed
            .prefix()
            .iter()
            .flat_map(|b| b.vars.iter().copied())
            .collect();

        self.run()
    }

    fn run(&mut self) -> QbfResult {
        loop {
            if self.budget_exhausted() {
                return QbfResult::Unknown;
            }
            match self.propagate() {
                Prop::Conflict => {
                    self.stats.conflicts += 1;
                    if !self.backtrack(Quantifier::Exists) {
                        return QbfResult::False;
                    }
                }
                Prop::AllSat => {
                    self.stats.satisfactions += 1;
                    if !self.backtrack(Quantifier::ForAll) {
                        return QbfResult::True;
                    }
                }
                Prop::Open => {
                    let v = self
                        .order
                        .iter()
                        .copied()
                        .find(|v| self.assign[v.index()].is_none())
                        .expect("open state must have an unassigned variable");
                    self.stats.decisions += 1;
                    self.frames.push(Frame {
                        var: v,
                        quantifier: self.quant[v.index()],
                        phase: false,
                        flipped: false,
                        trail_mark: self.trail.len(),
                    });
                    self.assign_var(v, false);
                }
            }
        }
    }

    /// Pops frames until a decision of quantifier `kind` can be flipped;
    /// returns `false` when the search space is exhausted.
    fn backtrack(&mut self, kind: Quantifier) -> bool {
        while let Some(mut frame) = self.frames.pop() {
            // Undo everything from this frame on (including its var).
            while self.trail.len() > frame.trail_mark {
                let v = self.trail.pop().expect("trail non-empty");
                self.assign[v.index()] = None;
            }
            if frame.quantifier == kind && !frame.flipped {
                frame.phase = !frame.phase;
                frame.flipped = true;
                let (v, phase) = (frame.var, frame.phase);
                self.frames.push(frame);
                self.assign_var(v, phase);
                return true;
            }
        }
        false
    }

    fn assign_var(&mut self, v: Var, value: bool) {
        debug_assert!(self.assign[v.index()].is_none());
        self.assign[v.index()] = Some(value);
        self.trail.push(v);
    }

    fn lit_val(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().index()].map(|b| l.apply(b))
    }

    /// Unit/pure propagation to fixpoint under universal reduction.
    fn propagate(&mut self) -> Prop {
        loop {
            let mut changed = false;
            let mut all_sat = true;
            for ci in 0..self.clauses.len() {
                let mut satisfied = false;
                let mut unassigned_exists: Option<Lit> = None;
                let mut n_exists = 0usize;
                let mut min_univ_level = usize::MAX;
                for i in 0..self.clauses[ci].len() {
                    let l = self.clauses[ci][i];
                    match self.lit_val(l) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            let v = l.var();
                            match self.quant[v.index()] {
                                Quantifier::Exists => {
                                    n_exists += 1;
                                    unassigned_exists = Some(l);
                                }
                                Quantifier::ForAll => {
                                    min_univ_level = min_univ_level.min(self.level[v.index()]);
                                }
                            }
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                all_sat = false;
                if n_exists == 0 {
                    // Every unassigned literal is universal, hence
                    // reducible: the clause is falsified.
                    return Prop::Conflict;
                }
                if n_exists == 1 {
                    let e = unassigned_exists.expect("one existential literal");
                    // Unit under universal reduction: all unassigned
                    // universals are inner to the existential literal.
                    if min_univ_level == usize::MAX || min_univ_level > self.level[e.var().index()]
                    {
                        self.stats.propagations += 1;
                        self.assign_var(e.var(), e.is_positive());
                        changed = true;
                    }
                }
            }
            if all_sat {
                return Prop::AllSat;
            }
            if changed {
                continue;
            }
            if self.apply_pure_literals() {
                continue;
            }
            return Prop::Open;
        }
    }

    /// Pure-literal rule; returns `true` if any assignment was made.
    fn apply_pure_literals(&mut self) -> bool {
        let n = self.assign.len();
        let mut pos = vec![false; n];
        let mut neg = vec![false; n];
        for clause in &self.clauses {
            if clause.iter().any(|&l| self.lit_val(l) == Some(true)) {
                continue;
            }
            for &l in clause {
                if self.lit_val(l).is_none() {
                    if l.is_positive() {
                        pos[l.var().index()] = true;
                    } else {
                        neg[l.var().index()] = true;
                    }
                }
            }
        }
        let mut changed = false;
        for i in 0..n {
            if self.assign[i].is_some() || (pos[i] && neg[i]) || (!pos[i] && !neg[i]) {
                continue;
            }
            let v = Var::new(i as u32);
            let appears_positive = pos[i];
            let value = match self.quant[i] {
                // Existential: satisfy the occurrences.
                Quantifier::Exists => appears_positive,
                // Universal: falsify them (hardest case).
                Quantifier::ForAll => !appears_positive,
            };
            self.stats.propagations += 1;
            self.assign_var(v, value);
            changed = true;
        }
        changed
    }

    fn budget_exhausted(&self) -> bool {
        if let Some(md) = self.limits.max_decisions {
            if self.stats.decisions >= md {
                return true;
            }
        }
        if let Some(ref c) = self.limits.cancel {
            if c.load(std::sync::atomic::Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.limits.deadline {
            if self.stats.decisions.is_multiple_of(32) && Instant::now() >= d {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_logic::Cnf;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    fn check_against_semantics(qbf: &QbfFormula) {
        let expect = qbf.eval_semantic();
        let got = QdpllSolver::new().solve(qbf);
        assert_eq!(
            got,
            if expect {
                QbfResult::True
            } else {
                QbfResult::False
            },
            "QDPLL disagrees with semantics on {qbf}\nmatrix: {:?}",
            qbf.matrix()
        );
    }

    #[test]
    fn forall_exists_copy_true() {
        let mut m = Cnf::new();
        m.add_equiv(v(0).positive(), v(1).positive());
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::ForAll, [v(0)]);
        q.push_block(Quantifier::Exists, [v(1)]);
        check_against_semantics(&q);
    }

    #[test]
    fn exists_forall_copy_false() {
        let mut m = Cnf::new();
        m.add_equiv(v(0).positive(), v(1).positive());
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::Exists, [v(1)]);
        q.push_block(Quantifier::ForAll, [v(0)]);
        check_against_semantics(&q);
    }

    #[test]
    fn propositional_formulas_reduce_to_sat() {
        let mut m = Cnf::new();
        m.add_binary(v(0).positive(), v(1).positive());
        m.add_unit(v(0).negative());
        let q = QbfFormula::new(m);
        assert_eq!(QdpllSolver::new().solve(&q), QbfResult::True);

        let mut m2 = Cnf::new();
        m2.add_unit(v(0).positive());
        m2.add_unit(v(0).negative());
        let q2 = QbfFormula::new(m2);
        assert_eq!(QdpllSolver::new().solve(&q2), QbfResult::False);
    }

    #[test]
    fn universal_unit_clause_false() {
        let mut m = Cnf::new();
        m.add_unit(v(0).positive());
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::ForAll, [v(0)]);
        check_against_semantics(&q);
    }

    #[test]
    fn universal_reduction_makes_unit() {
        // ∃e ∀u. (e ∨ u): reduction strips u ⇒ e must be true; formula true.
        let mut m = Cnf::new();
        m.add_binary(v(0).positive(), v(1).positive());
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::Exists, [v(0)]);
        q.push_block(Quantifier::ForAll, [v(1)]);
        check_against_semantics(&q);
        // And the occurrence is propagated, not decided.
        let mut s = QdpllSolver::new();
        s.solve(&q);
        assert!(s.stats().propagations > 0);
    }

    #[test]
    fn two_alternation_formula() {
        // ∀a ∃b ∀c ∃d. (a↔b) ∧ (c↔d): true.
        let mut m = Cnf::new();
        m.add_equiv(v(0).positive(), v(1).positive());
        m.add_equiv(v(2).positive(), v(3).positive());
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::ForAll, [v(0)]);
        q.push_block(Quantifier::Exists, [v(1)]);
        q.push_block(Quantifier::ForAll, [v(2)]);
        q.push_block(Quantifier::Exists, [v(3)]);
        check_against_semantics(&q);
    }

    #[test]
    fn prefix_order_matters() {
        // ∃b ∀c. (b↔c) is false even though ∀c ∃b would be true.
        let mut m = Cnf::new();
        m.add_equiv(v(0).positive(), v(1).positive());
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::Exists, [v(0)]);
        q.push_block(Quantifier::ForAll, [v(1)]);
        check_against_semantics(&q);
    }

    #[test]
    fn decision_budget_yields_unknown() {
        // A formula needing search, with a zero-decision budget.
        let mut m = Cnf::new();
        // (a∨b)(¬a∨b)(a∨¬b): satisfiable (a=b=1) but needs a decision.
        m.add_binary(v(0).positive(), v(1).positive());
        m.add_binary(v(0).negative(), v(1).positive());
        m.add_binary(v(0).positive(), v(1).negative());
        let q = QbfFormula::new(m);
        let mut s = QdpllSolver::with_limits(QbfLimits {
            max_decisions: Some(0),
            ..QbfLimits::none()
        });
        assert_eq!(s.solve(&q), QbfResult::Unknown);
    }

    #[test]
    fn deadline_in_past_yields_unknown() {
        let mut m = Cnf::new();
        m.add_binary(v(0).positive(), v(1).positive());
        let q = QbfFormula::new(m);
        let mut s = QdpllSolver::with_limits(QbfLimits {
            deadline: Some(Instant::now()),
            ..QbfLimits::none()
        });
        assert_eq!(s.solve(&q), QbfResult::Unknown);
    }

    #[test]
    fn random_small_qbf_agrees_with_semantics() {
        let mut state = 0x51ed_2705u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..200 {
            let n = 3 + (rnd() % 5) as usize; // 3..=7 vars
            let mut m = Cnf::new();
            let n_clauses = 2 + (rnd() % (2 * n as u64 + 1)) as usize;
            for _ in 0..n_clauses {
                let len = 1 + (rnd() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..len {
                    c.push(Var::new((rnd() % n as u64) as u32).lit(rnd() % 2 == 0));
                }
                m.add_clause(c);
            }
            m.ensure_vars(n);
            let mut q = QbfFormula::new(m);
            // Random prefix over all vars with random block boundaries.
            let mut quant = if rnd() % 2 == 0 {
                Quantifier::Exists
            } else {
                Quantifier::ForAll
            };
            let mut block = Vec::new();
            for i in 0..n {
                block.push(Var::new(i as u32));
                if rnd() % 3 == 0 {
                    q.push_block(quant, std::mem::take(&mut block));
                    quant = quant.dual();
                }
            }
            q.push_block(quant, block);
            check_against_semantics(&q);
        }
    }
}
