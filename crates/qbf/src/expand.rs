//! Expansion-based QBF solving (Quantor-style universal expansion).
//!
//! The second family of general-purpose QBF solvers available around
//! 2005 eliminated universal quantifiers by *expansion*:
//!
//! `Q… ∀u ∃E. M  ≡  Q… ∃E ∃E'. M[u:=0] ∧ M[u:=1, E:=E']`
//!
//! where `E` are the existential variables inner to `u`, which must be
//! duplicated in one copy. Every expanded universal doubles the inner
//! matrix, so the method is exponential in the number of universals —
//! on the paper's encodings (2) and (3) with `2n` universal state
//! variables this blows up immediately, which is exactly the observed
//! 2005 behaviour. A growth budget turns the blow-up into a clean
//! [`QbfResult::Unknown`].

use std::time::Instant;

use sebmc_logic::{Clause, Cnf, Var};
use sebmc_sat::{Limits as SatLimits, SolveResult, Solver};

use crate::formula::{QbfFormula, QuantBlock, Quantifier};
use crate::qdpll::{QbfLimits, QbfResult};

/// Budgets for the expansion solver.
#[derive(Clone, Debug)]
pub struct ExpansionLimits {
    /// Maximum number of matrix literals the expansion may reach before
    /// giving up (the memory-explosion guard).
    pub max_matrix_literals: usize,
    /// Budgets passed to the final SAT call (and used for the deadline
    /// during expansion).
    pub base: QbfLimits,
}

impl Default for ExpansionLimits {
    fn default() -> Self {
        ExpansionLimits {
            max_matrix_literals: 10_000_000,
            base: QbfLimits::none(),
        }
    }
}

/// Statistics of an expansion run.
#[derive(Clone, Debug, Default)]
pub struct ExpansionStats {
    /// Universal variables expanded.
    pub expanded_universals: u64,
    /// Peak matrix literal count reached during expansion.
    pub peak_matrix_literals: usize,
    /// Fresh variables introduced by duplication.
    pub duplicated_vars: u64,
}

/// Expansion-based QBF solver: eliminates universals innermost-first,
/// then hands the purely existential matrix to the CDCL SAT solver.
///
/// ```
/// use sebmc_logic::{Cnf, Var};
/// use sebmc_qbf::{ExpansionSolver, QbfFormula, QbfResult, Quantifier};
///
/// // ∀x ∃y. (x ↔ y)
/// let (x, y) = (Var::new(0), Var::new(1));
/// let mut m = Cnf::new();
/// m.add_equiv(x.positive(), y.positive());
/// let mut qbf = QbfFormula::new(m);
/// qbf.push_block(Quantifier::ForAll, [x]);
/// qbf.push_block(Quantifier::Exists, [y]);
/// assert_eq!(ExpansionSolver::new().solve(&qbf), QbfResult::True);
/// ```
#[derive(Debug, Default)]
pub struct ExpansionSolver {
    limits: ExpansionLimits,
    stats: ExpansionStats,
}

impl ExpansionSolver {
    /// Creates a solver with default (large) growth budgets.
    pub fn new() -> Self {
        ExpansionSolver::default()
    }

    /// Creates a solver with the given budgets.
    pub fn with_limits(limits: ExpansionLimits) -> Self {
        ExpansionSolver {
            limits,
            stats: ExpansionStats::default(),
        }
    }

    /// Sets the budgets for subsequent solves.
    pub fn set_limits(&mut self, limits: ExpansionLimits) {
        self.limits = limits;
    }

    /// Statistics of the most recent solve.
    pub fn stats(&self) -> &ExpansionStats {
        &self.stats
    }

    /// Decides the truth of `qbf`.
    pub fn solve(&mut self, qbf: &QbfFormula) -> QbfResult {
        self.stats = ExpansionStats::default();
        let mut work = qbf.clone();
        work.close();
        debug_assert!(work.validate().is_ok());
        let (mut prefix, mut matrix) = work.into_parts();

        // Expand universals from the innermost universal block outward.
        while let Some(ub) = prefix
            .iter()
            .rposition(|b| b.quantifier == Quantifier::ForAll)
        {
            if self.deadline_passed() {
                return QbfResult::Unknown;
            }
            // All blocks after `ub` are existential: collect their vars.
            let inner_exists: Vec<Var> = prefix[ub + 1..]
                .iter()
                .flat_map(|b| b.vars.iter().copied())
                .collect();
            let u = prefix[ub]
                .vars
                .pop()
                .expect("universal blocks are non-empty");
            if prefix[ub].vars.is_empty() {
                prefix.remove(ub);
            }
            match self.expand_one(u, &inner_exists, &matrix) {
                Some((new_matrix, renamed)) => {
                    matrix = new_matrix;
                    self.stats.expanded_universals += 1;
                    self.stats.peak_matrix_literals =
                        self.stats.peak_matrix_literals.max(matrix.num_literals());
                    // The duplicated variables join (or form) the
                    // innermost existential block.
                    if !renamed.is_empty() {
                        self.stats.duplicated_vars += renamed.len() as u64;
                        if let Some(last) = prefix.last_mut() {
                            if last.quantifier == Quantifier::Exists {
                                last.vars.extend(renamed);
                            } else {
                                prefix.push(QuantBlock {
                                    quantifier: Quantifier::Exists,
                                    vars: renamed,
                                });
                            }
                        } else {
                            prefix.push(QuantBlock {
                                quantifier: Quantifier::Exists,
                                vars: renamed,
                            });
                        }
                    }
                }
                None => return QbfResult::Unknown,
            }
        }

        // Purely existential: SAT.
        let mut sat = Solver::new();
        sat.set_limits(SatLimits {
            deadline: self.limits.base.deadline,
            cancel: self.limits.base.cancel.clone(),
            ..SatLimits::none()
        });
        if !sat.add_cnf(&matrix) {
            return QbfResult::False;
        }
        match sat.solve() {
            SolveResult::Sat => QbfResult::True,
            SolveResult::Unsat => QbfResult::False,
            SolveResult::Unknown => QbfResult::Unknown,
        }
    }

    /// Expands a single universal variable; returns the new matrix and
    /// the fresh names introduced for `inner_exists`, or `None` if the
    /// growth budget is hit.
    fn expand_one(&self, u: Var, inner_exists: &[Var], matrix: &Cnf) -> Option<(Cnf, Vec<Var>)> {
        // Upper bound on result size: 2× current.
        if matrix.num_literals() * 2 > self.limits.max_matrix_literals {
            return None;
        }
        let mut next_var = matrix.num_vars() as u32;
        let mut rename: Vec<Option<Var>> = vec![None; matrix.num_vars()];
        let mut renamed = Vec::with_capacity(inner_exists.len());
        for &e in inner_exists {
            let fresh = Var::new(next_var);
            next_var += 1;
            rename[e.index()] = Some(fresh);
            renamed.push(fresh);
        }
        let mut out = Cnf::with_vars(matrix.num_vars());
        // Copy 1: u := false (drop ¬u-satisfied clauses, strip u lits).
        // Copy 2: u := true, inner existentials renamed.
        for clause in matrix.iter() {
            if let Some(c) = substitute(clause, u, false, None) {
                out.push(c);
            }
            if let Some(c) = substitute(clause, u, true, Some(&rename)) {
                out.push(c);
            }
        }
        out.ensure_vars(next_var as usize);
        Some((out, renamed))
    }

    fn deadline_passed(&self) -> bool {
        if let Some(ref c) = self.limits.base.cancel {
            if c.load(std::sync::atomic::Ordering::Relaxed) {
                return true;
            }
        }
        self.limits
            .base
            .deadline
            .is_some_and(|d| Instant::now() >= d)
    }
}

/// Applies `u := value` to a clause; returns `None` if the clause is
/// satisfied. If `rename` is given, maps variables through it.
fn substitute(
    clause: &Clause,
    u: Var,
    value: bool,
    rename: Option<&[Option<Var>]>,
) -> Option<Clause> {
    let mut out = Clause::new();
    for &l in clause {
        if l.var() == u {
            if l.apply(value) {
                return None; // clause satisfied
            }
            continue; // literal falsified: drop
        }
        let mapped = match rename.and_then(|r| r[l.var().index()]) {
            Some(fresh) => fresh.lit(l.is_positive()),
            None => l,
        };
        out.push(mapped);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    fn check(qbf: &QbfFormula) {
        let expect = qbf.eval_semantic();
        let got = ExpansionSolver::new().solve(qbf);
        assert_eq!(
            got,
            if expect {
                QbfResult::True
            } else {
                QbfResult::False
            },
            "expansion disagrees with semantics on {qbf}"
        );
    }

    #[test]
    fn forall_exists_copy() {
        let mut m = Cnf::new();
        m.add_equiv(v(0).positive(), v(1).positive());
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::ForAll, [v(0)]);
        q.push_block(Quantifier::Exists, [v(1)]);
        check(&q);
    }

    #[test]
    fn exists_forall_copy() {
        let mut m = Cnf::new();
        m.add_equiv(v(0).positive(), v(1).positive());
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::Exists, [v(1)]);
        q.push_block(Quantifier::ForAll, [v(0)]);
        check(&q);
    }

    #[test]
    fn multiple_universals_expand() {
        // ∀a,b ∃c. (c ↔ a∧b) is true (c := a∧b) — expressed in CNF via
        // the three Tseitin clauses of c = a∧b.
        let (a, b, c) = (v(0), v(1), v(2));
        let mut m = Cnf::new();
        m.add_binary(c.negative(), a.positive());
        m.add_binary(c.negative(), b.positive());
        m.add_ternary(a.negative(), b.negative(), c.positive());
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::ForAll, [a, b]);
        q.push_block(Quantifier::Exists, [c]);
        check(&q);
        let mut s = ExpansionSolver::new();
        s.solve(&q);
        assert_eq!(s.stats().expanded_universals, 2);
        assert!(s.stats().duplicated_vars > 0);
    }

    #[test]
    fn growth_budget_gives_unknown() {
        // Many universals over a chain: cap the matrix tightly.
        let n = 10;
        let mut m = Cnf::new();
        for i in 0..n {
            m.add_binary(v(i).positive(), v(i + 1).negative());
        }
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::ForAll, (0..=n).map(v));
        let mut s = ExpansionSolver::with_limits(ExpansionLimits {
            max_matrix_literals: 8,
            base: QbfLimits::none(),
        });
        assert_eq!(s.solve(&q), QbfResult::Unknown);
    }

    #[test]
    fn propositional_falls_through_to_sat() {
        let mut m = Cnf::new();
        m.add_unit(v(0).positive());
        m.add_unit(v(0).negative());
        let q = QbfFormula::new(m);
        assert_eq!(ExpansionSolver::new().solve(&q), QbfResult::False);
    }

    #[test]
    fn random_small_qbf_agrees_with_semantics() {
        let mut state = 0x00c0_ffeeu64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..150 {
            let n = 3 + (rnd() % 4) as usize;
            let mut m = Cnf::new();
            let n_clauses = 2 + (rnd() % (2 * n as u64)) as usize;
            for _ in 0..n_clauses {
                let len = 1 + (rnd() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..len {
                    c.push(Var::new((rnd() % n as u64) as u32).lit(rnd() % 2 == 0));
                }
                m.add_clause(c);
            }
            m.ensure_vars(n);
            let mut q = QbfFormula::new(m);
            let mut quant = if rnd() % 2 == 0 {
                Quantifier::Exists
            } else {
                Quantifier::ForAll
            };
            let mut block = Vec::new();
            for i in 0..n {
                block.push(Var::new(i as u32));
                if rnd() % 3 == 0 {
                    q.push_block(quant, std::mem::take(&mut block));
                    quant = quant.dual();
                }
            }
            q.push_block(quant, block);
            check(&q);
        }
    }
}
