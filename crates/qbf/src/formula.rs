//! Prenex-CNF quantified Boolean formulae.
//!
//! A QBF here is a quantifier prefix (a sequence of ∃/∀ blocks, the
//! outermost first) over a CNF matrix. This is the shape produced by
//! the paper's encodings (2) and (3): the linear encoding has the
//! ∃∀∃ pattern, iterative squaring adds one alternation per level.

use std::fmt;

use sebmc_logic::{Cnf, Var};

/// A quantifier kind.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// Existential (`∃`).
    Exists,
    /// Universal (`∀`).
    ForAll,
}

impl Quantifier {
    /// The other quantifier.
    pub fn dual(self) -> Quantifier {
        match self {
            Quantifier::Exists => Quantifier::ForAll,
            Quantifier::ForAll => Quantifier::Exists,
        }
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Exists => write!(f, "exists"),
            Quantifier::ForAll => write!(f, "forall"),
        }
    }
}

/// One block of identically quantified variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantBlock {
    /// The block's quantifier.
    pub quantifier: Quantifier,
    /// The variables bound by this block.
    pub vars: Vec<Var>,
}

/// A prenex-CNF QBF: quantifier prefix (outermost first) over a CNF
/// matrix. Unquantified matrix variables are treated as outermost
/// existentials (the QDIMACS convention), made explicit by
/// [`QbfFormula::close`].
///
/// ```
/// use sebmc_logic::{Cnf, Var};
/// use sebmc_qbf::{QbfFormula, Quantifier};
///
/// // ∀x ∃y. (x ↔ y)   — true: y can copy x.
/// let (x, y) = (Var::new(0), Var::new(1));
/// let mut m = Cnf::new();
/// m.add_equiv(x.positive(), y.positive());
/// let mut qbf = QbfFormula::new(m);
/// qbf.push_block(Quantifier::ForAll, [x]);
/// qbf.push_block(Quantifier::Exists, [y]);
/// assert!(qbf.eval_semantic());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QbfFormula {
    prefix: Vec<QuantBlock>,
    matrix: Cnf,
}

impl QbfFormula {
    /// Creates a QBF with an empty prefix over `matrix`.
    pub fn new(matrix: Cnf) -> Self {
        QbfFormula {
            prefix: Vec::new(),
            matrix,
        }
    }

    /// Appends a quantifier block (innermost position). Adjacent blocks
    /// with the same quantifier are merged; empty blocks are dropped.
    pub fn push_block<I: IntoIterator<Item = Var>>(&mut self, q: Quantifier, vars: I) {
        let vars: Vec<Var> = vars.into_iter().collect();
        if vars.is_empty() {
            return;
        }
        for v in &vars {
            self.matrix.ensure_vars(v.index() + 1);
        }
        if let Some(last) = self.prefix.last_mut() {
            if last.quantifier == q {
                last.vars.extend(vars);
                return;
            }
        }
        self.prefix.push(QuantBlock {
            quantifier: q,
            vars,
        });
    }

    /// The quantifier prefix, outermost block first.
    pub fn prefix(&self) -> &[QuantBlock] {
        &self.prefix
    }

    /// The CNF matrix.
    pub fn matrix(&self) -> &Cnf {
        &self.matrix
    }

    /// Mutable access to the matrix (for in-place strengthening).
    pub fn matrix_mut(&mut self) -> &mut Cnf {
        &mut self.matrix
    }

    /// Consumes the formula, returning prefix and matrix.
    pub fn into_parts(self) -> (Vec<QuantBlock>, Cnf) {
        (self.prefix, self.matrix)
    }

    /// Binds every matrix variable missing from the prefix in a new
    /// *outermost* existential block (the QDIMACS free-variable rule).
    pub fn close(&mut self) {
        let mut bound = vec![false; self.matrix.num_vars()];
        for b in &self.prefix {
            for v in &b.vars {
                bound[v.index()] = true;
            }
        }
        let free: Vec<Var> = (0..self.matrix.num_vars())
            .filter(|&i| !bound[i])
            .map(|i| Var::new(i as u32))
            .collect();
        if free.is_empty() {
            return;
        }
        if let Some(first) = self.prefix.first_mut() {
            if first.quantifier == Quantifier::Exists {
                first.vars.splice(0..0, free);
                return;
            }
        }
        self.prefix.insert(
            0,
            QuantBlock {
                quantifier: Quantifier::Exists,
                vars: free,
            },
        );
    }

    /// Quantifier of `v`, or `None` if unbound.
    pub fn quantifier_of(&self, v: Var) -> Option<Quantifier> {
        self.level_of(v).map(|l| self.prefix[l].quantifier)
    }

    /// Index of the prefix block binding `v` (0 = outermost), or `None`.
    pub fn level_of(&self, v: Var) -> Option<usize> {
        self.prefix.iter().position(|b| b.vars.contains(&v))
    }

    /// A dense lookup table: `table[v] = Some((block_index, quantifier))`.
    pub fn level_table(&self) -> Vec<Option<(usize, Quantifier)>> {
        let mut table = vec![None; self.matrix.num_vars()];
        for (i, b) in self.prefix.iter().enumerate() {
            for v in &b.vars {
                table[v.index()] = Some((i, b.quantifier));
            }
        }
        table
    }

    /// Number of universally quantified variables — the paper tracks
    /// this per encoding (constant for (2), growing for (3)).
    pub fn num_universals(&self) -> usize {
        self.prefix
            .iter()
            .filter(|b| b.quantifier == Quantifier::ForAll)
            .map(|b| b.vars.len())
            .sum()
    }

    /// Number of existentially quantified variables.
    pub fn num_existentials(&self) -> usize {
        self.prefix
            .iter()
            .filter(|b| b.quantifier == Quantifier::Exists)
            .map(|b| b.vars.len())
            .sum()
    }

    /// Number of quantifier alternations in the prefix (blocks − 1 after
    /// merging; 0 for a purely existential formula).
    pub fn num_alternations(&self) -> usize {
        self.prefix.len().saturating_sub(1)
    }

    /// Total bound variables.
    pub fn num_bound_vars(&self) -> usize {
        self.prefix.iter().map(|b| b.vars.len()).sum()
    }

    /// Checks structural sanity: no variable bound twice, every matrix
    /// variable bound. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.matrix.num_vars()];
        for b in &self.prefix {
            for v in &b.vars {
                if v.index() >= seen.len() {
                    return Err(format!("prefix binds unknown variable {v}"));
                }
                if seen[v.index()] {
                    return Err(format!("variable {v} bound twice"));
                }
                seen[v.index()] = true;
            }
        }
        for v in self.matrix.occurring_vars() {
            if !seen[v.index()] {
                return Err(format!("matrix variable {v} is unbound"));
            }
        }
        Ok(())
    }

    /// Semantic truth of the QBF by exhaustive two-player evaluation.
    /// Exponential; intended for tests and tiny formulae only.
    ///
    /// Unbound matrix variables are treated as outermost existentials.
    ///
    /// # Panics
    ///
    /// Panics if more than 24 variables would need enumeration.
    pub fn eval_semantic(&self) -> bool {
        let mut closed = self.clone();
        closed.close();
        assert!(
            closed.matrix.num_vars() <= 24,
            "semantic evaluation limited to 24 variables"
        );
        let order: Vec<(Var, Quantifier)> = closed
            .prefix
            .iter()
            .flat_map(|b| b.vars.iter().map(move |&v| (v, b.quantifier)))
            .collect();
        let mut assignment = vec![false; closed.matrix.num_vars()];
        eval_rec(&closed.matrix, &order, 0, &mut assignment)
    }
}

fn eval_rec(
    matrix: &Cnf,
    order: &[(Var, Quantifier)],
    i: usize,
    assignment: &mut Vec<bool>,
) -> bool {
    if i == order.len() {
        return matrix.eval(assignment);
    }
    let (v, q) = order[i];
    let mut result = q == Quantifier::ForAll;
    for value in [false, true] {
        assignment[v.index()] = value;
        let sub = eval_rec(matrix, order, i + 1, assignment);
        match q {
            Quantifier::Exists => result = result || sub,
            Quantifier::ForAll => result = result && sub,
        }
        // Short-circuit.
        if (q == Quantifier::Exists && result) || (q == Quantifier::ForAll && !result) {
            break;
        }
    }
    result
}

impl fmt::Display for QbfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.prefix {
            let sym = match b.quantifier {
                Quantifier::Exists => "∃",
                Quantifier::ForAll => "∀",
            };
            write!(f, "{sym}")?;
            for v in &b.vars {
                write!(f, " {v}")?;
            }
            write!(f, ". ")?;
        }
        write!(
            f,
            "[{} vars, {} clauses]",
            self.matrix.num_vars(),
            self.matrix.num_clauses()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_logic::Lit;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    fn pos(i: u32) -> Lit {
        v(i).positive()
    }

    #[test]
    fn push_block_merges_adjacent_same_quantifier() {
        let mut q = QbfFormula::new(Cnf::new());
        q.push_block(Quantifier::Exists, [v(0)]);
        q.push_block(Quantifier::Exists, [v(1)]);
        q.push_block(Quantifier::ForAll, [v(2)]);
        q.push_block(Quantifier::Exists, []);
        assert_eq!(q.prefix().len(), 2);
        assert_eq!(q.num_alternations(), 1);
        assert_eq!(q.num_existentials(), 2);
        assert_eq!(q.num_universals(), 1);
    }

    #[test]
    fn close_binds_free_vars_outermost() {
        let mut m = Cnf::new();
        m.add_binary(pos(0), pos(1));
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::ForAll, [v(1)]);
        q.close();
        assert_eq!(q.prefix()[0].quantifier, Quantifier::Exists);
        assert_eq!(q.prefix()[0].vars, vec![v(0)]);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn close_prepends_to_existing_exists_block() {
        let mut m = Cnf::new();
        m.add_binary(pos(0), pos(1));
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::Exists, [v(1)]);
        q.close();
        assert_eq!(q.prefix().len(), 1);
        assert_eq!(q.prefix()[0].vars, vec![v(0), v(1)]);
    }

    #[test]
    fn validate_rejects_double_binding_and_unbound() {
        let mut m = Cnf::new();
        m.add_unit(pos(0));
        let mut q = QbfFormula::new(m.clone());
        q.push_block(Quantifier::Exists, [v(0)]);
        q.push_block(Quantifier::ForAll, [v(0)]);
        assert!(q.validate().unwrap_err().contains("bound twice"));

        let q2 = QbfFormula::new(m);
        assert!(q2.validate().unwrap_err().contains("unbound"));
    }

    #[test]
    fn semantic_eval_forall_exists_copy() {
        // ∀x ∃y. (x ↔ y) is true.
        let mut m = Cnf::new();
        m.add_equiv(pos(0), pos(1));
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::ForAll, [v(0)]);
        q.push_block(Quantifier::Exists, [v(1)]);
        assert!(q.eval_semantic());
    }

    #[test]
    fn semantic_eval_exists_forall_copy_is_false() {
        // ∃y ∀x. (x ↔ y) is false.
        let mut m = Cnf::new();
        m.add_equiv(pos(0), pos(1));
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::Exists, [v(1)]);
        q.push_block(Quantifier::ForAll, [v(0)]);
        assert!(!q.eval_semantic());
    }

    #[test]
    fn semantic_eval_universal_tautology() {
        // ∀x. (x ∨ ¬x) is true.
        let mut m = Cnf::new();
        m.add_binary(pos(0), !pos(0));
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::ForAll, [v(0)]);
        assert!(q.eval_semantic());
    }

    #[test]
    fn semantic_eval_universal_unit_is_false() {
        // ∀x. x is false.
        let mut m = Cnf::new();
        m.add_unit(pos(0));
        let mut q = QbfFormula::new(m);
        q.push_block(Quantifier::ForAll, [v(0)]);
        assert!(!q.eval_semantic());
    }

    #[test]
    fn free_vars_are_existential_in_semantics() {
        // Matrix: x. Free x ⇒ ∃x. x ⇒ true.
        let mut m = Cnf::new();
        m.add_unit(pos(0));
        let q = QbfFormula::new(m);
        assert!(q.eval_semantic());
    }

    #[test]
    fn level_table_and_lookup() {
        let mut q = QbfFormula::new(Cnf::with_vars(3));
        q.push_block(Quantifier::Exists, [v(0)]);
        q.push_block(Quantifier::ForAll, [v(2)]);
        assert_eq!(q.quantifier_of(v(0)), Some(Quantifier::Exists));
        assert_eq!(q.quantifier_of(v(2)), Some(Quantifier::ForAll));
        assert_eq!(q.quantifier_of(v(1)), None);
        let table = q.level_table();
        assert_eq!(table[0], Some((0, Quantifier::Exists)));
        assert_eq!(table[1], None);
        assert_eq!(table[2], Some((1, Quantifier::ForAll)));
    }

    #[test]
    fn display_is_informative() {
        let mut q = QbfFormula::new(Cnf::with_vars(2));
        q.push_block(Quantifier::ForAll, [v(0)]);
        q.push_block(Quantifier::Exists, [v(1)]);
        let s = format!("{q}");
        assert!(s.contains('∀') && s.contains('∃'));
        assert_eq!(Quantifier::Exists.dual(), Quantifier::ForAll);
    }
}
