//! Quantified Boolean formulae for the *"Space-Efficient Bounded Model
//! Checking"* (DATE 2005) reproduction.
//!
//! The paper's formulations (2) and (3) express bounded reachability as
//! prenex-CNF QBF with a single copy of the transition relation. This
//! crate provides:
//!
//! * [`QbfFormula`] — prenex-CNF QBF with quantifier-prefix statistics
//!   (number of universals, alternation depth) used by experiments
//!   E2/E3;
//! * [`QdpllSolver`] — a search-based QDPLL solver in the style of the
//!   general-purpose QBF solvers the paper evaluated (and found
//!   wanting);
//! * [`ExpansionSolver`] — a Quantor-style universal-expansion solver,
//!   the other 2005-era general-purpose approach;
//! * [`qdimacs`] — QDIMACS reading/writing for interoperability.
//!
//! Both solvers take explicit resource budgets and return
//! [`QbfResult::Unknown`] when exhausted, so the paper's per-instance
//! limits can be applied deterministically.
//!
//! # Example
//!
//! ```
//! use sebmc_logic::{Cnf, Var};
//! use sebmc_qbf::{QbfFormula, QbfResult, QdpllSolver, Quantifier};
//!
//! // ∀x ∃y. (x xor y)  — true: choose y = ¬x.
//! let (x, y) = (Var::new(0), Var::new(1));
//! let mut m = Cnf::new();
//! m.add_binary(x.positive(), y.positive());
//! m.add_binary(x.negative(), y.negative());
//! let mut qbf = QbfFormula::new(m);
//! qbf.push_block(Quantifier::ForAll, [x]);
//! qbf.push_block(Quantifier::Exists, [y]);
//! assert_eq!(QdpllSolver::new().solve(&qbf), QbfResult::True);
//! ```

#![forbid(unsafe_code)]

pub mod expand;
pub mod formula;
pub mod qdimacs;
pub mod qdpll;

pub use expand::{ExpansionLimits, ExpansionSolver, ExpansionStats};
pub use formula::{QbfFormula, QuantBlock, Quantifier};
pub use qdpll::{QbfLimits, QbfResult, QdpllSolver, QdpllStats};
