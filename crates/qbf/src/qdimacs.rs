//! QDIMACS reading and writing.
//!
//! QDIMACS extends DIMACS CNF with quantifier lines between the header
//! and the clauses: `e <vars> 0` for existential blocks and
//! `a <vars> 0` for universal blocks, outermost first.

use std::error::Error;
use std::fmt;
use std::io::{self, Write};

use sebmc_logic::{Cnf, Lit, Var};

use crate::formula::{QbfFormula, Quantifier};

/// Error produced when parsing a QDIMACS document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQdimacsError {
    /// 1-based line number (0 = end of input).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseQdimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qdimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseQdimacsError {}

impl ParseQdimacsError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseQdimacsError {
            line,
            message: message.into(),
        }
    }
}

/// Parses a QDIMACS document.
///
/// # Errors
///
/// Returns [`ParseQdimacsError`] for malformed headers, quantifier lines
/// after the first clause, unterminated lines, or out-of-range literals.
///
/// # Example
///
/// ```
/// # use sebmc_qbf::qdimacs;
/// let qbf = qdimacs::parse("p cnf 2 1\na 1 0\ne 2 0\n1 -2 0\n")?;
/// assert_eq!(qbf.num_universals(), 1);
/// assert_eq!(qbf.num_alternations(), 1);
/// # Ok::<(), sebmc_qbf::qdimacs::ParseQdimacsError>(())
/// ```
pub fn parse(input: &str) -> Result<QbfFormula, ParseQdimacsError> {
    let mut declared: Option<(usize, usize)> = None;
    let mut blocks: Vec<(Quantifier, Vec<Var>)> = Vec::new();
    let mut cnf = Cnf::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut clauses_started = false;
    let mut last_line = 0;

    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        last_line = lineno;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if trimmed.starts_with('p') {
            if declared.is_some() {
                return Err(ParseQdimacsError::new(lineno, "duplicate header"));
            }
            let parts: Vec<&str> = trimmed.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(ParseQdimacsError::new(lineno, "malformed 'p cnf' header"));
            }
            let nv = parts[2]
                .parse()
                .map_err(|_| ParseQdimacsError::new(lineno, "invalid variable count"))?;
            let nc = parts[3]
                .parse()
                .map_err(|_| ParseQdimacsError::new(lineno, "invalid clause count"))?;
            declared = Some((nv, nc));
            continue;
        }
        let (nv, _) = declared
            .ok_or_else(|| ParseQdimacsError::new(lineno, "content before 'p cnf' header"))?;
        if trimmed.starts_with('e') || trimmed.starts_with('a') {
            if clauses_started {
                return Err(ParseQdimacsError::new(
                    lineno,
                    "quantifier line after first clause",
                ));
            }
            let q = if trimmed.starts_with('e') {
                Quantifier::Exists
            } else {
                Quantifier::ForAll
            };
            let mut vars = Vec::new();
            let mut terminated = false;
            for tok in trimmed[1..].split_whitespace() {
                let n: i64 = tok.parse().map_err(|_| {
                    ParseQdimacsError::new(lineno, format!("invalid variable token '{tok}'"))
                })?;
                if n == 0 {
                    terminated = true;
                    break;
                }
                if n < 0 {
                    return Err(ParseQdimacsError::new(
                        lineno,
                        "negative variable in quantifier line",
                    ));
                }
                if n as usize > nv {
                    return Err(ParseQdimacsError::new(
                        lineno,
                        format!("variable {n} exceeds declared {nv}"),
                    ));
                }
                vars.push(Var::new((n - 1) as u32));
            }
            if !terminated {
                return Err(ParseQdimacsError::new(
                    lineno,
                    "unterminated quantifier line",
                ));
            }
            blocks.push((q, vars));
            continue;
        }
        clauses_started = true;
        for tok in trimmed.split_whitespace() {
            let value: i64 = tok.parse().map_err(|_| {
                ParseQdimacsError::new(lineno, format!("invalid literal token '{tok}'"))
            })?;
            match Lit::from_dimacs(value) {
                None => {
                    cnf.add_clause(std::mem::take(&mut current));
                }
                Some(lit) => {
                    if lit.var().index() >= nv {
                        return Err(ParseQdimacsError::new(
                            lineno,
                            format!("literal {value} exceeds declared {nv} variables"),
                        ));
                    }
                    current.push(lit);
                }
            }
        }
    }

    if !current.is_empty() {
        return Err(ParseQdimacsError::new(last_line, "unterminated clause"));
    }
    let (nv, nc) = declared.ok_or_else(|| ParseQdimacsError::new(0, "missing header"))?;
    if cnf.num_clauses() != nc {
        return Err(ParseQdimacsError::new(
            last_line,
            format!("declared {nc} clauses, found {}", cnf.num_clauses()),
        ));
    }
    cnf.ensure_vars(nv);
    let mut qbf = QbfFormula::new(cnf);
    for (q, vars) in blocks {
        qbf.push_block(q, vars);
    }
    qbf.validate()
        .map_err(|m| ParseQdimacsError::new(last_line, m))?;
    Ok(qbf)
}

/// Writes `qbf` in QDIMACS format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write<W: Write>(qbf: &QbfFormula, mut writer: W) -> io::Result<()> {
    let m = qbf.matrix();
    writeln!(writer, "p cnf {} {}", m.num_vars(), m.num_clauses())?;
    for block in qbf.prefix() {
        let tag = match block.quantifier {
            Quantifier::Exists => 'e',
            Quantifier::ForAll => 'a',
        };
        write!(writer, "{tag}")?;
        for v in &block.vars {
            write!(writer, " {}", v.index() + 1)?;
        }
        writeln!(writer, " 0")?;
    }
    for clause in m.iter() {
        for lit in clause {
            write!(writer, "{} ", lit.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

/// Renders `qbf` as a QDIMACS string.
pub fn to_string(qbf: &QbfFormula) -> String {
    let mut buf = Vec::new();
    write(qbf, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("qdimacs output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let q = parse("c test\np cnf 3 2\na 1 2 0\ne 3 0\n1 -3 0\n2 3 0\n").unwrap();
        assert_eq!(q.num_universals(), 2);
        assert_eq!(q.num_existentials(), 1);
        assert_eq!(q.matrix().num_clauses(), 2);
    }

    #[test]
    fn round_trip() {
        let text = "p cnf 3 2\na 1 0\ne 2 3 0\n1 -2 0\n-1 3 0\n";
        let q = parse(text).unwrap();
        assert_eq!(to_string(&q), text);
    }

    #[test]
    fn free_variables_are_allowed() {
        // Var 2 free: validate() passes only after close(); the parser
        // closes implicitly by rejecting... actually free vars are legal
        // QDIMACS; ensure parse accepts and solver treats them as ∃.
        let q = parse("p cnf 2 1\na 1 0\n1 2 0\n");
        // Validation inside parse requires all matrix vars bound; free
        // vars are reported as an error to keep files explicit.
        assert!(q.is_err());
    }

    #[test]
    fn error_quantifier_after_clause() {
        let err = parse("p cnf 2 2\ne 1 0\n1 0\na 2 0\n2 0\n").unwrap_err();
        assert!(err.message.contains("after first clause"), "{err}");
    }

    #[test]
    fn error_unterminated_quantifier_line() {
        let err = parse("p cnf 2 1\ne 1 2\n1 0\n").unwrap_err();
        assert!(err.message.contains("unterminated quantifier"), "{err}");
    }

    #[test]
    fn error_negative_quantified_var() {
        let err = parse("p cnf 2 1\ne -1 0\n1 0\n").unwrap_err();
        assert!(err.message.contains("negative variable"), "{err}");
    }

    #[test]
    fn error_out_of_range() {
        let err = parse("p cnf 2 1\ne 5 0\n1 0\n").unwrap_err();
        assert!(err.message.contains("exceeds"), "{err}");
        let err = parse("p cnf 2 1\ne 1 2 0\n5 0\n").unwrap_err();
        assert!(err.message.contains("exceeds"), "{err}");
    }

    #[test]
    fn error_malformed_header() {
        let err = parse("p qbf 2 1\n1 0\n").unwrap_err();
        assert!(err.message.contains("malformed"), "{err}");
    }

    #[test]
    fn parse_solves_consistently() {
        // ∀x ∃y. (x↔y): true.
        let q = parse("p cnf 2 2\na 1 0\ne 2 0\n-1 2 0\n1 -2 0\n").unwrap();
        assert!(q.eval_semantic());
    }
}
