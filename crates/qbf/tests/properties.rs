//! Property-based tests for the QBF subsystem: both solvers against
//! brute-force semantics, solver-vs-solver agreement, and QDIMACS
//! round-trips — all on proptest-generated formulae.

use proptest::prelude::*;
use sebmc_logic::{Cnf, Var};
use sebmc_qbf::{
    qdimacs, ExpansionSolver, QbfFormula, QbfResult, QdpllSolver, Quantifier,
};

#[derive(Debug, Clone)]
struct QbfRecipe {
    vars: usize,
    clauses: Vec<Vec<(u8, bool)>>,
    /// Per variable: whether a block boundary follows it, and the
    /// quantifier of the first block.
    boundaries: Vec<bool>,
    first_forall: bool,
}

fn qbf_strategy() -> impl Strategy<Value = QbfRecipe> {
    (2usize..=6)
        .prop_flat_map(|vars| {
            (
                prop::collection::vec(
                    prop::collection::vec((any::<u8>(), any::<bool>()), 1..4),
                    1..10,
                ),
                prop::collection::vec(any::<bool>(), vars),
                any::<bool>(),
            )
                .prop_map(move |(clauses, boundaries, first_forall)| QbfRecipe {
                    vars,
                    clauses,
                    boundaries,
                    first_forall,
                })
        })
}

fn build(recipe: &QbfRecipe) -> QbfFormula {
    let mut m = Cnf::with_vars(recipe.vars);
    for c in &recipe.clauses {
        m.add_clause(
            c.iter()
                .map(|&(v, p)| Var::new(v as u32 % recipe.vars as u32).lit(p)),
        );
    }
    let mut qbf = QbfFormula::new(m);
    let mut quant = if recipe.first_forall {
        Quantifier::ForAll
    } else {
        Quantifier::Exists
    };
    let mut block = Vec::new();
    for v in 0..recipe.vars {
        block.push(Var::new(v as u32));
        if recipe.boundaries[v] {
            qbf.push_block(quant, block.drain(..).collect::<Vec<_>>());
            quant = quant.dual();
        }
    }
    qbf.push_block(quant, block);
    qbf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn qdpll_matches_semantics(recipe in qbf_strategy()) {
        let qbf = build(&recipe);
        let expect = qbf.eval_semantic();
        let got = QdpllSolver::new().solve(&qbf);
        prop_assert_eq!(
            got,
            if expect { QbfResult::True } else { QbfResult::False }
        );
    }

    #[test]
    fn expansion_matches_semantics(recipe in qbf_strategy()) {
        let qbf = build(&recipe);
        let expect = qbf.eval_semantic();
        let got = ExpansionSolver::new().solve(&qbf);
        prop_assert_eq!(
            got,
            if expect { QbfResult::True } else { QbfResult::False }
        );
    }

    #[test]
    fn solvers_agree_with_each_other(recipe in qbf_strategy()) {
        let qbf = build(&recipe);
        let a = QdpllSolver::new().solve(&qbf);
        let b = ExpansionSolver::new().solve(&qbf);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn qdimacs_round_trip(recipe in qbf_strategy()) {
        let mut qbf = build(&recipe);
        qbf.close();
        let text = qdimacs::to_string(&qbf);
        let parsed = qdimacs::parse(&text).expect("own output parses");
        prop_assert_eq!(parsed.matrix().clauses(), qbf.matrix().clauses());
        prop_assert_eq!(parsed.prefix(), qbf.prefix());
    }

    #[test]
    fn qdimacs_round_trip_preserves_truth(recipe in qbf_strategy()) {
        let mut qbf = build(&recipe);
        qbf.close();
        let parsed = qdimacs::parse(&qdimacs::to_string(&qbf)).expect("parses");
        prop_assert_eq!(parsed.eval_semantic(), qbf.eval_semantic());
    }

    /// Duality: prefixing a fresh universal variable that appears
    /// nowhere never changes the truth value.
    #[test]
    fn vacuous_universal_is_neutral(recipe in qbf_strategy()) {
        let qbf = build(&recipe);
        let expect = qbf.eval_semantic();
        let mut extended = qbf.clone();
        let fresh = Var::new(recipe.vars as u32);
        extended.matrix_mut().ensure_vars(recipe.vars + 1);
        extended.push_block(Quantifier::ForAll, [fresh]);
        prop_assert_eq!(
            QdpllSolver::new().solve(&extended),
            if expect { QbfResult::True } else { QbfResult::False }
        );
    }
}
