//! Property-based tests for the QBF subsystem: both solvers against
//! brute-force semantics, solver-vs-solver agreement, and QDIMACS
//! round-trips — all on seeded random formulae (dependency-free
//! property style; the case number on failure reproduces the input).

use sebmc_logic::rng::SplitMix64;
use sebmc_logic::{Cnf, Var};
use sebmc_qbf::{qdimacs, ExpansionSolver, QbfFormula, QbfResult, QdpllSolver, Quantifier};

/// A random closed prenex-CNF formula over 2–6 variables.
fn random_qbf(rng: &mut SplitMix64) -> QbfFormula {
    let vars = rng.range_inclusive(2, 6);
    let mut m = Cnf::with_vars(vars);
    for _ in 0..rng.range_inclusive(1, 9) {
        let len = rng.range_inclusive(1, 3);
        m.add_clause((0..len).map(|_| Var::new(rng.below(vars) as u32).lit(rng.coin())));
    }
    let mut qbf = QbfFormula::new(m);
    let mut quant = if rng.coin() {
        Quantifier::ForAll
    } else {
        Quantifier::Exists
    };
    let mut block = Vec::new();
    for v in 0..vars {
        block.push(Var::new(v as u32));
        if rng.coin() {
            qbf.push_block(quant, std::mem::take(&mut block));
            quant = quant.dual();
        }
    }
    qbf.push_block(quant, block);
    qbf
}

fn sweep(seed: u64, cases: u64, check: impl Fn(&mut SplitMix64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(seed ^ (case.wrapping_mul(0x9e37_79b9)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&mut rng)));
        if let Err(e) = result {
            eprintln!("property failed on case {case} (seed {seed})");
            std::panic::resume_unwind(e);
        }
    }
}

fn bool_result(b: bool) -> QbfResult {
    if b {
        QbfResult::True
    } else {
        QbfResult::False
    }
}

#[test]
fn qdpll_matches_semantics() {
    sweep(0x0D11, 192, |rng| {
        let qbf = random_qbf(rng);
        let expect = qbf.eval_semantic();
        assert_eq!(QdpllSolver::new().solve(&qbf), bool_result(expect));
    });
}

#[test]
fn expansion_matches_semantics() {
    sweep(0xE4A5, 192, |rng| {
        let qbf = random_qbf(rng);
        let expect = qbf.eval_semantic();
        assert_eq!(ExpansionSolver::new().solve(&qbf), bool_result(expect));
    });
}

#[test]
fn solvers_agree_with_each_other() {
    sweep(0xA64E, 192, |rng| {
        let qbf = random_qbf(rng);
        let a = QdpllSolver::new().solve(&qbf);
        let b = ExpansionSolver::new().solve(&qbf);
        assert_eq!(a, b);
    });
}

#[test]
fn qdimacs_round_trip() {
    sweep(0x4D17, 128, |rng| {
        let mut qbf = random_qbf(rng);
        qbf.close();
        let text = qdimacs::to_string(&qbf);
        let parsed = qdimacs::parse(&text).expect("own output parses");
        assert_eq!(parsed.matrix().clauses(), qbf.matrix().clauses());
        assert_eq!(parsed.prefix(), qbf.prefix());
    });
}

#[test]
fn qdimacs_round_trip_preserves_truth() {
    sweep(0x4D18, 96, |rng| {
        let mut qbf = random_qbf(rng);
        qbf.close();
        let parsed = qdimacs::parse(&qdimacs::to_string(&qbf)).expect("parses");
        assert_eq!(parsed.eval_semantic(), qbf.eval_semantic());
    });
}

/// Duality: prefixing a fresh universal variable that appears
/// nowhere never changes the truth value.
#[test]
fn vacuous_universal_is_neutral() {
    sweep(0xFA11, 128, |rng| {
        let qbf = random_qbf(rng);
        let vars = qbf.matrix().num_vars();
        let expect = qbf.eval_semantic();
        let mut extended = qbf.clone();
        let fresh = Var::new(vars as u32);
        extended.matrix_mut().ensure_vars(vars + 1);
        extended.push_block(Quantifier::ForAll, [fresh]);
        assert_eq!(QdpllSolver::new().solve(&extended), bool_result(expect));
    });
}
