//! DIMACS CNF reading and writing.
//!
//! The standard interchange format for SAT problems: a header line
//! `p cnf <vars> <clauses>` followed by zero-terminated clauses of
//! signed variable numbers. Comment lines start with `c`.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::cnf::{Clause, Cnf};
use crate::lit::Lit;

/// Error produced when parsing a DIMACS file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number where the error occurred (0 = end of input).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

impl ParseDimacsError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseDimacsError {
            line,
            message: message.into(),
        }
    }
}

/// Parses a DIMACS CNF document from a string.
///
/// Tolerates clauses spanning multiple lines and extra whitespace, as
/// real-world DIMACS files do. The declared variable count is honoured
/// even if no clause mentions the last variable.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on missing/malformed headers, non-integer
/// tokens, literals out of the declared range, unterminated clauses, or
/// clause-count mismatches.
///
/// # Example
///
/// ```
/// # use sebmc_logic::dimacs;
/// let cnf = dimacs::parse("p cnf 3 2\n1 -2 0\n2 3 0\n")?;
/// assert_eq!(cnf.num_vars(), 3);
/// assert_eq!(cnf.num_clauses(), 2);
/// # Ok::<(), sebmc_logic::ParseDimacsError>(())
/// ```
pub fn parse(input: &str) -> Result<Cnf, ParseDimacsError> {
    let mut declared: Option<(usize, usize)> = None;
    let mut cnf = Cnf::new();
    let mut current = Clause::new();
    let mut last_line = 0;

    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        last_line = lineno;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
            continue;
        }
        if trimmed.starts_with('p') {
            if declared.is_some() {
                return Err(ParseDimacsError::new(lineno, "duplicate header"));
            }
            let mut parts = trimmed.split_whitespace();
            let _p = parts.next();
            match parts.next() {
                Some("cnf") => {}
                other => {
                    return Err(ParseDimacsError::new(
                        lineno,
                        format!("expected 'cnf' format, got {other:?}"),
                    ))
                }
            }
            let nv: usize = parts
                .next()
                .ok_or_else(|| ParseDimacsError::new(lineno, "missing variable count"))?
                .parse()
                .map_err(|_| ParseDimacsError::new(lineno, "invalid variable count"))?;
            let nc: usize = parts
                .next()
                .ok_or_else(|| ParseDimacsError::new(lineno, "missing clause count"))?
                .parse()
                .map_err(|_| ParseDimacsError::new(lineno, "invalid clause count"))?;
            if parts.next().is_some() {
                return Err(ParseDimacsError::new(lineno, "trailing tokens in header"));
            }
            declared = Some((nv, nc));
            continue;
        }
        let (nv, _) = declared
            .ok_or_else(|| ParseDimacsError::new(lineno, "clause before 'p cnf' header"))?;
        for tok in trimmed.split_whitespace() {
            let value: i64 = tok.parse().map_err(|_| {
                ParseDimacsError::new(lineno, format!("invalid literal token '{tok}'"))
            })?;
            match Lit::from_dimacs(value) {
                None => {
                    cnf.push(std::mem::take(&mut current));
                }
                Some(lit) => {
                    if lit.var().index() >= nv {
                        return Err(ParseDimacsError::new(
                            lineno,
                            format!("literal {value} exceeds declared {nv} variables"),
                        ));
                    }
                    current.push(lit);
                }
            }
        }
    }

    if !current.is_empty() {
        return Err(ParseDimacsError::new(last_line, "unterminated clause"));
    }
    let (nv, nc) = declared.ok_or_else(|| ParseDimacsError::new(0, "missing 'p cnf' header"))?;
    if cnf.num_clauses() != nc {
        return Err(ParseDimacsError::new(
            last_line,
            format!("declared {nc} clauses, found {}", cnf.num_clauses()),
        ));
    }
    cnf.ensure_vars(nv);
    Ok(cnf)
}

/// Parses a DIMACS CNF document from a reader.
///
/// A convenience wrapper over [`parse`]; note that a `&mut R` can be
/// passed wherever `R: BufRead` is expected.
///
/// # Errors
///
/// Returns an [`io::Error`] for read failures; parse failures are mapped
/// to `io::ErrorKind::InvalidData` with the [`ParseDimacsError`] as the
/// source.
pub fn read<R: BufRead>(mut reader: R) -> io::Result<Cnf> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Writes `cnf` in DIMACS format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
///
/// # Example
///
/// ```
/// # use sebmc_logic::{dimacs, Cnf, Var};
/// let mut cnf = Cnf::new();
/// cnf.add_binary(Var::new(0).positive(), Var::new(1).negative());
/// let mut out = Vec::new();
/// dimacs::write(&cnf, &mut out)?;
/// assert_eq!(String::from_utf8(out).unwrap(), "p cnf 2 1\n1 -2 0\n");
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write<W: Write>(cnf: &Cnf, mut writer: W) -> io::Result<()> {
    writeln!(writer, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf.iter() {
        for lit in clause {
            write!(writer, "{} ", lit.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

/// Renders `cnf` as a DIMACS string.
pub fn to_string(cnf: &Cnf) -> String {
    let mut buf = Vec::new();
    write(cnf, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("dimacs output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    #[test]
    fn parse_simple() {
        let cnf = parse("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(
            cnf.clauses()[0].lits(),
            &[Var::new(0).positive(), Var::new(1).negative()]
        );
    }

    #[test]
    fn parse_multiline_clause() {
        let cnf = parse("p cnf 4 1\n1 2\n3\n-4 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 4);
    }

    #[test]
    fn parse_empty_clause() {
        let cnf = parse("p cnf 1 1\n0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert!(cnf.clauses()[0].is_empty());
    }

    #[test]
    fn declared_vars_honoured_without_mention() {
        let cnf = parse("p cnf 10 1\n1 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 10);
    }

    #[test]
    fn round_trip() {
        let text = "p cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(to_string(&cnf), text);
    }

    #[test]
    fn error_missing_header() {
        let err = parse("1 2 0\n").unwrap_err();
        assert!(err.message.contains("header"), "{err}");
    }

    #[test]
    fn error_duplicate_header() {
        let err = parse("p cnf 1 0\np cnf 1 0\n").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn error_bad_token() {
        let err = parse("p cnf 2 1\n1 x 0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("invalid literal"), "{err}");
    }

    #[test]
    fn error_out_of_range_literal() {
        let err = parse("p cnf 2 1\n3 0\n").unwrap_err();
        assert!(err.message.contains("exceeds"), "{err}");
    }

    #[test]
    fn error_unterminated_clause() {
        let err = parse("p cnf 2 1\n1 2\n").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn error_clause_count_mismatch() {
        let err = parse("p cnf 2 2\n1 0\n").unwrap_err();
        assert!(err.message.contains("declared"), "{err}");
    }

    #[test]
    fn error_non_cnf_format() {
        let err = parse("p sat 2 2\n").unwrap_err();
        assert!(err.message.contains("cnf"), "{err}");
    }

    #[test]
    fn read_from_reader() {
        let data = b"p cnf 1 1\n-1 0\n" as &[u8];
        let cnf = read(data).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn read_maps_parse_error_to_invalid_data() {
        let data = b"garbage\n1 0\n" as &[u8];
        let err = read(data).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn display_includes_line() {
        let err = ParseDimacsError::new(7, "boom");
        assert_eq!(err.to_string(), "dimacs parse error at line 7: boom");
    }
}
