//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] is a small, dependency-free description of faults to
//! inject at well-defined *safe points* in the checking stack: the SAT
//! solver's budget poll, the entry of an engine's `check_bound`, and
//! the service layer's per-attempt dispatch. Each layer calls
//! [`FaultPlan::hit`] at its safe point; the plan counts hits per site
//! and fires the configured fault exactly at the Nth hit, making worker
//! panics, stalls, spurious cancellations, and byte-budget exhaustion
//! reproducible from a seed or a textual spec.
//!
//! The default plan is empty and compiles down to a single `Option`
//! check, so production paths pay (almost) nothing.
//!
//! # Spec grammar
//!
//! A plan is parsed from a comma-separated list of fault specs:
//!
//! ```text
//! kind@site:hit[:millis]
//! ```
//!
//! where `kind` is one of `panic`, `delay`, `cancel`, `oom`; `site` is
//! one of `solver`, `engine`, `service`; `hit` is the 1-based safe-point
//! hit at which the fault fires; and `millis` (delay only) is the stall
//! length. Alternatively `seed:<u64>` derives a small random plan from a
//! [`SplitMix64`] stream, for matrix-style stress testing.
//!
//! ```
//! use sebmc_logic::fault::{FaultPlan, FaultSite, FaultVerdict};
//!
//! let plan: FaultPlan = "oom@solver:2".parse().unwrap();
//! assert_eq!(plan.hit(FaultSite::Solver, None), FaultVerdict::None);
//! assert_eq!(plan.hit(FaultSite::Solver, None), FaultVerdict::Oom);
//! ```

use crate::rng::SplitMix64;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Message prefix carried by injected panics, so supervisors can tell
/// an injected fault from a genuine defect in test assertions.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault: panic";

/// Where in the stack a safe point lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The SAT solver's budget/cancellation poll.
    Solver,
    /// Entry of an engine session's `check_bound`.
    Engine,
    /// The service layer's per-attempt dispatch.
    Service,
}

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::Solver => 0,
            FaultSite::Engine => 1,
            FaultSite::Service => 2,
        }
    }

    fn name(self) -> &'static str {
        match self {
            FaultSite::Solver => "solver",
            FaultSite::Engine => "engine",
            FaultSite::Service => "service",
        }
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the safe point (the supervisor must contain it).
    Panic,
    /// Stall for the given duration, polling the cancel flag so the
    /// stall stays interruptible.
    Delay(Duration),
    /// Fire the caller-provided cancellation flag (a spurious cancel).
    Cancel,
    /// Report byte-budget exhaustion to the caller.
    Oom,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Delay(_) => "delay",
            FaultKind::Cancel => "cancel",
            FaultKind::Oom => "oom",
        }
    }
}

/// One fault: fire `kind` at the `at_hit`-th (1-based) hit of `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The safe-point family this fault watches.
    pub site: FaultSite,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// 1-based hit count at which the fault fires.
    pub at_hit: u64,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}:{}",
            self.kind.name(),
            self.site.name(),
            self.at_hit
        )?;
        if let FaultKind::Delay(d) = self.kind {
            write!(f, ":{}", d.as_millis())?;
        }
        Ok(())
    }
}

#[derive(Debug)]
struct FaultState {
    specs: Vec<FaultSpec>,
    /// Per-site hit counters, indexed by `FaultSite::index`.
    hits: [AtomicU64; 3],
}

/// What [`FaultPlan::hit`] tells its caller to do.
///
/// `Panic` and `Delay` are handled inside `hit` itself; `Cancel` fires
/// the provided flag. Only `Oom` needs caller cooperation, because the
/// byte-cap check is the caller's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum FaultVerdict {
    /// No fault fired (or a fault was handled internally).
    None,
    /// Pretend the byte budget is exhausted.
    Oom,
}

/// A shareable, thread-safe fault-injection plan.
///
/// Cloning is cheap and shares the hit counters, so a plan threaded
/// through `Budget` clones into solver `Limits` still fires each fault
/// exactly once. [`FaultPlan::none`] (the default) is inert.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<FaultState>>,
}

impl FaultPlan {
    /// The empty plan: every `hit` is a no-op.
    pub fn none() -> Self {
        FaultPlan { inner: None }
    }

    /// A plan firing the given faults.
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        if specs.is_empty() {
            return FaultPlan::none();
        }
        FaultPlan {
            inner: Some(Arc::new(FaultState {
                specs,
                hits: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            })),
        }
    }

    /// Derives a small plan from a seed: 1–3 faults with varied kinds,
    /// sites and (small) hit counts. Used for matrix stress testing;
    /// the same seed always yields the same plan.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let n = rng.range_inclusive(1, 3);
        let mut specs = Vec::with_capacity(n);
        for _ in 0..n {
            let site = match rng.below(3) {
                0 => FaultSite::Solver,
                1 => FaultSite::Engine,
                _ => FaultSite::Service,
            };
            let kind = match rng.below(4) {
                0 => FaultKind::Panic,
                1 => FaultKind::Delay(Duration::from_millis(rng.range_inclusive(1, 20) as u64)),
                2 => FaultKind::Cancel,
                _ => FaultKind::Oom,
            };
            // Solver safe points are hit orders of magnitude more often
            // than engine/service ones, so give them a wider window.
            let at_hit = match site {
                FaultSite::Solver => rng.range_inclusive(1, 200) as u64,
                _ => rng.range_inclusive(1, 6) as u64,
            };
            specs.push(FaultSpec { site, kind, at_hit });
        }
        FaultPlan::new(specs)
    }

    /// True if no faults are configured.
    pub fn is_none(&self) -> bool {
        self.inner.is_none()
    }

    /// The configured faults (empty for the inert plan).
    pub fn specs(&self) -> &[FaultSpec] {
        self.inner.as_ref().map_or(&[], |s| &s.specs)
    }

    /// A copy of this plan with all hit counters reset to zero.
    ///
    /// Use when the same plan should fire independently per job: each
    /// job gets `fresh_copy()` so one job's hits don't consume faults
    /// meant for another.
    pub fn fresh_copy(&self) -> Self {
        FaultPlan::new(self.specs().to_vec())
    }

    /// Records a safe-point hit at `site` and fires any fault scheduled
    /// for this hit. `Panic` panics here (with
    /// [`INJECTED_PANIC_PREFIX`]); `Delay` sleeps in short slices,
    /// returning early if `cancel` becomes true; `Cancel` stores `true`
    /// into `cancel` (a no-op without a flag); `Oom` is returned for the
    /// caller to treat as byte-budget exhaustion.
    pub fn hit(&self, site: FaultSite, cancel: Option<&AtomicBool>) -> FaultVerdict {
        let Some(state) = self.inner.as_deref() else {
            return FaultVerdict::None;
        };
        let count = state.hits[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let mut verdict = FaultVerdict::None;
        for spec in &state.specs {
            if spec.site != site || spec.at_hit != count {
                continue;
            }
            match spec.kind {
                FaultKind::Panic => {
                    panic!("{INJECTED_PANIC_PREFIX} at {}:{}", site.name(), count);
                }
                FaultKind::Delay(total) => {
                    let deadline = std::time::Instant::now() + total;
                    loop {
                        if let Some(flag) = cancel {
                            if flag.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                        let left = deadline.saturating_duration_since(std::time::Instant::now());
                        if left.is_zero() {
                            break;
                        }
                        std::thread::sleep(left.min(Duration::from_millis(2)));
                    }
                }
                FaultKind::Cancel => {
                    if let Some(flag) = cancel {
                        flag.store(true, Ordering::Relaxed);
                    }
                }
                FaultKind::Oom => verdict = FaultVerdict::Oom,
            }
        }
        verdict
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let specs = self.specs();
        if specs.is_empty() {
            return write!(f, "none");
        }
        for (i, s) in specs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Error from parsing a fault-plan spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultPlanError(String);

impl fmt::Display for ParseFaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for ParseFaultPlanError {}

impl FromStr for FaultPlan {
    type Err = ParseFaultPlanError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(FaultPlan::none());
        }
        if let Some(seed) = s.strip_prefix("seed:") {
            let seed: u64 = seed
                .trim()
                .parse()
                .map_err(|_| ParseFaultPlanError(format!("bad seed '{seed}'")))?;
            return Ok(FaultPlan::seeded(seed));
        }
        let mut specs = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let (kind_str, rest) = part
                .split_once('@')
                .ok_or_else(|| ParseFaultPlanError(format!("'{part}' lacks '@site'")))?;
            let mut fields = rest.split(':');
            let site = match fields.next().unwrap_or("") {
                "solver" => FaultSite::Solver,
                "engine" => FaultSite::Engine,
                "service" => FaultSite::Service,
                other => {
                    return Err(ParseFaultPlanError(format!(
                        "unknown site '{other}' (expected solver|engine|service)"
                    )))
                }
            };
            let at_hit: u64 = fields
                .next()
                .ok_or_else(|| ParseFaultPlanError(format!("'{part}' lacks ':hit'")))?
                .parse()
                .map_err(|_| ParseFaultPlanError(format!("bad hit count in '{part}'")))?;
            if at_hit == 0 {
                return Err(ParseFaultPlanError(format!(
                    "hit count in '{part}' is 1-based; 0 never fires"
                )));
            }
            let kind = match kind_str {
                "panic" => FaultKind::Panic,
                "cancel" => FaultKind::Cancel,
                "oom" => FaultKind::Oom,
                "delay" => {
                    let ms: u64 = fields
                        .next()
                        .ok_or_else(|| {
                            ParseFaultPlanError(format!("delay '{part}' lacks ':millis'"))
                        })?
                        .parse()
                        .map_err(|_| ParseFaultPlanError(format!("bad millis in '{part}'")))?;
                    FaultKind::Delay(Duration::from_millis(ms))
                }
                other => {
                    return Err(ParseFaultPlanError(format!(
                        "unknown kind '{other}' (expected panic|delay|cancel|oom)"
                    )))
                }
            };
            if let Some(extra) = fields.next() {
                return Err(ParseFaultPlanError(format!(
                    "trailing field '{extra}' in '{part}'"
                )));
            }
            specs.push(FaultSpec { site, kind, at_hit });
        }
        Ok(FaultPlan::new(specs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::none();
        for _ in 0..10 {
            assert_eq!(p.hit(FaultSite::Solver, None), FaultVerdict::None);
        }
        assert!(p.is_none());
        assert_eq!(p.to_string(), "none");
    }

    #[test]
    fn oom_fires_exactly_at_nth_hit() {
        let p: FaultPlan = "oom@solver:3".parse().unwrap();
        assert_eq!(p.hit(FaultSite::Solver, None), FaultVerdict::None);
        assert_eq!(p.hit(FaultSite::Solver, None), FaultVerdict::None);
        assert_eq!(p.hit(FaultSite::Solver, None), FaultVerdict::Oom);
        assert_eq!(p.hit(FaultSite::Solver, None), FaultVerdict::None);
    }

    #[test]
    fn sites_count_independently() {
        let p: FaultPlan = "oom@engine:1".parse().unwrap();
        assert_eq!(p.hit(FaultSite::Solver, None), FaultVerdict::None);
        assert_eq!(p.hit(FaultSite::Engine, None), FaultVerdict::Oom);
    }

    #[test]
    fn clones_share_counters_but_fresh_copy_rearms() {
        let p: FaultPlan = "oom@solver:2".parse().unwrap();
        let q = p.clone();
        assert_eq!(p.hit(FaultSite::Solver, None), FaultVerdict::None);
        assert_eq!(q.hit(FaultSite::Solver, None), FaultVerdict::Oom);
        let fresh = p.fresh_copy();
        assert_eq!(fresh.hit(FaultSite::Solver, None), FaultVerdict::None);
        assert_eq!(fresh.hit(FaultSite::Solver, None), FaultVerdict::Oom);
    }

    #[test]
    fn cancel_fires_provided_flag() {
        let p: FaultPlan = "cancel@engine:1".parse().unwrap();
        let flag = AtomicBool::new(false);
        assert_eq!(p.hit(FaultSite::Engine, Some(&flag)), FaultVerdict::None);
        assert!(flag.load(Ordering::Relaxed));
    }

    #[test]
    fn panic_carries_injected_prefix() {
        let p: FaultPlan = "panic@service:1".parse().unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = p.hit(FaultSite::Service, None);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "got: {msg}");
    }

    #[test]
    fn delay_respects_cancel_flag() {
        let p: FaultPlan = "delay@engine:1:10000".parse().unwrap();
        let flag = AtomicBool::new(true); // already cancelled: returns fast
        let start = std::time::Instant::now();
        let _ = p.hit(FaultSite::Engine, Some(&flag));
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn parse_roundtrips_and_rejects_garbage() {
        let p: FaultPlan = "panic@engine:3,delay@solver:100:5".parse().unwrap();
        assert_eq!(p.to_string(), "panic@engine:3,delay@solver:100:5");
        assert_eq!(p.specs().len(), 2);
        assert!("bogus@engine:1".parse::<FaultPlan>().is_err());
        assert!("panic@nowhere:1".parse::<FaultPlan>().is_err());
        assert!("panic@engine".parse::<FaultPlan>().is_err());
        assert!("panic@engine:0".parse::<FaultPlan>().is_err());
        assert!("panic@engine:1:9".parse::<FaultPlan>().is_err());
        assert!("".parse::<FaultPlan>().unwrap().is_none());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(17);
        let b = FaultPlan::seeded(17);
        assert_eq!(a.specs(), b.specs());
        assert!(!a.is_none());
        let c: FaultPlan = "seed:17".parse().unwrap();
        assert_eq!(a.specs(), c.specs());
    }
}
