//! Tseitin transformation from AIG cones to CNF.
//!
//! The encoding is the *full* (biconditional) Tseitin transformation:
//! each AND node `n = a ∧ b` contributes the three clauses
//! `(¬n ∨ a)`, `(¬n ∨ b)` and `(¬a ∨ ¬b ∨ n)`, so the auxiliary
//! variable is *equal* to the node function rather than merely implied
//! by it. Equality matters here: the paper's QBF encodings place these
//! auxiliaries in the innermost existential block under universal
//! quantifiers, where the polarity-optimised (Plaisted–Greenbaum)
//! encoding would be unsound.

use crate::aig::{Aig, AigRef};
use crate::cnf::Cnf;
use crate::lit::{Lit, VarAlloc};

/// Encodes the cones of `roots` into `out`, returning one literal per
/// root that is constrained to equal the root function.
///
/// * `input_lits[i]` is the literal representing primary input `i`; the
///   caller chooses these (e.g. state variables of a time frame).
/// * Fresh auxiliary variables are taken from `alloc`.
/// * Clauses are appended to `out`; nothing is asserted about the root
///   literals themselves — callers add unit clauses or assumptions.
///
/// Constant roots are represented by a dedicated fresh variable
/// constrained to the constant, so the returned literal is always a real
/// literal.
///
/// # Panics
///
/// Panics if `input_lits` is shorter than `aig.num_inputs()` restricted
/// to the inputs that actually occur in the cones.
///
/// # Example
///
/// ```
/// use sebmc_logic::{Aig, Cnf, VarAlloc, tseitin};
/// let mut aig = Aig::new();
/// let a = aig.input();
/// let b = aig.input();
/// let f = aig.and(a, b);
/// let mut alloc = VarAlloc::new();
/// let ins = [alloc.fresh_lit(), alloc.fresh_lit()];
/// let mut cnf = Cnf::new();
/// let root = tseitin::encode(&aig, &[f], &ins, &mut alloc, &mut cnf)[0];
/// cnf.add_unit(root);
/// // f forced true ⇒ both inputs must be true.
/// assert!(cnf.eval(&[true, true, true]));
/// assert!(!cnf.eval(&[true, false, true]));
/// ```
pub fn encode(
    aig: &Aig,
    roots: &[AigRef],
    input_lits: &[Lit],
    alloc: &mut VarAlloc,
    out: &mut Cnf,
) -> Vec<Lit> {
    let mut enc = Encoder::new(aig, input_lits);
    let lits = enc.encode_roots(roots, alloc, out);
    out.ensure_vars(alloc.num_vars());
    lits
}

/// Incremental Tseitin encoder that remembers which nodes were already
/// encoded, so several cones over the same AIG can share auxiliaries.
///
/// Used by the BMC unrolling encoder, which encodes the transition cone
/// once per frame but shares the (frame-independent) mapping logic.
#[derive(Debug)]
pub struct Encoder<'a> {
    aig: &'a Aig,
    /// Literal per node, `None` until encoded.
    map: Vec<Option<Lit>>,
    input_lits: Vec<Lit>,
}

impl<'a> Encoder<'a> {
    /// Creates an encoder over `aig`, with the primary inputs mapped to
    /// `input_lits`.
    pub fn new(aig: &'a Aig, input_lits: &[Lit]) -> Self {
        Encoder {
            aig,
            map: vec![None; aig.num_nodes()],
            input_lits: input_lits.to_vec(),
        }
    }

    /// Encodes (or reuses) the cones of `roots`, appending clauses to
    /// `out`; returns one literal per root.
    pub fn encode_roots(
        &mut self,
        roots: &[AigRef],
        alloc: &mut VarAlloc,
        out: &mut Cnf,
    ) -> Vec<Lit> {
        roots
            .iter()
            .map(|&r| self.encode_ref(r, alloc, out))
            .collect()
    }

    /// Encodes a single reference, returning its literal.
    pub fn encode_ref(&mut self, r: AigRef, alloc: &mut VarAlloc, out: &mut Cnf) -> Lit {
        let base = self.encode_node(r.node(), alloc, out);
        if r.is_complement() {
            !base
        } else {
            base
        }
    }

    fn encode_node(&mut self, node: usize, alloc: &mut VarAlloc, out: &mut Cnf) -> Lit {
        if let Some(l) = self.map[node] {
            return l;
        }
        // Encode the cone below `node` in topological order so that deep
        // circuits cannot overflow the call stack.
        let order = self.topo_from(node);
        for idx in order {
            if self.map[idx].is_some() {
                continue;
            }
            let lit = if self.aig.is_const_node(idx) {
                // A fresh variable pinned to false.
                let f = alloc.fresh_lit();
                out.add_unit(!f);
                f
            } else if let Some(i) = self.aig.input_index(idx) {
                assert!(
                    i < self.input_lits.len(),
                    "input {i} occurs in cone but only {} input literals were supplied",
                    self.input_lits.len()
                );
                self.input_lits[i]
            } else {
                let (a, b) = self.aig.and_fanins(idx).expect("AND node");
                let la = self.lit_of(a);
                let lb = self.lit_of(b);
                let n = alloc.fresh_lit();
                // n ↔ (la ∧ lb)
                out.add_binary(!n, la);
                out.add_binary(!n, lb);
                out.add_ternary(!la, !lb, n);
                n
            };
            self.map[idx] = Some(lit);
        }
        self.map[node].expect("node encoded")
    }

    fn lit_of(&self, r: AigRef) -> Lit {
        let l = self.map[r.node()].expect("fan-in encoded before fan-out");
        if r.is_complement() {
            !l
        } else {
            l
        }
    }

    /// Topological order of the not-yet-encoded part of the cone below
    /// `node`.
    fn topo_from(&self, node: usize) -> Vec<usize> {
        let mut order = Vec::new();
        let mut visited = vec![false; self.aig.num_nodes()];
        let mut stack = vec![(node, false)];
        while let Some((idx, expanded)) = stack.pop() {
            if expanded {
                order.push(idx);
                continue;
            }
            if visited[idx] || self.map[idx].is_some() {
                continue;
            }
            visited[idx] = true;
            stack.push((idx, true));
            if let Some((a, b)) = self.aig.and_fanins(idx) {
                stack.push((a.node(), false));
                stack.push((b.node(), false));
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    /// Checks that for every input assignment, the CNF with the inputs
    /// pinned is satisfiable iff it can set the root literal to the AIG
    /// value (full Tseitin means aux values are forced, so we brute
    /// force over all variables).
    fn assert_encodes(aig: &Aig, root: AigRef, n_inputs: usize) {
        let mut alloc = VarAlloc::new();
        let ins: Vec<Lit> = alloc.fresh_lits(n_inputs);
        let mut cnf = Cnf::new();
        let rl = encode(aig, &[root], &ins, &mut alloc, &mut cnf);
        let rl = rl[0];
        let total = alloc.num_vars();
        for bits in 0..1u32 << n_inputs {
            let inputs: Vec<bool> = (0..n_inputs).map(|i| bits >> i & 1 == 1).collect();
            let expect = aig.eval(&inputs, &[root])[0];
            // Enumerate aux assignments: exactly one must satisfy the
            // definitional clauses, and it must give the root literal the
            // expected value.
            let mut found = 0;
            let mut root_val = false;
            for aux_bits in 0..1u32 << (total - n_inputs) {
                let mut assignment = inputs.clone();
                for i in 0..total - n_inputs {
                    assignment.push(aux_bits >> i & 1 == 1);
                }
                if cnf.eval(&assignment) {
                    found += 1;
                    root_val = rl.apply(assignment[rl.var().index()]);
                }
            }
            assert_eq!(found, 1, "full Tseitin forces a unique aux extension");
            assert_eq!(root_val, expect, "root value for inputs {bits:b}");
        }
    }

    #[test]
    fn encodes_single_and() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let f = aig.and(a, b);
        assert_encodes(&aig, f, 2);
    }

    #[test]
    fn encodes_xor_tree() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let x = aig.xor(a, b);
        let f = aig.xor(x, c);
        assert_encodes(&aig, f, 3);
    }

    #[test]
    fn encodes_complemented_root() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let f = aig.and(a, b);
        assert_encodes(&aig, !f, 2);
    }

    #[test]
    fn encodes_constant_roots() {
        let aig = Aig::new();
        let mut alloc = VarAlloc::new();
        let mut cnf = Cnf::new();
        let lits = encode(
            &aig,
            &[AigRef::TRUE, AigRef::FALSE],
            &[],
            &mut alloc,
            &mut cnf,
        );
        // Single aux var pinned false; TRUE is its negation.
        assert_eq!(lits[0], !lits[1]);
        assert!(cnf.eval(&[false]));
        assert!(!cnf.eval(&[true]));
    }

    #[test]
    fn input_passthrough_uses_caller_literals() {
        let mut aig = Aig::new();
        let a = aig.input();
        let mut alloc = VarAlloc::starting_at(10);
        let ins = [Var::new(3).positive()];
        let mut cnf = Cnf::new();
        let lits = encode(&aig, &[a, !a], &ins, &mut alloc, &mut cnf);
        assert_eq!(lits[0], Var::new(3).positive());
        assert_eq!(lits[1], Var::new(3).negative());
        assert_eq!(cnf.num_clauses(), 0, "inputs need no clauses");
    }

    #[test]
    fn shared_subcircuits_encoded_once() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let shared = aig.and(a, b);
        let f = aig.and(shared, a);
        let g = aig.and(shared, b);
        let mut alloc = VarAlloc::new();
        let ins: Vec<Lit> = alloc.fresh_lits(2);
        let mut cnf = Cnf::new();
        let mut enc = Encoder::new(&aig, &ins);
        let l1 = enc.encode_roots(&[f], &mut alloc, &mut cnf);
        let before = cnf.num_clauses();
        let l2 = enc.encode_roots(&[g], &mut alloc, &mut cnf);
        // Encoding g reuses the shared AND: only 3 new clauses.
        assert_eq!(cnf.num_clauses() - before, 3);
        assert_ne!(l1[0], l2[0]);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let mut f = a;
        for i in 0..200_000 {
            let other = if i % 2 == 0 { b } else { !b };
            f = aig.xor(f, other);
        }
        let mut alloc = VarAlloc::new();
        let ins: Vec<Lit> = alloc.fresh_lits(2);
        let mut cnf = Cnf::new();
        let _ = encode(&aig, &[f], &ins, &mut alloc, &mut cnf);
        assert!(cnf.num_clauses() > 0);
    }
}
