//! Clause and CNF containers.
//!
//! These are *formula* containers used by encoders and by the harness to
//! account for formula size (the paper's space argument is about exactly
//! this quantity). The SAT solver keeps its own arena-based clause
//! storage; this type is the interchange format.

use std::fmt;

use crate::lit::{Lit, Var};

/// A disjunction of literals.
///
/// ```
/// use sebmc_logic::{Clause, Var};
/// let c = Clause::from_lits([Var::new(0).positive(), Var::new(1).negative()]);
/// assert_eq!(c.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates an empty (unsatisfiable) clause.
    pub fn new() -> Self {
        Clause { lits: Vec::new() }
    }

    /// Creates a clause from an iterator of literals.
    pub fn from_lits<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        Clause {
            lits: lits.into_iter().collect(),
        }
    }

    /// Number of literals in the clause.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` for the empty clause.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// The literals of this clause.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Adds a literal to the clause.
    pub fn push(&mut self, lit: Lit) {
        self.lits.push(lit);
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }

    /// Evaluates the clause under a total assignment indexed by
    /// variable (`assignment[v.index()]`).
    ///
    /// # Panics
    ///
    /// Panics if a literal's variable index is out of bounds.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.lits
            .iter()
            .any(|l| l.apply(assignment[l.var().index()]))
    }

    /// Removes duplicate literals and reports whether the clause is a
    /// tautology (contains both polarities of some variable).
    pub fn normalize(&mut self) -> bool {
        self.lits.sort_unstable();
        self.lits.dedup();
        self.lits.windows(2).any(|w| w[0].var() == w[1].var())
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause::from_lits(iter)
    }
}

impl Extend<Lit> for Clause {
    fn extend<I: IntoIterator<Item = Lit>>(&mut self, iter: I) {
        self.lits.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl IntoIterator for Clause {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l:?}")?;
        }
        write!(f, ")")
    }
}

/// A formula in conjunctive normal form.
///
/// Tracks the number of variables mentioned and the total number of
/// literals, which the benchmark harness uses as the memory proxy when
/// reproducing the paper's formula-growth figures.
///
/// ```
/// use sebmc_logic::{Cnf, Var};
/// let mut cnf = Cnf::new();
/// let (a, b) = (Var::new(0).positive(), Var::new(1).positive());
/// cnf.add_clause([a, b]);
/// cnf.add_clause([!a]);
/// assert_eq!(cnf.num_clauses(), 2);
/// assert_eq!(cnf.num_literals(), 3);
/// assert_eq!(cnf.num_vars(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    clauses: Vec<Clause>,
    num_vars: usize,
    num_literals: usize,
}

impl Cnf {
    /// Creates an empty formula (trivially true).
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Creates an empty formula that already accounts for `num_vars`
    /// variables (useful when variables are allocated externally).
    pub fn with_vars(num_vars: usize) -> Self {
        Cnf {
            clauses: Vec::new(),
            num_vars,
            num_literals: 0,
        }
    }

    /// Adds a clause built from an iterator of literals.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.push(Clause::from_lits(lits));
    }

    /// Adds a unit clause.
    pub fn add_unit(&mut self, lit: Lit) {
        self.push(Clause::from_lits([lit]));
    }

    /// Adds a binary clause.
    pub fn add_binary(&mut self, a: Lit, b: Lit) {
        self.push(Clause::from_lits([a, b]));
    }

    /// Adds a ternary clause.
    pub fn add_ternary(&mut self, a: Lit, b: Lit, c: Lit) {
        self.push(Clause::from_lits([a, b, c]));
    }

    /// Adds clauses asserting `a ↔ b`.
    pub fn add_equiv(&mut self, a: Lit, b: Lit) {
        self.add_binary(!a, b);
        self.add_binary(a, !b);
    }

    /// Adds an already-built clause.
    pub fn push(&mut self, clause: Clause) {
        for l in &clause {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.num_literals += clause.len();
        self.clauses.push(clause);
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of variables (one past the highest mentioned index, or the
    /// externally declared count if larger).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Declares that variables up to `n` exist even if unmentioned.
    pub fn ensure_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_literals(&self) -> usize {
        self.num_literals
    }

    /// Approximate heap size of the formula in bytes (literals at 4
    /// bytes plus per-clause vector overhead). This is the space proxy
    /// used by the E2/E4 experiments.
    pub fn size_bytes(&self) -> usize {
        self.num_literals * std::mem::size_of::<Lit>()
            + self.clauses.len() * std::mem::size_of::<Clause>()
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }

    /// Evaluates the formula under a total assignment indexed by
    /// variable.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than [`Cnf::num_vars`].
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// Appends all clauses of `other` to `self`.
    pub fn append(&mut self, other: &Cnf) {
        for c in other.iter() {
            self.push(c.clone());
        }
    }

    /// Exhaustively tests satisfiability by enumeration. Only intended
    /// for tests and tiny formulas.
    ///
    /// # Panics
    ///
    /// Panics if the formula has more than 24 variables.
    pub fn brute_force_satisfiable(&self) -> bool {
        let n = self.num_vars;
        assert!(n <= 24, "brute force limited to 24 variables, got {n}");
        let mut assignment = vec![false; n];
        for bits in 0u64..(1u64 << n) {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = bits >> i & 1 == 1;
            }
            if self.eval(&assignment) {
                return true;
            }
        }
        n == 0 && self.clauses.iter().all(|c| !c.is_empty())
    }

    /// Returns the set of variables that occur in some clause.
    pub fn occurring_vars(&self) -> Vec<Var> {
        let mut seen = vec![false; self.num_vars];
        for c in self.iter() {
            for l in c {
                seen[l.var().index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| Var::new(i as u32))
            .collect()
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cnf {{ vars: {}, clauses: {} }}",
            self.num_vars,
            self.clauses.len()
        )?;
        for c in &self.clauses {
            writeln!(f, "  {c:?}")?;
        }
        Ok(())
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        let mut cnf = Cnf::new();
        for c in iter {
            cnf.push(c);
        }
        cnf
    }
}

impl Extend<Clause> for Cnf {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for c in iter {
            self.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(i: u32, pos: bool) -> Lit {
        Var::new(i).lit(pos)
    }

    #[test]
    fn clause_eval() {
        let c = Clause::from_lits([lit(0, true), lit(1, false)]);
        assert!(c.eval(&[true, true]));
        assert!(c.eval(&[false, false]));
        assert!(!c.eval(&[false, true]));
    }

    #[test]
    fn clause_normalize_detects_tautology_and_dedups() {
        let mut c = Clause::from_lits([lit(0, true), lit(0, true), lit(1, false)]);
        assert!(!c.normalize());
        assert_eq!(c.len(), 2);

        let mut t = Clause::from_lits([lit(2, true), lit(2, false)]);
        assert!(t.normalize());
    }

    #[test]
    fn cnf_counts_vars_and_literals() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(4, true)]);
        cnf.add_binary(lit(0, false), lit(2, true));
        assert_eq!(cnf.num_vars(), 5);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_literals(), 3);
        assert!(cnf.size_bytes() > 0);
    }

    #[test]
    fn cnf_eval_conjunction() {
        let mut cnf = Cnf::new();
        cnf.add_unit(lit(0, true));
        cnf.add_binary(lit(0, false), lit(1, true));
        assert!(cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[true, false]));
        assert!(!cnf.eval(&[false, true]));
    }

    #[test]
    fn empty_cnf_is_true_empty_clause_is_false() {
        let cnf = Cnf::new();
        assert!(cnf.eval(&[]));
        assert!(cnf.brute_force_satisfiable());

        let mut cnf = Cnf::new();
        cnf.push(Clause::new());
        assert!(!cnf.eval(&[]));
        assert!(!cnf.brute_force_satisfiable());
    }

    #[test]
    fn brute_force_finds_satisfying_assignment() {
        // (x0 | x1) & (!x0) & (!x1 | x2) is satisfied by 011.
        let mut cnf = Cnf::new();
        cnf.add_binary(lit(0, true), lit(1, true));
        cnf.add_unit(lit(0, false));
        cnf.add_binary(lit(1, false), lit(2, true));
        assert!(cnf.brute_force_satisfiable());

        // Add !x2 to make it unsatisfiable.
        cnf.add_unit(lit(2, false));
        assert!(!cnf.brute_force_satisfiable());
    }

    #[test]
    fn equiv_clauses_enforce_equality() {
        let mut cnf = Cnf::new();
        cnf.add_equiv(lit(0, true), lit(1, true));
        assert!(cnf.eval(&[true, true]));
        assert!(cnf.eval(&[false, false]));
        assert!(!cnf.eval(&[true, false]));
        assert!(!cnf.eval(&[false, true]));
    }

    #[test]
    fn append_accumulates() {
        let mut a = Cnf::new();
        a.add_unit(lit(0, true));
        let mut b = Cnf::new();
        b.add_unit(lit(1, false));
        a.append(&b);
        assert_eq!(a.num_clauses(), 2);
        assert_eq!(a.num_vars(), 2);
    }

    #[test]
    fn occurring_vars_reports_used_only() {
        let mut cnf = Cnf::with_vars(6);
        cnf.add_binary(lit(1, true), lit(4, false));
        let occ = cnf.occurring_vars();
        assert_eq!(occ, vec![Var::new(1), Var::new(4)]);
        assert_eq!(cnf.num_vars(), 6);
    }

    #[test]
    fn collect_from_clauses() {
        let cnf: Cnf = vec![
            Clause::from_lits([lit(0, true)]),
            Clause::from_lits([lit(1, false)]),
        ]
        .into_iter()
        .collect();
        assert_eq!(cnf.num_clauses(), 2);
    }
}
