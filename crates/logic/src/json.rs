//! A minimal, dependency-free JSON value, parser, and writer.
//!
//! The workspace builds offline with no external crates, so the wire
//! protocol of the checking daemon (`sebmc serve`) and the `JobSpec`
//! submission format carry their own JSON support. The subset is
//! deliberately small but complete for round-tripping the protocol:
//! objects, arrays, strings (with escapes), numbers, booleans and
//! `null`.
//!
//! Numbers are held as `f64`; every integer the protocol exchanges
//! (bounds, millisecond budgets, byte counts of reports) fits `f64`'s
//! 53-bit exact-integer range, and [`Json::as_u64`] refuses lossy
//! conversions rather than rounding.

use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document. Trailing non-whitespace is an error
    /// (a protocol frame is exactly one value per line).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer (`None` when the value
    /// is not a number, is negative, or does not round-trip exactly).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl fmt::Display for Json {
    /// Renders compact JSON (no whitespace), suitable for one-frame-
    /// per-line protocols.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a quoted JSON string literal.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Builds a JSON object from `(key, value)` pairs (a tidy literal
/// syntax for protocol frames).
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!(
                "unexpected character '{}' at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates are not paired here: the writer
                            // never emits them and the protocol is ASCII
                            // + UTF-8 pass-through.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences
                    // pass through unchanged).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-3.5").unwrap(), Json::Num(-3.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures_and_lookup() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[2].get("b").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn round_trips_through_display() {
        let text = r#"{"name":"a \"b\"\nc","n":7,"f":1.5,"ok":true,"xs":[],"o":{}}"#;
        let v = Json::parse(text).unwrap();
        let re = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn string_escapes_decode() {
        let v = Json::parse(r#""tab\there A end""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A end"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\"1}", "tru", "1 2", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn u64_conversion_is_exact_only() {
        assert_eq!(Json::Num(12.0).as_u64(), Some(12));
        assert_eq!(Json::Num(12.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn obj_builder_preserves_order() {
        let v = obj(vec![("z", Json::Num(1.0)), ("a", Json::Bool(false))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":false}"#);
    }
}
