//! Boolean-logic foundation for the `sebmc` workspace.
//!
//! This crate provides the shared representations used by every other
//! subsystem of the reproduction of *"Space-Efficient Bounded Model
//! Checking"* (DATE 2005):
//!
//! * [`Var`] / [`Lit`] — solver variables and literals (MiniSat-style
//!   packed encoding).
//! * [`Clause`] / [`Cnf`] — clause containers with size accounting, used
//!   by the SAT and QBF solvers and by the BMC encoders.
//! * [`Aig`] / [`AigRef`] — And-Inverter Graphs with structural hashing
//!   and constant folding; the circuit representation of transition
//!   systems.
//! * [`tseitin`] — a full (biconditional) Tseitin transformation from
//!   AIG cones to CNF. The *full* encoding is deliberate: the
//!   polarity-optimised Plaisted–Greenbaum variant only preserves
//!   equisatisfiability, which is unsound underneath the universal
//!   quantifiers of the paper's QBF encodings.
//! * [`dimacs`] — DIMACS CNF reading and writing.
//!
//! # Example
//!
//! Build a tiny circuit, encode it to CNF and inspect the result:
//!
//! ```
//! use sebmc_logic::{Aig, Cnf, VarAlloc, tseitin};
//!
//! let mut aig = Aig::new();
//! let a = aig.input();
//! let b = aig.input();
//! let f = aig.xor(a, b);
//!
//! let mut alloc = VarAlloc::new();
//! let in_lits = [alloc.fresh_lit(), alloc.fresh_lit()];
//! let mut cnf = Cnf::new();
//! let roots = tseitin::encode(&aig, &[f], &in_lits, &mut alloc, &mut cnf);
//! cnf.add_unit(roots[0]); // assert the xor output
//! assert!(cnf.num_clauses() > 0);
//! ```

#![forbid(unsafe_code)]

pub mod aig;
pub mod cnf;
pub mod dimacs;
pub mod fault;
pub mod json;
pub mod lit;
pub mod rng;
pub mod tseitin;

pub use aig::{Aig, AigRef};
pub use cnf::{Clause, Cnf};
pub use dimacs::ParseDimacsError;
pub use lit::{Lit, Var, VarAlloc};
