//! Solver variables and literals.
//!
//! Uses the MiniSat packed representation: a [`Var`] is a dense index,
//! and a [`Lit`] is `var << 1 | sign` so that a literal and its negation
//! are adjacent integers. This layout lets solvers index watch lists and
//! assignment tables directly by literal.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense non-negative index.
///
/// Variables are created by the owning solver or by a [`VarAlloc`]; the
/// index is used directly as a table offset throughout the workspace.
///
/// ```
/// use sebmc_logic::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    #[inline]
    pub fn new(index: u32) -> Self {
        Var(index)
    }

    /// Returns the dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// Returns the literal of this variable with the given polarity.
    ///
    /// `positive == true` yields the positive literal.
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        Lit::new(self, positive)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Packed as `var << 1 | sign`, where `sign == 1` means *negated*. The
/// packed code is exposed through [`Lit::code`] for table indexing.
///
/// ```
/// use sebmc_logic::{Lit, Var};
/// let l = Var::new(7).positive();
/// assert_eq!((!l).var(), l.var());
/// assert!(l.is_positive() && !(!l).is_positive());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and polarity (`true` = positive).
    #[inline]
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// Returns the variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is the positive (unnegated) literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns `true` if this is the negative (negated) literal.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the packed code (`var << 1 | sign`), usable as a dense
    /// table index over literals.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its packed [`code`](Lit::code).
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// Applies an external truth value to this literal: returns the
    /// literal's value when its variable is assigned `value`.
    #[inline]
    pub fn apply(self, value: bool) -> bool {
        value ^ self.is_negative()
    }

    /// Converts to the signed DIMACS convention (`var + 1`, negative if
    /// the literal is negated).
    #[inline]
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().index() + 1) as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Parses a literal from the signed DIMACS convention.
    ///
    /// Returns `None` for `0` (the DIMACS clause terminator).
    #[inline]
    pub fn from_dimacs(value: i64) -> Option<Self> {
        if value == 0 {
            return None;
        }
        let var = Var::new((value.unsigned_abs() - 1) as u32);
        Some(Lit::new(var, value > 0))
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "!x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A monotone allocator of fresh variables.
///
/// Encoders use a `VarAlloc` to create auxiliary (Tseitin) variables
/// without owning a solver. Solvers can resume allocation from an
/// existing count via [`VarAlloc::starting_at`].
///
/// ```
/// use sebmc_logic::VarAlloc;
/// let mut alloc = VarAlloc::new();
/// let a = alloc.fresh();
/// let b = alloc.fresh();
/// assert_ne!(a, b);
/// assert_eq!(alloc.num_vars(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarAlloc {
    next: u32,
}

impl VarAlloc {
    /// Creates an allocator starting at variable index 0.
    pub fn new() -> Self {
        VarAlloc { next: 0 }
    }

    /// Creates an allocator whose first fresh variable has index
    /// `count`, for resuming after `count` existing variables.
    pub fn starting_at(count: usize) -> Self {
        VarAlloc { next: count as u32 }
    }

    /// Allocates and returns a fresh variable.
    #[inline]
    pub fn fresh(&mut self) -> Var {
        let v = Var(self.next);
        self.next += 1;
        v
    }

    /// Allocates a fresh variable and returns its positive literal.
    #[inline]
    pub fn fresh_lit(&mut self) -> Lit {
        self.fresh().positive()
    }

    /// Allocates `n` fresh variables, returning their positive literals.
    pub fn fresh_lits(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.fresh_lit()).collect()
    }

    /// Returns how many variables have been allocated so far.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.next as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_round_trips() {
        for idx in [0u32, 1, 2, 17, 1000] {
            let v = Var::new(idx);
            let p = v.positive();
            let n = v.negative();
            assert_eq!(p.var(), v);
            assert_eq!(n.var(), v);
            assert!(p.is_positive());
            assert!(n.is_negative());
            assert_eq!(!p, n);
            assert_eq!(!n, p);
            assert_eq!(Lit::from_code(p.code()), p);
            assert_eq!(Lit::from_code(n.code()), n);
        }
    }

    #[test]
    fn negation_is_involutive() {
        let l = Var::new(5).negative();
        assert_eq!(!!l, l);
    }

    #[test]
    fn apply_respects_polarity() {
        let v = Var::new(2);
        assert!(v.positive().apply(true));
        assert!(!v.positive().apply(false));
        assert!(!v.negative().apply(true));
        assert!(v.negative().apply(false));
    }

    #[test]
    fn dimacs_conversion_round_trips() {
        for code in 0..20usize {
            let l = Lit::from_code(code);
            assert_eq!(Lit::from_dimacs(l.to_dimacs()), Some(l));
        }
        assert_eq!(Lit::from_dimacs(0), None);
        assert_eq!(Lit::from_dimacs(-1), Some(Var::new(0).negative()));
        assert_eq!(Lit::from_dimacs(3), Some(Var::new(2).positive()));
    }

    #[test]
    fn var_lit_helper_matches_polarity() {
        let v = Var::new(9);
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn alloc_is_monotone_and_resumable() {
        let mut a = VarAlloc::starting_at(4);
        assert_eq!(a.fresh().index(), 4);
        assert_eq!(a.fresh().index(), 5);
        let lits = a.fresh_lits(3);
        assert_eq!(lits.len(), 3);
        assert_eq!(lits[2].var().index(), 8);
        assert_eq!(a.num_vars(), 9);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Var::new(4)), "x4");
        assert_eq!(format!("{}", Var::new(4).negative()), "!x4");
        assert_eq!(format!("{:?}", Var::new(4).positive()), "x4");
    }
}
