//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace is dependency-free, so the seeded randomness needed by
//! the benchmark-suite model generators and the property-style tests
//! lives here. [`SplitMix64`] (Steele, Lea & Flood, OOPSLA 2014) passes
//! BigCrush, needs four lines of state transition, and — unlike a
//! library RNG — guarantees the generated models and test cases are
//! reproducible across toolchain upgrades forever.

/// A 64-bit SplitMix64 generator.
///
/// ```
/// use sebmc_logic::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    ///
    /// Uses the widening-multiply reduction; the modulo bias is
    /// negligible for the small bounds used here.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform value in `lo..=hi`.
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A fair coin flip.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut r = SplitMix64::new(99);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = SplitMix64::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..200 {
            match r.range_inclusive(2, 4) {
                2 => lo_seen = true,
                4 => hi_seen = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
