//! And-Inverter Graphs (AIGs).
//!
//! An AIG represents Boolean functions as a DAG of two-input AND nodes
//! with optional inversion on every edge. This is the circuit format the
//! transition systems of the benchmark suite are built in (it is also the
//! semantic core of the AIGER exchange format handled by `sebmc-aiger`).
//!
//! The graph performs *structural hashing* (identical AND nodes are
//! shared) and constant folding on construction, so the node count is a
//! faithful proxy for circuit size — the quantity `|TR|` that drives the
//! paper's space analysis.

use std::collections::HashMap;
use std::fmt;
use std::ops::Not;

/// A reference to an AIG node with an optional inversion.
///
/// Packed as `node_index << 1 | complement`, mirroring the AIGER literal
/// convention. [`AigRef::FALSE`] and [`AigRef::TRUE`] refer to the
/// constant node 0.
///
/// ```
/// use sebmc_logic::{Aig, AigRef};
/// let mut aig = Aig::new();
/// let a = aig.input();
/// assert_eq!(!!a, a);
/// assert_ne!(!a, a);
/// assert_eq!(AigRef::TRUE, !AigRef::FALSE);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigRef(u32);

impl AigRef {
    /// The constant-false function.
    pub const FALSE: AigRef = AigRef(0);
    /// The constant-true function.
    pub const TRUE: AigRef = AigRef(1);

    #[inline]
    fn new(node: usize, complement: bool) -> Self {
        AigRef((node as u32) << 1 | u32::from(complement))
    }

    /// Index of the referenced node.
    #[inline]
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge inverts the node's function.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this reference is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == 0
    }

    /// The packed code (`node << 1 | complement`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl Not for AigRef {
    type Output = AigRef;

    #[inline]
    fn not(self) -> AigRef {
        AigRef(self.0 ^ 1)
    }
}

impl fmt::Debug for AigRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == AigRef::FALSE {
            write!(f, "0")
        } else if *self == AigRef::TRUE {
            write!(f, "1")
        } else if self.is_complement() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Node {
    /// The constant-false node (always node 0).
    False,
    /// Primary input with its input index.
    Input(u32),
    /// Two-input AND gate.
    And(AigRef, AigRef),
}

/// An And-Inverter Graph with structural hashing and constant folding.
///
/// ```
/// use sebmc_logic::Aig;
/// let mut aig = Aig::new();
/// let a = aig.input();
/// let b = aig.input();
/// let f = aig.or(a, b);
/// assert!(aig.eval(&[true, false], &[f])[0]);
/// assert!(!aig.eval(&[false, false], &[f])[0]);
/// ```
#[derive(Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(AigRef, AigRef), u32>,
    inputs: Vec<u32>,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::False],
            strash: HashMap::new(),
            inputs: Vec::new(),
        }
    }

    /// Adds a fresh primary input and returns its (positive) reference.
    pub fn input(&mut self) -> AigRef {
        let idx = self.nodes.len();
        let input_index = self.inputs.len() as u32;
        self.nodes.push(Node::Input(input_index));
        self.inputs.push(idx as u32);
        AigRef::new(idx, false)
    }

    /// Adds `n` fresh primary inputs.
    pub fn inputs(&mut self, n: usize) -> Vec<AigRef> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Number of primary inputs created so far.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Reference to the `i`-th primary input.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input_ref(&self, i: usize) -> AigRef {
        AigRef::new(self.inputs[i] as usize, false)
    }

    /// Total number of nodes (constant + inputs + AND gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len()
    }

    /// Conjunction of `a` and `b`, with constant folding and structural
    /// hashing.
    pub fn and(&mut self, a: AigRef, b: AigRef) -> AigRef {
        // Constant folding.
        if a == AigRef::FALSE || b == AigRef::FALSE || a == !b {
            return AigRef::FALSE;
        }
        if a == AigRef::TRUE {
            return b;
        }
        if b == AigRef::TRUE || a == b {
            return a;
        }
        // Normalize operand order for the structural hash.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&idx) = self.strash.get(&(a, b)) {
            return AigRef::new(idx as usize, false);
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::And(a, b));
        self.strash.insert((a, b), idx as u32);
        AigRef::new(idx, false)
    }

    /// Disjunction of `a` and `b`.
    pub fn or(&mut self, a: AigRef, b: AigRef) -> AigRef {
        !self.and(!a, !b)
    }

    /// Exclusive or of `a` and `b`.
    pub fn xor(&mut self, a: AigRef, b: AigRef) -> AigRef {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// Biconditional (`a ↔ b`).
    pub fn iff(&mut self, a: AigRef, b: AigRef) -> AigRef {
        !self.xor(a, b)
    }

    /// Implication (`a → b`).
    pub fn implies(&mut self, a: AigRef, b: AigRef) -> AigRef {
        self.or(!a, b)
    }

    /// If-then-else (`c ? t : e`), the Boolean multiplexer.
    pub fn ite(&mut self, c: AigRef, t: AigRef, e: AigRef) -> AigRef {
        let pos = self.and(c, t);
        let neg = self.and(!c, e);
        self.or(pos, neg)
    }

    /// Conjunction of all references in `refs` (true if empty).
    pub fn and_many(&mut self, refs: &[AigRef]) -> AigRef {
        let mut acc = AigRef::TRUE;
        for &r in refs {
            acc = self.and(acc, r);
        }
        acc
    }

    /// Disjunction of all references in `refs` (false if empty).
    pub fn or_many(&mut self, refs: &[AigRef]) -> AigRef {
        let mut acc = AigRef::FALSE;
        for &r in refs {
            acc = self.or(acc, r);
        }
        acc
    }

    /// Word equality: `⋀ aᵢ ↔ bᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if the word widths differ.
    pub fn eq_words(&mut self, a: &[AigRef], b: &[AigRef]) -> AigRef {
        assert_eq!(a.len(), b.len(), "eq_words requires equal widths");
        let mut acc = AigRef::TRUE;
        for (&x, &y) in a.iter().zip(b) {
            let eq = self.iff(x, y);
            acc = self.and(acc, eq);
        }
        acc
    }

    /// Word equality against a constant (`bit i` of `value`).
    pub fn eq_const(&mut self, word: &[AigRef], value: u64) -> AigRef {
        let mut acc = AigRef::TRUE;
        for (i, &bit) in word.iter().enumerate() {
            let want = value >> i & 1 == 1;
            let term = if want { bit } else { !bit };
            acc = self.and(acc, term);
        }
        acc
    }

    /// Ripple-carry increment of a little-endian word; returns the
    /// incremented word (wrapping, same width).
    pub fn increment(&mut self, word: &[AigRef]) -> Vec<AigRef> {
        let mut carry = AigRef::TRUE;
        let mut out = Vec::with_capacity(word.len());
        for &bit in word {
            out.push(self.xor(bit, carry));
            carry = self.and(bit, carry);
        }
        out
    }

    /// Ripple-carry addition of two little-endian words of equal width
    /// (wrapping, same width).
    ///
    /// # Panics
    ///
    /// Panics if the word widths differ.
    pub fn add_words(&mut self, a: &[AigRef], b: &[AigRef]) -> Vec<AigRef> {
        assert_eq!(a.len(), b.len(), "add_words requires equal widths");
        let mut carry = AigRef::FALSE;
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.xor(x, y);
            out.push(self.xor(xy, carry));
            let gen = self.and(x, y);
            let prop = self.and(xy, carry);
            carry = self.or(gen, prop);
        }
        out
    }

    /// Evaluates `roots` under a concrete input assignment.
    ///
    /// `inputs[i]` is the value of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is shorter than [`Aig::num_inputs`].
    pub fn eval(&self, inputs: &[bool], roots: &[AigRef]) -> Vec<bool> {
        assert!(
            inputs.len() >= self.inputs.len(),
            "expected {} input values, got {}",
            self.inputs.len(),
            inputs.len()
        );
        let mut values = vec![false; self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            values[idx] = match *node {
                Node::False => false,
                Node::Input(i) => inputs[i as usize],
                Node::And(a, b) => {
                    (values[a.node()] ^ a.is_complement()) && (values[b.node()] ^ b.is_complement())
                }
            };
        }
        roots
            .iter()
            .map(|r| values[r.node()] ^ r.is_complement())
            .collect()
    }

    /// Bit-parallel evaluation: each input carries 64 independent
    /// assignments packed in a `u64`; returns one packed word per root.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is shorter than [`Aig::num_inputs`].
    pub fn eval_u64(&self, inputs: &[u64], roots: &[AigRef]) -> Vec<u64> {
        assert!(
            inputs.len() >= self.inputs.len(),
            "expected {} input words, got {}",
            self.inputs.len(),
            inputs.len()
        );
        let mut values = vec![0u64; self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            values[idx] = match *node {
                Node::False => 0,
                Node::Input(i) => inputs[i as usize],
                Node::And(a, b) => {
                    let va = values[a.node()] ^ if a.is_complement() { !0 } else { 0 };
                    let vb = values[b.node()] ^ if b.is_complement() { !0 } else { 0 };
                    va & vb
                }
            };
        }
        roots
            .iter()
            .map(|r| values[r.node()] ^ if r.is_complement() { !0 } else { 0 })
            .collect()
    }

    /// Number of AND gates in the combined cone of `roots` — the size
    /// measure used when reporting `|TR|`.
    pub fn cone_size(&self, roots: &[AigRef]) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = roots.iter().map(|r| r.node()).collect();
        let mut count = 0;
        while let Some(idx) = stack.pop() {
            if seen[idx] {
                continue;
            }
            seen[idx] = true;
            if let Node::And(a, b) = self.nodes[idx] {
                count += 1;
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        count
    }

    /// The nodes (input indices or AND fan-ins) reachable from `roots`,
    /// in topological order (fan-ins before fan-outs). Used by the
    /// Tseitin encoder and the AIGER writer.
    pub fn cone_topo(&self, roots: &[AigRef]) -> Vec<usize> {
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        // Iterative post-order DFS.
        let mut stack: Vec<(usize, bool)> = roots.iter().map(|r| (r.node(), false)).collect();
        while let Some((idx, expanded)) = stack.pop() {
            if expanded {
                order.push(idx);
                continue;
            }
            if seen[idx] {
                continue;
            }
            seen[idx] = true;
            stack.push((idx, true));
            if let Node::And(a, b) = self.nodes[idx] {
                stack.push((a.node(), false));
                stack.push((b.node(), false));
            }
        }
        order
    }

    /// Returns the fan-ins of an AND node, or `None` for constants and
    /// inputs.
    pub fn and_fanins(&self, node: usize) -> Option<(AigRef, AigRef)> {
        match self.nodes[node] {
            Node::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Returns the input index of an input node, or `None` otherwise.
    pub fn input_index(&self, node: usize) -> Option<usize> {
        match self.nodes[node] {
            Node::Input(i) => Some(i as usize),
            _ => None,
        }
    }

    /// Whether `node` is the constant node.
    pub fn is_const_node(&self, node: usize) -> bool {
        matches!(self.nodes[node], Node::False)
    }

    /// Copies the cones of `roots` from `other` into this graph,
    /// substituting `other`'s primary input `i` with `input_map[i]`.
    /// Returns the translated roots.
    ///
    /// Structural hashing and constant folding apply during the copy,
    /// so importing the same cone twice (or a cone that simplifies
    /// under the substitution) shares or eliminates nodes. This is how
    /// the BMC encoders instantiate a model's circuit over fresh
    /// variable sets (time frames, the paper's `U`/`V` state copies).
    ///
    /// # Panics
    ///
    /// Panics if `input_map` is shorter than an input index occurring
    /// in the imported cones.
    pub fn import(&mut self, other: &Aig, roots: &[AigRef], input_map: &[AigRef]) -> Vec<AigRef> {
        let mut translated: Vec<Option<AigRef>> = vec![None; other.num_nodes()];
        for idx in other.cone_topo(roots) {
            let new_ref = match other.nodes[idx] {
                Node::False => AigRef::FALSE,
                Node::Input(i) => {
                    assert!(
                        (i as usize) < input_map.len(),
                        "import: input {i} not covered by input_map (len {})",
                        input_map.len()
                    );
                    input_map[i as usize]
                }
                Node::And(a, b) => {
                    let ta = Self::translate(&translated, a);
                    let tb = Self::translate(&translated, b);
                    self.and(ta, tb)
                }
            };
            translated[idx] = Some(new_ref);
        }
        roots
            .iter()
            .map(|&r| Self::translate(&translated, r))
            .collect()
    }

    fn translate(translated: &[Option<AigRef>], r: AigRef) -> AigRef {
        let base = translated[r.node()].expect("cone node translated in topo order");
        if r.is_complement() {
            !base
        } else {
            base
        }
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig {{ inputs: {}, ands: {} }}",
            self.inputs.len(),
            self.num_ands()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates `f` on every assignment of `n` inputs and returns the
    /// truth table as a bit vector.
    fn truth_table(aig: &Aig, f: AigRef, n: usize) -> Vec<bool> {
        let mut table = Vec::new();
        for bits in 0..1u32 << n {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            table.push(aig.eval(&inputs, &[f])[0]);
        }
        table
    }

    #[test]
    fn constants() {
        let aig = Aig::new();
        assert!(!aig.eval(&[], &[AigRef::FALSE])[0]);
        assert!(aig.eval(&[], &[AigRef::TRUE])[0]);
    }

    #[test]
    fn gate_semantics_match_truth_tables() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let and = aig.and(a, b);
        let or = aig.or(a, b);
        let xor = aig.xor(a, b);
        let iff = aig.iff(a, b);
        let imp = aig.implies(a, b);
        // Rows ordered 00, 10, 01, 11 (input 0 is the low bit).
        assert_eq!(truth_table(&aig, and, 2), [false, false, false, true]);
        assert_eq!(truth_table(&aig, or, 2), [false, true, true, true]);
        assert_eq!(truth_table(&aig, xor, 2), [false, true, true, false]);
        assert_eq!(truth_table(&aig, iff, 2), [true, false, false, true]);
        assert_eq!(truth_table(&aig, imp, 2), [true, false, true, true]);
    }

    #[test]
    fn ite_semantics() {
        let mut aig = Aig::new();
        let c = aig.input();
        let t = aig.input();
        let e = aig.input();
        let f = aig.ite(c, t, e);
        for bits in 0..8u32 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = if vals[0] { vals[1] } else { vals[2] };
            assert_eq!(aig.eval(&vals, &[f])[0], expect);
        }
    }

    #[test]
    fn constant_folding() {
        let mut aig = Aig::new();
        let a = aig.input();
        assert_eq!(aig.and(a, AigRef::FALSE), AigRef::FALSE);
        assert_eq!(aig.and(AigRef::FALSE, a), AigRef::FALSE);
        assert_eq!(aig.and(a, AigRef::TRUE), a);
        assert_eq!(aig.and(AigRef::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), AigRef::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let f1 = aig.and(a, b);
        let f2 = aig.and(b, a);
        assert_eq!(f1, f2);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn and_many_or_many_edge_cases() {
        let mut aig = Aig::new();
        assert_eq!(aig.and_many(&[]), AigRef::TRUE);
        assert_eq!(aig.or_many(&[]), AigRef::FALSE);
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let f = aig.and_many(&[a, b, c]);
        assert!(aig.eval(&[true, true, true], &[f])[0]);
        assert!(!aig.eval(&[true, false, true], &[f])[0]);
        let g = aig.or_many(&[a, b, c]);
        assert!(aig.eval(&[false, false, true], &[g])[0]);
        assert!(!aig.eval(&[false, false, false], &[g])[0]);
    }

    #[test]
    fn eq_words_and_eq_const() {
        let mut aig = Aig::new();
        let a: Vec<_> = aig.inputs(3);
        let b: Vec<_> = aig.inputs(3);
        let eq = aig.eq_words(&a, &b);
        assert!(aig.eval(&[true, false, true, true, false, true], &[eq])[0]);
        assert!(!aig.eval(&[true, false, true, true, true, true], &[eq])[0]);

        let k = aig.eq_const(&a, 0b101);
        assert!(aig.eval(&[true, false, true, false, false, false], &[k])[0]);
        assert!(!aig.eval(&[true, true, true, false, false, false], &[k])[0]);
    }

    #[test]
    fn increment_wraps() {
        let mut aig = Aig::new();
        let w: Vec<_> = aig.inputs(3);
        let inc = aig.increment(&w);
        for v in 0..8u64 {
            let inputs: Vec<bool> = (0..3).map(|i| v >> i & 1 == 1).collect();
            let out = aig.eval(&inputs, &inc);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
            assert_eq!(got, (v + 1) % 8, "increment of {v}");
        }
    }

    #[test]
    fn add_words_is_modular_addition() {
        let mut aig = Aig::new();
        let a: Vec<_> = aig.inputs(4);
        let b: Vec<_> = aig.inputs(4);
        let sum = aig.add_words(&a, &b);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut inputs = Vec::new();
                for i in 0..4 {
                    inputs.push(x >> i & 1 == 1);
                }
                for i in 0..4 {
                    inputs.push(y >> i & 1 == 1);
                }
                let out = aig.eval(&inputs, &sum);
                let got = out
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i));
                assert_eq!(got, (x + y) % 16);
            }
        }
    }

    #[test]
    fn eval_u64_matches_eval() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let t = aig.xor(a, b);
        let f = aig.ite(c, t, a);
        // Pack all 8 assignments into one word per input.
        let mut words = [0u64; 3];
        for bits in 0..8u64 {
            for (i, w) in words.iter_mut().enumerate() {
                *w |= (bits >> i & 1) << bits;
            }
        }
        let packed = aig.eval_u64(&words, &[f])[0];
        for bits in 0..8u64 {
            let inputs: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let scalar = aig.eval(&inputs, &[f])[0];
            assert_eq!(packed >> bits & 1 == 1, scalar, "assignment {bits:03b}");
        }
    }

    #[test]
    fn cone_size_counts_only_reachable_ands() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let f = aig.and(a, b);
        let _unused = aig.and(b, c);
        assert_eq!(aig.cone_size(&[f]), 1);
        assert_eq!(aig.num_ands(), 2);
        assert_eq!(aig.cone_size(&[AigRef::TRUE]), 0);
        assert_eq!(aig.cone_size(&[a]), 0);
    }

    #[test]
    fn import_substitutes_inputs() {
        let mut src = Aig::new();
        let a = src.input();
        let b = src.input();
        let f = src.xor(a, b);

        let mut dst = Aig::new();
        let x = dst.input();
        let y = dst.input();
        let z = dst.input();
        // Import xor(a,b) twice with different substitutions.
        let g1 = dst.import(&src, &[f], &[x, y])[0];
        let g2 = dst.import(&src, &[f], &[y, z])[0];
        for bits in 0..8u32 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let out = dst.eval(&vals, &[g1, g2]);
            assert_eq!(out[0], vals[0] ^ vals[1]);
            assert_eq!(out[1], vals[1] ^ vals[2]);
        }
    }

    #[test]
    fn import_is_structurally_hashed() {
        let mut src = Aig::new();
        let a = src.input();
        let b = src.input();
        let f = src.and(a, b);

        let mut dst = Aig::new();
        let x = dst.input();
        let y = dst.input();
        let g1 = dst.import(&src, &[f], &[x, y])[0];
        let before = dst.num_ands();
        let g2 = dst.import(&src, &[f], &[x, y])[0];
        assert_eq!(g1, g2, "identical import shares nodes");
        assert_eq!(dst.num_ands(), before);
    }

    #[test]
    fn import_folds_constants() {
        let mut src = Aig::new();
        let a = src.input();
        let b = src.input();
        let f = src.and(a, b);

        let mut dst = Aig::new();
        let x = dst.input();
        // Substituting b := TRUE folds the AND away.
        let g = dst.import(&src, &[f], &[x, AigRef::TRUE])[0];
        assert_eq!(g, x);
        // Substituting b := FALSE folds to constant false.
        let g0 = dst.import(&src, &[f], &[x, AigRef::FALSE])[0];
        assert_eq!(g0, AigRef::FALSE);
    }

    #[test]
    fn import_complemented_substitution_and_roots() {
        let mut src = Aig::new();
        let a = src.input();
        let b = src.input();
        let f = src.or(a, b);

        let mut dst = Aig::new();
        let x = dst.input();
        let y = dst.input();
        let g = dst.import(&src, &[!f], &[!x, y])[0];
        for bits in 0..4u32 {
            let vals: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            let out = dst.eval(&vals, &[g])[0];
            assert_eq!(out, vals[0] && !vals[1]);
        }
    }

    #[test]
    fn cone_topo_orders_fanins_first() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let f = aig.and(a, b);
        let g = aig.and(f, a);
        let order = aig.cone_topo(&[g]);
        let pos = |n: usize| order.iter().position(|&x| x == n).expect("node in cone");
        assert!(pos(f.node()) < pos(g.node()));
        assert!(pos(a.node()) < pos(f.node()));
    }
}
