//! Property-based tests for the logic foundation: DIMACS round-trips,
//! Tseitin semantics, and AIG import equivalence on random circuits.
//!
//! Dependency-free property style: each test sweeps a seeded
//! [`SplitMix64`] stream of random structures; failures print the case
//! number so any run is reproducible.

use sebmc_logic::rng::SplitMix64;
use sebmc_logic::{dimacs, tseitin, Aig, AigRef, Clause, Cnf, Lit, Var, VarAlloc};

/// A random CNF over up to `max_vars` variables.
fn random_cnf(rng: &mut SplitMix64, max_vars: usize) -> Cnf {
    let mut cnf = Cnf::with_vars(max_vars);
    for _ in 0..rng.below(12) {
        let len = rng.range_inclusive(1, 4);
        cnf.add_clause((0..len).map(|_| Var::new(rng.below(max_vars) as u32).lit(rng.coin())));
    }
    cnf
}

/// A random AIG over 2–5 inputs plus its root (possibly negated).
fn random_circuit(rng: &mut SplitMix64) -> (Aig, AigRef, usize) {
    let inputs = rng.range_inclusive(2, 5);
    let mut aig = Aig::new();
    let mut pool: Vec<AigRef> = (0..inputs).map(|_| aig.input()).collect();
    for _ in 0..rng.range_inclusive(1, 19) {
        let x = pool[rng.below(pool.len())];
        let y = pool[rng.below(pool.len())];
        let x = if rng.coin() { !x } else { x };
        let y = if rng.coin() { !y } else { y };
        let g = match rng.below(4) {
            0 => aig.and(x, y),
            1 => aig.or(x, y),
            2 => aig.xor(x, y),
            _ => aig.ite(x, y, !y),
        };
        pool.push(g);
    }
    let root = *pool.last().expect("non-empty pool");
    let root = if rng.coin() { !root } else { root };
    (aig, root, inputs)
}

fn sweep(seed: u64, cases: u64, check: impl Fn(&mut SplitMix64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(seed ^ (case.wrapping_mul(0x9e37_79b9)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&mut rng)));
        if let Err(e) = result {
            eprintln!("property failed on case {case} (seed {seed})");
            std::panic::resume_unwind(e);
        }
    }
}

#[test]
fn dimacs_round_trip() {
    sweep(0xD1AC, 128, |rng| {
        let cnf = random_cnf(rng, 8);
        let text = dimacs::to_string(&cnf);
        let parsed = dimacs::parse(&text).expect("own output parses");
        assert_eq!(parsed.num_vars(), cnf.num_vars());
        assert_eq!(parsed.num_clauses(), cnf.num_clauses());
        assert_eq!(parsed.clauses(), cnf.clauses());
    });
}

#[test]
fn dimacs_round_trip_preserves_satisfiability() {
    sweep(0xD1AD, 128, |rng| {
        let cnf = random_cnf(rng, 6);
        let parsed = dimacs::parse(&dimacs::to_string(&cnf)).expect("parses");
        assert_eq!(
            parsed.brute_force_satisfiable(),
            cnf.brute_force_satisfiable()
        );
    });
}

/// Full Tseitin is *equivalence*-preserving per input assignment:
/// for any input assignment there is exactly one consistent aux
/// extension, and the root literal equals the circuit value.
#[test]
fn tseitin_preserves_semantics() {
    sweep(0x75E1, 96, |rng| {
        let (aig, root, n) = random_circuit(rng);
        let mut alloc = VarAlloc::new();
        let in_lits: Vec<Lit> = alloc.fresh_lits(n);
        let mut cnf = Cnf::new();
        let root_lit = tseitin::encode(&aig, &[root], &in_lits, &mut alloc, &mut cnf)[0];
        let total = alloc.num_vars();
        if total > 18 {
            return; // keep the enumeration cheap
        }
        for bits in 0..1u32 << n {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let expect = aig.eval(&inputs, &[root])[0];
            let mut found = false;
            for aux in 0..1u32 << (total - n) {
                let mut assignment = inputs.clone();
                for i in 0..total - n {
                    assignment.push(aux >> i & 1 == 1);
                }
                if cnf.eval(&assignment) {
                    assert!(!found, "aux extension must be unique");
                    found = true;
                    let got = root_lit.apply(assignment[root_lit.var().index()]);
                    assert_eq!(got, expect);
                }
            }
            assert!(found, "some aux extension must satisfy the definitions");
        }
    });
}

/// Importing a cone into another graph preserves its function under
/// the input substitution.
#[test]
fn import_preserves_function() {
    sweep(0x14B0, 96, |rng| {
        let (src, root, n) = random_circuit(rng);
        let perm_seed = rng.next_u64();
        let mut dst = Aig::new();
        let fresh: Vec<AigRef> = (0..n).map(|_| dst.input()).collect();
        // A possibly-negating substitution.
        let map: Vec<AigRef> = fresh
            .iter()
            .enumerate()
            .map(|(i, &r)| if perm_seed >> i & 1 == 1 { !r } else { r })
            .collect();
        let imported = dst.import(&src, &[root], &map)[0];
        for bits in 0..1u32 << n {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let substituted: Vec<bool> = inputs
                .iter()
                .enumerate()
                .map(|(i, &b)| b ^ (perm_seed >> i & 1 == 1))
                .collect();
            let expect = src.eval(&substituted, &[root])[0];
            let got = dst.eval(&inputs, &[imported])[0];
            assert_eq!(got, expect, "assignment {bits:b}");
        }
    });
}

/// `eval_u64` agrees with scalar `eval` on every circuit.
#[test]
fn bitparallel_eval_agrees() {
    sweep(0xB17E, 96, |rng| {
        let (aig, root, n) = random_circuit(rng);
        if n > 6 {
            return;
        }
        let mut words = vec![0u64; n];
        for bits in 0..1u64 << n {
            for (i, w) in words.iter_mut().enumerate() {
                *w |= (bits >> i & 1) << bits;
            }
        }
        let packed = aig.eval_u64(&words, &[root])[0];
        for bits in 0..1u64 << n {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(packed >> bits & 1 == 1, aig.eval(&inputs, &[root])[0]);
        }
    });
}

/// Clause normalization never changes clause semantics.
#[test]
fn normalize_preserves_clause_semantics() {
    sweep(0x4084, 128, |rng| {
        let len = rng.range_inclusive(1, 7);
        let mut clause =
            Clause::from_lits((0..len).map(|_| Var::new(rng.below(5) as u32).lit(rng.coin())));
        let original = clause.clone();
        let tautology = clause.normalize();
        for bits in 0..1u32 << 5 {
            let assignment: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let expect = original.eval(&assignment);
            if tautology {
                assert!(expect, "tautologies are true everywhere");
            } else {
                assert_eq!(clause.eval(&assignment), expect);
            }
        }
    });
}
