//! Property-based tests for the logic foundation: DIMACS round-trips,
//! Tseitin semantics, and AIG import equivalence on random circuits.

use proptest::prelude::*;
use sebmc_logic::{dimacs, tseitin, Aig, AigRef, Clause, Cnf, Lit, Var, VarAlloc};

/// Strategy: a random CNF over up to `max_vars` variables.
fn cnf_strategy(max_vars: u32) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(
        prop::collection::vec((0..max_vars, any::<bool>()), 1..5),
        0..12,
    )
    .prop_map(move |clauses| {
        let mut cnf = Cnf::with_vars(max_vars as usize);
        for c in clauses {
            cnf.add_clause(c.into_iter().map(|(v, pos)| Var::new(v).lit(pos)));
        }
        cnf
    })
}

/// Strategy: a recipe for a random AIG over `n` inputs.
#[derive(Debug, Clone)]
struct CircuitRecipe {
    inputs: usize,
    gates: Vec<(u8, u16, u16, bool, bool)>,
    root_neg: bool,
}

fn circuit_strategy() -> impl Strategy<Value = CircuitRecipe> {
    (2usize..=5)
        .prop_flat_map(|inputs| {
            (
                prop::collection::vec(
                    (any::<u8>(), any::<u16>(), any::<u16>(), any::<bool>(), any::<bool>()),
                    1..20,
                ),
                any::<bool>(),
            )
                .prop_map(move |(gates, root_neg)| CircuitRecipe {
                    inputs,
                    gates,
                    root_neg,
                })
        })
}

fn build_circuit(recipe: &CircuitRecipe) -> (Aig, AigRef) {
    let mut aig = Aig::new();
    let mut pool: Vec<AigRef> = (0..recipe.inputs).map(|_| aig.input()).collect();
    for &(op, a, b, na, nb) in &recipe.gates {
        let x = pool[a as usize % pool.len()];
        let y = pool[b as usize % pool.len()];
        let x = if na { !x } else { x };
        let y = if nb { !y } else { y };
        let g = match op % 4 {
            0 => aig.and(x, y),
            1 => aig.or(x, y),
            2 => aig.xor(x, y),
            _ => aig.ite(x, y, !y),
        };
        pool.push(g);
    }
    let root = *pool.last().expect("non-empty pool");
    (aig, if recipe.root_neg { !root } else { root })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dimacs_round_trip(cnf in cnf_strategy(8)) {
        let text = dimacs::to_string(&cnf);
        let parsed = dimacs::parse(&text).expect("own output parses");
        prop_assert_eq!(parsed.num_vars(), cnf.num_vars());
        prop_assert_eq!(parsed.num_clauses(), cnf.num_clauses());
        prop_assert_eq!(parsed.clauses(), cnf.clauses());
    }

    #[test]
    fn dimacs_round_trip_preserves_satisfiability(cnf in cnf_strategy(6)) {
        let parsed = dimacs::parse(&dimacs::to_string(&cnf)).expect("parses");
        prop_assert_eq!(
            parsed.brute_force_satisfiable(),
            cnf.brute_force_satisfiable()
        );
    }

    /// Full Tseitin is *equivalence*-preserving per input assignment:
    /// for any input assignment there is exactly one consistent aux
    /// extension, and the root literal equals the circuit value.
    #[test]
    fn tseitin_preserves_semantics(recipe in circuit_strategy()) {
        let (aig, root) = build_circuit(&recipe);
        let n = recipe.inputs;
        let mut alloc = VarAlloc::new();
        let in_lits: Vec<Lit> = alloc.fresh_lits(n);
        let mut cnf = Cnf::new();
        let root_lit = tseitin::encode(&aig, &[root], &in_lits, &mut alloc, &mut cnf)[0];
        let total = alloc.num_vars();
        prop_assume!(total <= 18); // keep the enumeration cheap
        for bits in 0..1u32 << n {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let expect = aig.eval(&inputs, &[root])[0];
            let mut found = false;
            for aux in 0..1u32 << (total - n) {
                let mut assignment = inputs.clone();
                for i in 0..total - n {
                    assignment.push(aux >> i & 1 == 1);
                }
                if cnf.eval(&assignment) {
                    prop_assert!(!found, "aux extension must be unique");
                    found = true;
                    let got = root_lit.apply(assignment[root_lit.var().index()]);
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert!(found, "some aux extension must satisfy the definitions");
        }
    }

    /// Importing a cone into another graph preserves its function under
    /// the input substitution.
    #[test]
    fn import_preserves_function(recipe in circuit_strategy(), perm_seed in any::<u64>()) {
        let (src, root) = build_circuit(&recipe);
        let n = recipe.inputs;
        let mut dst = Aig::new();
        let fresh: Vec<AigRef> = (0..n).map(|_| dst.input()).collect();
        // A possibly-negating substitution.
        let map: Vec<AigRef> = fresh
            .iter()
            .enumerate()
            .map(|(i, &r)| if perm_seed >> i & 1 == 1 { !r } else { r })
            .collect();
        let imported = dst.import(&src, &[root], &map)[0];
        for bits in 0..1u32 << n {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let substituted: Vec<bool> = inputs
                .iter()
                .enumerate()
                .map(|(i, &b)| b ^ (perm_seed >> i & 1 == 1))
                .collect();
            let expect = src.eval(&substituted, &[root])[0];
            let got = dst.eval(&inputs, &[imported])[0];
            prop_assert_eq!(got, expect, "assignment {:b}", bits);
        }
    }

    /// `eval_u64` agrees with scalar `eval` on every circuit.
    #[test]
    fn bitparallel_eval_agrees(recipe in circuit_strategy()) {
        let (aig, root) = build_circuit(&recipe);
        let n = recipe.inputs;
        prop_assume!(n <= 6);
        let mut words = vec![0u64; n];
        for bits in 0..1u64 << n {
            for (i, w) in words.iter_mut().enumerate() {
                *w |= (bits >> i & 1) << bits;
            }
        }
        let packed = aig.eval_u64(&words, &[root])[0];
        for bits in 0..1u64 << n {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(
                packed >> bits & 1 == 1,
                aig.eval(&inputs, &[root])[0]
            );
        }
    }

    /// Clause normalization never changes clause semantics.
    #[test]
    fn normalize_preserves_clause_semantics(
        lits in prop::collection::vec((0u32..5, any::<bool>()), 1..8)
    ) {
        let mut clause = Clause::from_lits(
            lits.iter().map(|&(v, p)| Var::new(v).lit(p))
        );
        let original = clause.clone();
        let tautology = clause.normalize();
        for bits in 0..1u32 << 5 {
            let assignment: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let expect = original.eval(&assignment);
            if tautology {
                prop_assert!(expect, "tautologies are true everywhere");
            } else {
                prop_assert_eq!(clause.eval(&assignment), expect);
            }
        }
    }
}
