//! Propagation microbench — the solver's hottest loop in isolation.
//!
//! Builds a CNF whose full assignment is forced by unit propagation
//! alone from a handful of assumptions: long binary implication chains
//! (≥ 30% binary clauses, the workload the binary-clause fast path is
//! for) interleaved with ternary clauses whose watchers must be
//! visited and moved as the chains fire. Every `solve_with` call then
//! re-runs the same deterministic BCP cascade from scratch, so the
//! measured time is propagation, not search.
//!
//! Run with `cargo bench --bench propagation`; pass `--json` to print
//! a machine-readable summary (used for `BENCH_pr1.json`).

use sebmc_bench::microbench::{print_json, run};
use sebmc_logic::Lit;
use sebmc_sat::{SolveResult, Solver};

/// Builds the chain instance: `chains` disjoint implication chains of
/// `len` variables each, plus one ternary clause per chain link
/// (¬xᵢ ∨ ¬xⱼ ∨ xₖ with k later in the chain, satisfied by the forced
/// assignment but watched throughout the cascade).
fn chain_instance(chains: usize, len: usize) -> (Solver, Vec<Lit>) {
    assert!(len >= 6);
    let mut s = Solver::new();
    let mut heads = Vec::with_capacity(chains);
    for _ in 0..chains {
        let vars: Vec<Lit> = (0..len).map(|_| s.new_var().positive()).collect();
        heads.push(vars[0]);
        for w in vars.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        // Satisfied-by-the-cascade side clauses whose watchers must be
        // visited (and moved) as the chain fires: two ternaries and one
        // 5-ary per link, i.e. ~40% binary clauses overall.
        for i in 0..len - 5 {
            s.add_clause([!vars[i], !vars[i + 1], vars[i + 3]]);
            s.add_clause([!vars[i + 1], !vars[i], vars[i + 4]]);
            s.add_clause([
                !vars[i],
                !vars[i + 2],
                !vars[i + 3],
                !vars[i + 1],
                vars[i + 5],
            ]);
        }
    }
    (s, heads)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let (mut s, heads) = chain_instance(300, 100);
    // Warm the clause database once; subsequent calls redo only BCP.
    assert_eq!(s.solve_with(&heads), SolveResult::Sat);
    let props_before = s.stats().propagations;
    assert_eq!(s.solve_with(&heads), SolveResult::Sat);
    let props_per_iter = s.stats().propagations - props_before;

    let sample = run("propagation/binary_chain_30k", 5, 30, || {
        s.solve_with(&heads)
    });
    println!(
        "  {} propagations/iter, {:.1} M props/s (median)",
        props_per_iter,
        props_per_iter as f64 * 1e3 / sample.median_ns as f64
    );

    // A denser variant: shorter chains, more ternary traffic per var.
    let (mut s2, heads2) = chain_instance(1000, 20);
    assert_eq!(s2.solve_with(&heads2), SolveResult::Sat);
    let sample2 = run("propagation/binary_chain_dense_20k", 5, 30, || {
        s2.solve_with(&heads2)
    });

    if json {
        print_json(&[sample, sample2]);
    }
}
