//! Propagation microbench — the solver's hottest loop in isolation.
//!
//! Builds a CNF whose full assignment is forced by unit propagation
//! alone from a handful of assumptions: long binary implication chains
//! (≥ 30% binary clauses, the workload the binary-clause fast path is
//! for) interleaved with ternary clauses whose watchers must be
//! visited and moved as the chains fire. Every `solve_with` call then
//! re-runs the same deterministic BCP cascade from scratch, so the
//! measured time is propagation, not search.
//!
//! Run with `cargo bench --bench propagation`; pass `--json` to print
//! a machine-readable summary (used for `BENCH_pr1.json`).

use sebmc_bench::microbench::{print_json, run};
use sebmc_bench::workloads::{chain_instance, churn_instance};
use sebmc_sat::SolveResult;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let (mut s, heads) = chain_instance(300, 100);
    // Warm the clause database once; subsequent calls redo only BCP.
    assert_eq!(s.solve_with(&heads), SolveResult::Sat);
    let props_before = s.stats().propagations;
    assert_eq!(s.solve_with(&heads), SolveResult::Sat);
    let props_per_iter = s.stats().propagations - props_before;

    let sample = run("propagation/binary_chain_30k", 5, 30, || {
        s.solve_with(&heads)
    });
    println!(
        "  {} propagations/iter, {:.1} M props/s (median)",
        props_per_iter,
        props_per_iter as f64 * 1e3 / sample.median_ns as f64
    );
    println!(
        "  clause arena {} B, watch storage {} B (resident)",
        s.clause_db_resident_bytes(),
        s.watch_db_resident_bytes()
    );

    // A denser variant: shorter chains, more ternary traffic per var.
    let (mut s2, heads2) = chain_instance(1000, 20);
    assert_eq!(s2.solve_with(&heads2), SolveResult::Sat);
    let sample2 = run("propagation/binary_chain_dense_20k", 5, 30, || {
        s2.solve_with(&heads2)
    });

    // The watch-layout stressor: wide clauses, constant watcher
    // migration between lists.
    let (mut s3, heads3) = churn_instance(4000, 8);
    assert_eq!(s3.solve_with(&heads3), SolveResult::Sat);
    let sample3 = run("propagation/watch_churn_4k_w8", 5, 30, || {
        s3.solve_with(&heads3)
    });
    println!(
        "  clause arena {} B, watch storage {} B (resident)",
        s3.clause_db_resident_bytes(),
        s3.watch_db_resident_bytes()
    );

    if json {
        print_json(&[sample, sample2, sample3]);
    }
}
