//! Propagation microbench — the solver's hottest loop in isolation.
//!
//! Builds a CNF whose full assignment is forced by unit propagation
//! alone from a handful of assumptions: long binary implication chains
//! (≥ 30% binary clauses, the workload the binary-clause fast path is
//! for) interleaved with ternary clauses whose watchers must be
//! visited and moved as the chains fire. Every `solve_with` call then
//! re-runs the same deterministic BCP cascade from scratch, so the
//! measured time is propagation, not search.
//!
//! Run with `cargo bench --bench propagation`; pass `--json` to print
//! a machine-readable summary (used for `BENCH_pr1.json`).

use sebmc_bench::microbench::{print_json, run};
use sebmc_logic::Lit;
use sebmc_sat::{SolveResult, Solver};

/// Builds the chain instance: `chains` disjoint implication chains of
/// `len` variables each, plus one ternary clause per chain link
/// (¬xᵢ ∨ ¬xⱼ ∨ xₖ with k later in the chain, satisfied by the forced
/// assignment but watched throughout the cascade).
fn chain_instance(chains: usize, len: usize) -> (Solver, Vec<Lit>) {
    assert!(len >= 6);
    let mut s = Solver::new();
    let mut heads = Vec::with_capacity(chains);
    for _ in 0..chains {
        let vars: Vec<Lit> = (0..len).map(|_| s.new_var().positive()).collect();
        heads.push(vars[0]);
        for w in vars.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        // Satisfied-by-the-cascade side clauses whose watchers must be
        // visited (and moved) as the chain fires: two ternaries and one
        // 5-ary per link, i.e. ~40% binary clauses overall.
        for i in 0..len - 5 {
            s.add_clause([!vars[i], !vars[i + 1], vars[i + 3]]);
            s.add_clause([!vars[i + 1], !vars[i], vars[i + 4]]);
            s.add_clause([
                !vars[i],
                !vars[i + 2],
                !vars[i + 3],
                !vars[i + 1],
                vars[i + 5],
            ]);
        }
    }
    (s, heads)
}

/// A watch-churn instance: wide clauses over shuffled variables whose
/// watchers must migrate between lists throughout every cascade — the
/// worst case for the watch layout's push/relocate path, as opposed to
/// the chain instances' scan-dominated walks.
fn churn_instance(vars: usize, width: usize) -> (Solver, Vec<Lit>) {
    use sebmc_logic::rng::SplitMix64;
    let mut rng = SplitMix64::new(0xc4a2_a11e);
    let mut s = Solver::new();
    let v: Vec<Lit> = (0..vars).map(|_| s.new_var().positive()).collect();
    // An implication spine forces the full assignment…
    for w in v.windows(2) {
        s.add_clause([!w[0], w[1]]);
    }
    // …and wide satisfied-late clauses keep watchers migrating: every
    // literal is the negation of a spine variable except one far-ahead
    // positive, so each cascade falsifies watch after watch.
    for _ in 0..vars * 2 {
        let mut c: Vec<Lit> = (0..width - 1)
            .map(|_| !v[rng.below(vars * 3 / 4)])
            .collect();
        c.push(v[vars - 1 - rng.below(vars / 8)]);
        s.add_clause(c);
    }
    (s, vec![v[0]])
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let (mut s, heads) = chain_instance(300, 100);
    // Warm the clause database once; subsequent calls redo only BCP.
    assert_eq!(s.solve_with(&heads), SolveResult::Sat);
    let props_before = s.stats().propagations;
    assert_eq!(s.solve_with(&heads), SolveResult::Sat);
    let props_per_iter = s.stats().propagations - props_before;

    let sample = run("propagation/binary_chain_30k", 5, 30, || {
        s.solve_with(&heads)
    });
    println!(
        "  {} propagations/iter, {:.1} M props/s (median)",
        props_per_iter,
        props_per_iter as f64 * 1e3 / sample.median_ns as f64
    );
    println!(
        "  clause arena {} B, watch storage {} B (resident)",
        s.clause_db_resident_bytes(),
        s.watch_db_resident_bytes()
    );

    // A denser variant: shorter chains, more ternary traffic per var.
    let (mut s2, heads2) = chain_instance(1000, 20);
    assert_eq!(s2.solve_with(&heads2), SolveResult::Sat);
    let sample2 = run("propagation/binary_chain_dense_20k", 5, 30, || {
        s2.solve_with(&heads2)
    });

    // The watch-layout stressor: wide clauses, constant watcher
    // migration between lists.
    let (mut s3, heads3) = churn_instance(4000, 8);
    assert_eq!(s3.solve_with(&heads3), SolveResult::Sat);
    let sample3 = run("propagation/watch_churn_4k_w8", 5, 30, || {
        s3.solve_with(&heads3)
    });
    println!(
        "  clause arena {} B, watch storage {} B (resident)",
        s3.clause_db_resident_bytes(),
        s3.watch_db_resident_bytes()
    );

    if json {
        print_json(&[sample, sample2, sample3]);
    }
}
