//! Proof-logging overhead microbench (PR 5).
//!
//! Three variants of the same conflict-heavy UNSAT workload
//! (pigeonhole 7→6, built fresh per iteration so incremental state
//! never leaks between samples):
//!
//! * `log_off` — no proof sink: the baseline, and the configuration
//!   the existing perf-regression gate keeps honest (logging disabled
//!   must cost nothing but one `Option` branch at the hook sites);
//! * `log_drat` — a write-only binary-DRAT sink into `io::sink()`:
//!   the pure cost of encoding the event stream;
//! * `log_checked` — the full [`StreamingChecker`]: encoding plus
//!   on-the-fly forward checking through the bounded ring.
//!
//! Results are recorded into `BENCH_pr5.json`; the perf gate treats
//! these workloads as **record-only** (no pre-PR baseline exists, so
//! they inform rather than gate — see `sebmc_bench`).

use sebmc_bench::microbench::run;
use sebmc_bench::workloads::pigeonhole_instance;
use sebmc_proof::{DratWriter, StreamingChecker};
use sebmc_sat::SolveResult;

const PIGEONS: usize = 7;
const HOLES: usize = 6;
const SAMPLES: usize = 20;

fn main() {
    println!("# proof-logging overhead: pigeonhole {PIGEONS}->{HOLES}, build+solve per iteration");

    let off = run("proof/php76_log_off", 3, SAMPLES, || {
        let mut s = pigeonhole_instance(PIGEONS, HOLES, None);
        assert_eq!(s.solve(), SolveResult::Unsat);
        s.stats().conflicts
    });
    let drat = run("proof/php76_log_drat", 3, SAMPLES, || {
        let mut s = pigeonhole_instance(
            PIGEONS,
            HOLES,
            Some(Box::new(DratWriter::new(std::io::sink()))),
        );
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.proof_bytes() > 0);
        s.proof_bytes()
    });
    let checked = run("proof/php76_log_checked", 3, SAMPLES, || {
        let mut s = pigeonhole_instance(PIGEONS, HOLES, Some(Box::new(StreamingChecker::new())));
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.proof_certifies(&[]));
        s.proof_bytes()
    });

    println!(
        "# writer overhead {:.2}x, full checking {:.2}x over logging-off",
        drat.median_ns as f64 / off.median_ns as f64,
        checked.median_ns as f64 / off.median_ns as f64,
    );
    println!(
        "[\n  {},\n  {},\n  {}\n]",
        off.to_json(),
        drat.to_json(),
        checked.to_json()
    );
}
