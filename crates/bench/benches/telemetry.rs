//! Telemetry overhead microbench (PR 10).
//!
//! Two variants of the propagation gate's own workload
//! (`chain_instance(300, 100)` — the `propagation/binary_chain_30k`
//! instance, warmed once so every sample is pure BCP):
//!
//! * `progress_off` — default [`Limits`], no progress sink: the
//!   configuration every existing caller gets, and the one the perf
//!   gate keeps honest against the pre-telemetry `BENCH_pr3.json`
//!   baseline (an uninstalled [`ProgressHandle`] must cost one
//!   `Option` branch at the poll sites and nothing on the BCP loop);
//! * `progress_on` — a live [`Telemetry`] sink installed on the
//!   limits: the cost of sampling. The workload is conflict-free, so
//!   only the solve-exit poll fires — this measures the handle riding
//!   the hot path, which is exactly the regression the gate guards.
//!
//! Results are recorded into `BENCH_pr10.json`; the perf gate treats
//! these workloads as **record-only** (no pre-PR baseline exists for
//! them — the off-path is instead covered by the gated propagation
//! workloads themselves, which run with telemetry absent).

use std::sync::Arc;

use sebmc_bench::microbench::run;
use sebmc_bench::workloads::chain_instance;
use sebmc_sat::{Limits, SolveResult};
use sebmc_telemetry::Telemetry;

const SAMPLES: usize = 20;

fn main() {
    println!("# telemetry overhead: binary_chain_30k BCP cascade, telemetry off vs on");

    let (mut s, heads) = chain_instance(300, 100);
    assert_eq!(s.solve_with(&heads), SolveResult::Sat);
    let off = run("telemetry/chain30k_progress_off", 5, SAMPLES, || {
        s.solve_with(&heads)
    });

    let telemetry = Arc::new(Telemetry::new());
    s.set_limits(Limits {
        progress: telemetry.progress_handle(),
        ..Limits::none()
    });
    let on = run("telemetry/chain30k_progress_on", 5, SAMPLES, || {
        s.solve_with(&heads)
    });
    assert!(
        telemetry
            .snapshot_json()
            .contains("\"solver_propagations\":"),
        "the sink saw progress samples"
    );

    println!(
        "# live sink {:.2}x over uninstalled handle",
        on.median_ns as f64 / off.median_ns as f64,
    );
    println!("[\n  {},\n  {}\n]", off.to_json(), on.to_json());
}
