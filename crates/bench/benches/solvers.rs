//! Benches for the four engines on small instances (supports E1):
//! end-to-end check time per engine, SAT and UNSAT.

use sebmc::{
    BoundedChecker, Budget, JSat, QbfBackend, QbfLinear, QbfSquaring, Semantics, UnrollSat,
};
use sebmc_bench::microbench::run;
use sebmc_model::builders::{counter_with_reset, token_ring, traffic_light};
use std::time::Duration;

fn main() {
    // Reachable at exactly 3.
    let model = token_ring(4);
    run("solve_reachable_k3/sat_unroll", 3, 20, || {
        let mut e = UnrollSat::default();
        e.check(&model, 3, Semantics::Exactly)
    });
    run("solve_reachable_k3/jsat", 3, 20, || {
        let mut e = JSat::default();
        e.check(&model, 3, Semantics::Exactly)
    });
    run("solve_reachable_k3/qbf_linear_qdpll", 3, 20, || {
        let mut e = QbfLinear::new(QbfBackend::Qdpll);
        e.check(&model, 3, Semantics::Exactly)
    });
    run(
        "solve_reachable_k3/qbf_squaring_expansion_k4",
        3,
        20,
        || {
            let mut e = QbfSquaring::new(QbfBackend::Expansion);
            e.check(&model, 4, Semantics::Exactly)
        },
    );

    // Unreachable at every bound.
    let model = traffic_light();
    run("solve_unsat_k6/sat_unroll", 3, 20, || {
        let mut e = UnrollSat::default();
        e.check(&model, 6, Semantics::Exactly)
    });
    run("solve_unsat_k6/jsat", 3, 20, || {
        let mut e = JSat::default();
        e.check(&model, 6, Semantics::Exactly)
    });
    // Memory split of the SAT-backed engines on the UNSAT instance:
    // clause arena vs watch-structure bytes (both exact).
    for (name, out) in [
        ("sat_unroll", {
            let mut e = UnrollSat::default();
            e.check(&model, 6, Semantics::Exactly)
        }),
        ("jsat", {
            let mut e = JSat::default();
            e.check(&model, 6, Semantics::Exactly)
        }),
    ] {
        println!(
            "  {name}: peak clause-db {} B, peak watch storage {} B",
            out.stats.peak_formula_bytes, out.stats.peak_watch_bytes
        );
    }

    // The E1 harness spends most wall time on QBF timeouts; verify the
    // budget check itself is cheap.
    let model = counter_with_reset(4);
    run("qbf_budget_overhead/qdpll_10ms_budget", 2, 10, || {
        let mut e = QbfLinear::with_budget(
            QbfBackend::Qdpll,
            Budget::with_timeout(Duration::from_millis(10)),
        );
        e.check(&model, 15, Semantics::Exactly)
    });
}
