//! Criterion benches for the four engines on small instances
//! (supports E1): end-to-end check time per engine, SAT and UNSAT.

use criterion::{criterion_group, criterion_main, Criterion};
use sebmc::{
    BoundedChecker, EngineLimits, JSat, QbfBackend, QbfLinear, QbfSquaring, Semantics, UnrollSat,
};
use sebmc_model::builders::{counter_with_reset, token_ring, traffic_light};
use std::hint::black_box;
use std::time::Duration;

fn bench_engines_reachable(c: &mut Criterion) {
    let model = token_ring(4); // reachable at exactly 3
    let mut group = c.benchmark_group("solve_reachable_k3");
    group.sample_size(20);
    group.bench_function("sat_unroll", |b| {
        b.iter(|| {
            let mut e = UnrollSat::default();
            black_box(e.check(&model, 3, Semantics::Exactly))
        })
    });
    group.bench_function("jsat", |b| {
        b.iter(|| {
            let mut e = JSat::default();
            black_box(e.check(&model, 3, Semantics::Exactly))
        })
    });
    group.bench_function("qbf_linear_qdpll", |b| {
        b.iter(|| {
            let mut e = QbfLinear::new(QbfBackend::Qdpll);
            black_box(e.check(&model, 3, Semantics::Exactly))
        })
    });
    group.bench_function("qbf_squaring_expansion_k4", |b| {
        b.iter(|| {
            let mut e = QbfSquaring::new(QbfBackend::Expansion);
            black_box(e.check(&model, 4, Semantics::Exactly))
        })
    });
    group.finish();
}

fn bench_engines_unsat(c: &mut Criterion) {
    let model = traffic_light(); // unreachable at every bound
    let mut group = c.benchmark_group("solve_unsat_k6");
    group.sample_size(20);
    group.bench_function("sat_unroll", |b| {
        b.iter(|| {
            let mut e = UnrollSat::default();
            black_box(e.check(&model, 6, Semantics::Exactly))
        })
    });
    group.bench_function("jsat", |b| {
        b.iter(|| {
            let mut e = JSat::default();
            black_box(e.check(&model, 6, Semantics::Exactly))
        })
    });
    group.finish();
}

fn bench_budgeted_qbf_gives_up_fast(c: &mut Criterion) {
    // The E1 harness spends most wall time on QBF timeouts; verify the
    // budget check itself is cheap.
    let model = counter_with_reset(4);
    let mut group = c.benchmark_group("qbf_budget_overhead");
    group.sample_size(10);
    group.bench_function("qdpll_10ms_budget", |b| {
        b.iter(|| {
            let mut e = QbfLinear::with_limits(
                QbfBackend::Qdpll,
                EngineLimits::with_timeout(Duration::from_millis(10)),
            );
            black_box(e.check(&model, 15, Semantics::Exactly))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engines_reachable,
    bench_engines_unsat,
    bench_budgeted_qbf_gives_up_fast
);
criterion_main!(benches);
