//! Criterion benches for the three encodings (supports E2/E3): how
//! long it takes to *build* each formulation, per bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebmc::{encode_qbf_linear, encode_qbf_squaring, encode_unrolled, Semantics};
use sebmc_model::builders::{dense_fsm, round_robin_arbiter};
use std::hint::black_box;

fn bench_encoders(c: &mut Criterion) {
    let model = round_robin_arbiter(6);
    let mut group = c.benchmark_group("encode");
    group.sample_size(20);
    for k in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("unroll", k), &k, |b, &k| {
            b.iter(|| black_box(encode_unrolled(&model, k, Semantics::Exactly)))
        });
        group.bench_with_input(BenchmarkId::new("qbf_linear", k), &k, |b, &k| {
            b.iter(|| black_box(encode_qbf_linear(&model, k)))
        });
        if k.is_power_of_two() {
            group.bench_with_input(BenchmarkId::new("qbf_squaring", k), &k, |b, &k| {
                b.iter(|| black_box(encode_qbf_squaring(&model, k)))
            });
        }
    }
    group.finish();
}

fn bench_encoding_scales_with_tr(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_tr_scaling");
    group.sample_size(20);
    for gates in [200usize, 800] {
        let model = dense_fsm(8, 2, gates, 7);
        group.bench_with_input(
            BenchmarkId::new("unroll_k8", gates),
            &model,
            |b, model| b.iter(|| black_box(encode_unrolled(model, 8, Semantics::Exactly))),
        );
        group.bench_with_input(
            BenchmarkId::new("qbf_linear_k8", gates),
            &model,
            |b, model| b.iter(|| black_box(encode_qbf_linear(model, 8))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encoders, bench_encoding_scales_with_tr);
criterion_main!(benches);
