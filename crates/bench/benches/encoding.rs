//! Benches for the three encodings (supports E2/E3): how long it takes
//! to *build* each formulation, per bound.

use sebmc::{encode_qbf_linear, encode_qbf_squaring, encode_unrolled, Semantics};
use sebmc_bench::microbench::run;
use sebmc_model::builders::{dense_fsm, round_robin_arbiter};

fn main() {
    let model = round_robin_arbiter(6);
    for k in [4usize, 8, 16] {
        run(&format!("encode/unroll/{k}"), 3, 20, || {
            encode_unrolled(&model, k, Semantics::Exactly)
        });
        run(&format!("encode/qbf_linear/{k}"), 3, 20, || {
            encode_qbf_linear(&model, k)
        });
        if k.is_power_of_two() {
            run(&format!("encode/qbf_squaring/{k}"), 3, 20, || {
                encode_qbf_squaring(&model, k)
            });
        }
    }

    for gates in [200usize, 800] {
        let model = dense_fsm(8, 2, gates, 7);
        run(
            &format!("encode_tr_scaling/unroll_k8/{gates}"),
            3,
            20,
            || encode_unrolled(&model, 8, Semantics::Exactly),
        );
        run(
            &format!("encode_tr_scaling/qbf_linear_k8/{gates}"),
            3,
            20,
            || encode_qbf_linear(&model, 8),
        );
    }
}
