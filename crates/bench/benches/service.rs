//! Service throughput microbench — jobs/sec vs worker count, and
//! per-bound portfolio deepening vs the whole-run portfolio.
//!
//! Three questions, all feeding `BENCH_pr4.json`:
//!
//! 1. **Scaling**: how does a queue of 8 comparable solver-bound jobs
//!    (jsat on `fifo(3)`, bounds 0..=10 — ~10⁸ ns of search each)
//!    scale across 1/2/4 workers? (The built-in suites are no scaling
//!    workload: one job dominates their wall clock a hundredfold.)
//! 2. **Overhead**: how fast does the pool drain the 13-job small
//!    suite where every job is trivial (queue/dispatch dominated)?
//! 3. **Portfolio deepening**: on one deepening run to the first
//!    reachable bound, how does racing *live* sessions per bound
//!    (`DeepeningPortfolio`) compare with PR 2's whole-run races
//!    (`run_portfolio` with fresh sessions at every bound)?
//!
//! Run with `cargo bench --bench service`; pass `--json` for a
//! machine-readable summary.

use sebmc::{run_portfolio, Budget, DeepeningPortfolio, Engine, JSat, Semantics, UnrollSat};
use sebmc_bench::microbench::{print_json, run, Sample};
use sebmc_model::builders::{fifo, token_ring};
use sebmc_service::{suite_jobs, CheckService, EngineKind, Job, ServiceConfig};

/// Drains `n_jobs` equal-weight jsat jobs (fifo(3), bounds 0..=10, an
/// unreachable sweep with real DFS effort) on `workers` workers once.
fn drain_heavy(n_jobs: usize, workers: usize) -> usize {
    let mut svc = CheckService::new(ServiceConfig::with_workers(workers));
    for i in 0..n_jobs {
        let mut job = Job::new(fifo(3), vec![EngineKind::Jsat], 10);
        job.name = format!("fifo_3#{i}");
        svc.submit(job);
    }
    let report = svc.run();
    assert_eq!(report.unknown, 0, "fifo(3) sweeps must decide");
    report.jobs.len()
}

/// Drains the 13-job small-suite batch on `workers` workers once.
fn drain_suite(workers: usize) -> usize {
    let mut svc = CheckService::new(ServiceConfig::with_workers(workers));
    for job in suite_jobs(true, &[EngineKind::Jsat], 6, &Budget::none()) {
        svc.submit(job);
    }
    let report = svc.run();
    assert_eq!(report.jobs.len(), 13);
    assert_eq!(report.unknown, 0, "the small suite decides everywhere");
    report.jobs.len()
}

/// One portfolio-level deepening run to the first reachable bound.
fn deepen_per_bound(max_bound: usize) -> usize {
    let model = token_ring(8); // first reachable at bound 7
    let engines: Vec<Box<dyn Engine + Send>> =
        vec![Box::new(JSat::default()), Box::new(UnrollSat::default())];
    let mut p = DeepeningPortfolio::start(&model, Semantics::Exactly, engines, Budget::none());
    for k in 0..=max_bound {
        if p.check_bound(k).verdict().is_reachable() {
            return k;
        }
    }
    panic!("token_ring(8) must be reachable within {max_bound}");
}

/// The PR 2 shape: a whole-run race per bound, fresh sessions each
/// time (no state survives between bounds).
fn deepen_whole_run(max_bound: usize) -> usize {
    let model = token_ring(8);
    for k in 0..=max_bound {
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(JSat::default()), Box::new(UnrollSat::default())];
        let entries = run_portfolio(&model, k, Semantics::Exactly, engines, Budget::none());
        if entries.iter().any(|e| e.outcome.result.is_reachable()) {
            return k;
        }
    }
    panic!("token_ring(8) must be reachable within {max_bound}");
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut samples: Vec<Sample> = Vec::new();

    println!("service scaling: 8 equal-weight jsat jobs (fifo_3, bounds 0..=10)");
    for workers in [1usize, 2, 4] {
        let s = run(&format!("service/heavy8_w{workers}"), 1, 5, || {
            drain_heavy(8, workers)
        });
        let jobs_per_sec = 8.0 * 1e9 / s.median_ns as f64;
        println!("  {workers} workers: {jobs_per_sec:.1} jobs/s (median)");
        samples.push(s);
    }

    println!("\nservice overhead: 13 trivial small-suite jsat jobs, bounds 0..=6");
    for workers in [1usize, 4] {
        let s = run(&format!("service/suite13_small_w{workers}"), 2, 12, || {
            drain_suite(workers)
        });
        let jobs_per_sec = 13.0 * 1e9 / s.median_ns as f64;
        println!("  {workers} workers: {jobs_per_sec:.0} jobs/s (median)");
        samples.push(s);
    }

    println!("\nportfolio deepening to first reachable bound, token_ring(8), jsat+unroll");
    let per_bound = run("portfolio/deepen_per_bound_ring8", 2, 12, || {
        assert_eq!(deepen_per_bound(8), 7);
    });
    let whole_run = run("portfolio/deepen_whole_run_ring8", 2, 12, || {
        assert_eq!(deepen_whole_run(8), 7);
    });
    println!(
        "  per-bound racing over live sessions is {:.2}x vs whole-run races",
        whole_run.median_ns as f64 / per_bound.median_ns as f64
    );
    samples.push(per_bound);
    samples.push(whole_run);

    if json {
        print_json(&samples);
    }
}
