//! Benches for jSAT internals (supports E4/E5): cache ablation and
//! memory-relevant workloads.

use sebmc::{BoundedChecker, Budget, JSat, JSatConfig, Semantics, UnrollSat};
use sebmc_bench::microbench::run;
use sebmc_model::builders::{counter_with_reset, shift_register};

fn main() {
    let model = counter_with_reset(3);
    run("jsat_unsat_exhaustion_k6/with_cache", 2, 10, || {
        let mut e = JSat::default();
        e.check(&model, 6, Semantics::Exactly)
    });
    run("jsat_unsat_exhaustion_k6/without_cache", 2, 10, || {
        let mut e = JSat::with_config(
            Budget::none(),
            JSatConfig {
                use_failed_cache: false,
                ..JSatConfig::default()
            },
        );
        e.check(&model, 6, Semantics::Exactly)
    });

    // E4 companion: the same instance at a deep bound, jSAT vs unroll.
    let model = shift_register(12);
    run("deep_bound_k32/jsat", 2, 10, || {
        let mut e = JSat::default();
        e.check(&model, 32, Semantics::Exactly)
    });
    run("deep_bound_k32/sat_unroll", 2, 10, || {
        let mut e = UnrollSat::default();
        e.check(&model, 32, Semantics::Exactly)
    });
}
