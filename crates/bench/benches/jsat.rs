//! Benches for jSAT internals (supports E4/E5): cache ablation and
//! memory-relevant workloads.

use sebmc::{BoundedChecker, Budget, JSat, JSatConfig, Semantics, UnrollSat};
use sebmc_bench::microbench::run;
use sebmc_model::builders::{counter_with_reset, shift_register};

fn main() {
    let model = counter_with_reset(3);
    run("jsat_unsat_exhaustion_k6/with_cache", 2, 10, || {
        let mut e = JSat::default();
        e.check(&model, 6, Semantics::Exactly)
    });
    run("jsat_unsat_exhaustion_k6/without_cache", 2, 10, || {
        let mut e = JSat::with_config(
            Budget::none(),
            JSatConfig {
                use_failed_cache: false,
                ..JSatConfig::default()
            },
        );
        e.check(&model, 6, Semantics::Exactly)
    });

    // E4 companion: the same instance at a deep bound, jSAT vs unroll.
    let model = shift_register(12);
    run("deep_bound_k32/jsat", 2, 10, || {
        let mut e = JSat::default();
        e.check(&model, 32, Semantics::Exactly)
    });
    run("deep_bound_k32/sat_unroll", 2, 10, || {
        let mut e = UnrollSat::default();
        e.check(&model, 32, Semantics::Exactly)
    });
    // The paper's memory argument, now including access structures:
    // jSAT's clause database *and* its watch storage stay small at
    // deep bounds while unrolling grows with k.
    let mut j = JSat::default();
    let jo = j.check(&model, 32, Semantics::Exactly);
    let mut u = UnrollSat::default();
    let uo = u.check(&model, 32, Semantics::Exactly);
    println!(
        "  k=32 peak bytes (clause-db + watch): jsat {} + {}, unroll {} + {}",
        jo.stats.peak_formula_bytes,
        jo.stats.peak_watch_bytes,
        uo.stats.peak_formula_bytes,
        uo.stats.peak_watch_bytes
    );
}
