//! Criterion benches for jSAT internals (supports E4/E5): cache
//! ablation and memory-relevant workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use sebmc::{BoundedChecker, EngineLimits, JSat, JSatConfig, Semantics, UnrollSat};
use sebmc_model::builders::{counter_with_reset, shift_register};
use std::hint::black_box;

fn bench_cache_ablation(c: &mut Criterion) {
    let model = counter_with_reset(3);
    let mut group = c.benchmark_group("jsat_unsat_exhaustion_k6");
    group.sample_size(10);
    group.bench_function("with_cache", |b| {
        b.iter(|| {
            let mut e = JSat::default();
            black_box(e.check(&model, 6, Semantics::Exactly))
        })
    });
    group.bench_function("without_cache", |b| {
        b.iter(|| {
            let mut e = JSat::with_config(
                EngineLimits::none(),
                JSatConfig {
                    use_failed_cache: false,
                    ..JSatConfig::default()
                },
            );
            black_box(e.check(&model, 6, Semantics::Exactly))
        })
    });
    group.finish();
}

fn bench_deep_bounds(c: &mut Criterion) {
    // E4 companion: the same instance at a deep bound, jSAT vs unroll.
    let model = shift_register(12);
    let mut group = c.benchmark_group("deep_bound_k32");
    group.sample_size(10);
    group.bench_function("jsat", |b| {
        b.iter(|| {
            let mut e = JSat::default();
            black_box(e.check(&model, 32, Semantics::Exactly))
        })
    });
    group.bench_function("sat_unroll", |b| {
        b.iter(|| {
            let mut e = UnrollSat::default();
            black_box(e.check(&model, 32, Semantics::Exactly))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache_ablation, bench_deep_bounds);
criterion_main!(benches);
