//! `sebmc_bench` — the CI perf-regression gate.
//!
//! Re-runs the propagation and watch-layout microbenches (the exact
//! workloads of `cargo bench --bench propagation`, built from
//! [`sebmc_bench::workloads`]) and compares the fresh medians against
//! the checked-in baselines (`BENCH_pr1.json`, `BENCH_pr3.json`,
//! `BENCH_pr5.json`, `BENCH_pr10.json`). Absolute nanoseconds drift
//! between machines, so
//! the tolerance is deliberately generous: the gate fails only on a
//! **> 1.5×** slowdown against the *slowest* checked-in baseline for
//! each bench.
//!
//! The proof-logging workloads (`proof/*`, PR 5) and the telemetry
//! workloads (`telemetry/*`, PR 10) are **record-only**: they predate
//! no baseline — their job is to document the cost of the feature on
//! vs. off, not to gate. They are measured, printed and written to
//! `--out`, but never fail the run and never exit 2 when a baseline
//! is missing. The **off** configurations are gated indirectly: the
//! propagation/watch workloads above run with no proof sink and no
//! progress sink installed, so a regression in either disabled hot
//! path trips the ordinary gate.
//!
//! ```text
//! sebmc_bench [--samples N] [--tolerance-pct P] [--out FILE]
//! ```
//!
//! * `--samples N` — timed iterations per bench (default 20).
//! * `--tolerance-pct P` — allowed slowdown in percent (default 150,
//!   i.e. fail above 1.5× the baseline median).
//! * `--out FILE` — also write the fresh samples as a JSON array
//!   (uploaded as a CI artifact so regressions can be bisected against
//!   real numbers, and new baselines can be minted from a green run).
//!
//! Exit code: 0 when every bench is within tolerance, 1 otherwise,
//! 2 when no baseline file provides a median for a bench (a rename
//! must update the baselines, not silently skip the gate).

use std::process::ExitCode;

use sebmc_bench::baseline::baseline_median;
use sebmc_bench::microbench::{run, Sample};
use sebmc_bench::workloads::{chain_instance, churn_instance, pigeonhole_instance};
use sebmc_bench::{flag, flag_u64};
use sebmc_proof::StreamingChecker;
use sebmc_sat::{Limits, SolveResult};
use sebmc_telemetry::Telemetry;

/// The checked-in baseline files, in the order they were minted.
const BASELINE_FILES: [&str; 4] = [
    "BENCH_pr1.json",
    "BENCH_pr3.json",
    "BENCH_pr5.json",
    "BENCH_pr10.json",
];

/// Benches that are measured and recorded but never gate: the PR 5
/// proof-logging and PR 10 telemetry workloads have no pre-feature
/// baseline to regress against (the feature did not exist), so their
/// medians inform only.
const RECORD_ONLY: [&str; 4] = [
    "proof/php76_log_off",
    "proof/php76_log_checked",
    "telemetry/chain30k_progress_off",
    "telemetry/chain30k_progress_on",
];

/// The slowest median any checked-in baseline records for `name`
/// (machines differ; the gate must not fail because the CI runner is
/// slower than the box that minted the tightest baseline).
fn slowest_baseline(docs: &[(String, String)], name: &str) -> Option<u128> {
    docs.iter()
        .filter_map(|(_, json)| baseline_median(json, name))
        .max()
}

fn main() -> ExitCode {
    let samples = flag_u64("samples", 20) as usize;
    let tolerance_pct = flag_u64("tolerance-pct", 150);
    let out_path = flag("out");

    // Locate the baselines from the workspace root or the crate dir.
    let docs: Vec<(String, String)> = BASELINE_FILES
        .iter()
        .filter_map(|f| {
            let candidates = [f.to_string(), format!("../../{f}")];
            candidates
                .iter()
                .find_map(|p| std::fs::read_to_string(p).ok())
                .map(|json| (f.to_string(), json))
        })
        .collect();
    if docs.is_empty() {
        eprintln!("sebmc_bench: no baseline file found (looked for {BASELINE_FILES:?})");
        return ExitCode::from(2);
    }
    eprintln!(
        "sebmc_bench: {} baseline file(s), {} samples/bench, tolerance {}%",
        docs.len(),
        samples,
        tolerance_pct
    );

    // The same three workloads the propagation bench measures.
    let (mut chain, chain_heads) = chain_instance(300, 100);
    assert_eq!(chain.solve_with(&chain_heads), SolveResult::Sat);
    let (mut dense, dense_heads) = chain_instance(1000, 20);
    assert_eq!(dense.solve_with(&dense_heads), SolveResult::Sat);
    let (mut churn, churn_heads) = churn_instance(4000, 8);
    assert_eq!(churn.solve_with(&churn_heads), SolveResult::Sat);
    // Record-only (PR 10): the chain workload again, once with the
    // default uninstalled progress handle and once with a live sink.
    let (mut tel_off, tel_off_heads) = chain_instance(300, 100);
    assert_eq!(tel_off.solve_with(&tel_off_heads), SolveResult::Sat);
    let (mut tel_on, tel_on_heads) = chain_instance(300, 100);
    let telemetry = std::sync::Arc::new(Telemetry::new());
    tel_on.set_limits(Limits {
        progress: telemetry.progress_handle(),
        ..Limits::none()
    });
    assert_eq!(tel_on.solve_with(&tel_on_heads), SolveResult::Sat);

    let fresh: Vec<Sample> = vec![
        run("propagation/binary_chain_30k", 3, samples, || {
            chain.solve_with(&chain_heads)
        }),
        run("propagation/binary_chain_dense_20k", 3, samples, || {
            dense.solve_with(&dense_heads)
        }),
        run("propagation/watch_churn_4k_w8", 3, samples, || {
            churn.solve_with(&churn_heads)
        }),
        // Record-only (PR 5): proof logging off vs. full streaming
        // checking on a conflict-heavy UNSAT instance.
        run("proof/php76_log_off", 3, samples, || {
            let mut s = pigeonhole_instance(7, 6, None);
            assert_eq!(s.solve(), SolveResult::Unsat);
        }),
        run("proof/php76_log_checked", 3, samples, || {
            let mut s = pigeonhole_instance(7, 6, Some(Box::new(StreamingChecker::new())));
            assert_eq!(s.solve(), SolveResult::Unsat);
            assert!(s.proof_certifies(&[]));
        }),
        // Record-only (PR 10): solver progress sampling off vs. on.
        run("telemetry/chain30k_progress_off", 3, samples, || {
            tel_off.solve_with(&tel_off_heads)
        }),
        run("telemetry/chain30k_progress_on", 3, samples, || {
            tel_on.solve_with(&tel_on_heads)
        }),
    ];

    if let Some(path) = &out_path {
        let body = format!(
            "[\n{}\n]\n",
            fresh
                .iter()
                .map(|s| format!("  {}", s.to_json()))
                .collect::<Vec<_>>()
                .join(",\n")
        );
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("sebmc_bench: cannot write '{path}': {e}");
            return ExitCode::from(2);
        }
        eprintln!("sebmc_bench: fresh samples written to {path}");
    }

    let mut failed = false;
    for s in &fresh {
        let record_only = RECORD_ONLY.contains(&s.name.as_str());
        let Some(base) = slowest_baseline(&docs, &s.name) else {
            if record_only {
                eprintln!(
                    "sebmc_bench:  rec {:<40} fresh {:>10} ns (record-only, no baseline)",
                    s.name, s.median_ns
                );
                continue;
            }
            eprintln!(
                "sebmc_bench: FAIL {} — no baseline median in {:?} \
                 (renamed bench? update the baselines)",
                s.name,
                docs.iter().map(|(f, _)| f.as_str()).collect::<Vec<_>>()
            );
            return ExitCode::from(2);
        };
        let limit = base.saturating_mul(tolerance_pct as u128) / 100;
        let ratio = s.median_ns as f64 / base as f64;
        let verdict = if record_only {
            "rec" // measured against its recorded median, never gates
        } else if s.median_ns > limit {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        eprintln!(
            "sebmc_bench: {verdict:>4} {:<40} fresh {:>10} ns vs baseline {:>10} ns ({ratio:.2}x, limit {:.2}x)",
            s.name,
            s.median_ns,
            base,
            tolerance_pct as f64 / 100.0
        );
    }
    if failed {
        eprintln!(
            "sebmc_bench: performance regression gate FAILED \
             (>{:.2}x slowdown vs checked-in baselines)",
            tolerance_pct as f64 / 100.0
        );
        ExitCode::from(1)
    } else {
        eprintln!("sebmc_bench: gate passed");
        ExitCode::SUCCESS
    }
}
