//! E3 — iterative-squaring prefix statistics (paper §2).
//!
//! For bounds k = 2, 4, …, the squaring encoding needs only log₂ k
//! levels (so a complete check over N bounds needs log₂ N iterations
//! instead of N), but each level adds 2n universal variables and one
//! ∀/∃ alternation pair.
//!
//! ```text
//! cargo run -p sebmc-bench --release --bin table_squaring -- [--max-pow 8]
//! ```

use sebmc::{encode_qbf_linear, encode_qbf_squaring};
use sebmc_bench::{flag_u64, Table};
use sebmc_model::builders::johnson_counter;

fn main() {
    let max_pow = flag_u64("max-pow", 8) as u32;
    let model = johnson_counter(8);
    let n = model.num_state_vars();
    println!(
        "# E3: iterative squaring on '{}' (n = {})\n",
        model.name(),
        n
    );
    let mut table = Table::new([
        "k",
        "levels (iterations)",
        "#∀ vars",
        "alternations",
        "matrix lits",
        "linear-(2) iterations",
        "linear-(2) lits at k",
    ]);
    for p in 1..=max_pow {
        let k = 1usize << p;
        let sq = encode_qbf_squaring(&model, k);
        let lin = encode_qbf_linear(&model, k);
        table.row([
            k.to_string(),
            p.to_string(),
            sq.formula.num_universals().to_string(),
            sq.formula.num_alternations().to_string(),
            sq.formula.matrix().num_literals().to_string(),
            k.to_string(),
            lin.formula.matrix().num_literals().to_string(),
        ]);
        assert_eq!(sq.formula.num_universals(), 2 * n * p as usize);
    }
    table.print();
    println!(
        "\npaper claims verified: #∀ = 2·n·log₂k grows per iteration (unlike (2)),\n\
         alternation depth grows with the level count, and covering bound k takes\n\
         log₂ k iterations instead of k."
    );
}
