//! E4 — peak solver memory vs bound: unrolled SAT vs jSAT.
//!
//! The title claim. Both engines decide the same exactly-k instances;
//! we record the peak *live* clause-database size each solver held —
//! since the arena refactor this is an exact byte figure (clause
//! headers included), not a literal-count approximation. Resident
//! memory additionally carries up to 20% not-yet-compacted garbage
//! between GC points (`Solver::clause_db_resident_bytes`). The
//! unrolled formula grows linearly in k; jSAT holds formula (4) plus
//! retired blocking clauses that `simplify()` physically reclaims via
//! the compacting collector.
//!
//! ```text
//! cargo run -p sebmc-bench --release --bin fig_memory -- \
//!     [--max-bound 64] [--step 8] [--timeout-ms 20000]
//! ```

use sebmc::{BoundedChecker, JSat, Semantics, UnrollSat};
use sebmc_bench::{budget, flag_u64, Table};
use sebmc_model::builders::{counter_with_reset, gray_counter};

fn main() {
    let max_bound = flag_u64("max-bound", 64) as usize;
    let step = flag_u64("step", 8) as usize;
    let timeout_ms = flag_u64("timeout-ms", 20_000);
    let limits = budget(timeout_ms, 4096);

    for model in [counter_with_reset(4), gray_counter(5)] {
        println!(
            "\n# E4: peak live clause-database bytes on '{}' (exactly-k)\n",
            model.name()
        );
        let mut table = Table::new([
            "k",
            "verdict",
            "unroll peak live B",
            "jsat peak live B",
            "ratio",
            "unroll ms",
            "jsat ms",
        ]);
        let mut k = step;
        while k <= max_bound {
            let mut unroll = UnrollSat::with_budget(limits.clone());
            let mut jsat = JSat::with_budget(limits.clone());
            let uo = unroll.check(&model, k, Semantics::Exactly);
            let jo = jsat.check(&model, k, Semantics::Exactly);
            assert!(
                uo.result.agrees_with(&jo.result),
                "engines disagree on {} at {k}",
                model.name()
            );
            let verdict = if uo.result.is_unknown() {
                jo.result.to_string()
            } else {
                uo.result.to_string()
            };
            let ratio = if jo.stats.peak_formula_bytes > 0 {
                format!(
                    "{:.1}x",
                    uo.stats.peak_formula_bytes as f64 / jo.stats.peak_formula_bytes as f64
                )
            } else {
                "-".into()
            };
            table.row([
                k.to_string(),
                verdict,
                uo.stats.peak_formula_bytes.to_string(),
                jo.stats.peak_formula_bytes.to_string(),
                ratio,
                uo.stats.duration.as_millis().to_string(),
                jo.stats.duration.as_millis().to_string(),
            ]);
            k += step;
        }
        table.print();
    }
    println!(
        "\npaper claim (title): the unrolled formula's memory grows with k while\n\
         jSAT's stays near the size of one TR copy — the ratio column should rise\n\
         with k."
    );
}
