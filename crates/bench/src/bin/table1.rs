//! E1 — the paper's §3 solved-instance comparison.
//!
//! 13 models × 18 bounds = 234 instances, each attempted by four
//! engines under a per-instance time/memory budget. The paper reports
//! (300 s / 1 GB on 2005 hardware): SAT on (1) solved 184, jSAT solved
//! 143, general-purpose QBF solvers solved 3.
//!
//! ```text
//! cargo run -p sebmc-bench --release --bin table1 -- \
//!     [--timeout-ms 500] [--mem-mb 256] [--max-bound 18]
//! ```
//!
//! Use `--timeout-ms 300000 --mem-mb 1024` for the paper's full
//! protocol (slow).

use std::time::Instant;

use sebmc::Semantics;
use sebmc_bench::{budget, e1_engines, flag_u64, Table};
use sebmc_model::suite13;

fn main() {
    let timeout_ms = flag_u64("timeout-ms", 500);
    let mem_mib = flag_u64("mem-mb", 256);
    let max_bound = flag_u64("max-bound", 18) as usize;
    let limits = budget(timeout_ms, mem_mib);

    println!("# E1: solved instances (paper §3)\n");
    println!(
        "per-instance budget: {timeout_ms} ms / {mem_mib} MiB; bounds 1..={max_bound}; \
         semantics: exactly-k\n"
    );

    let suite = suite13();
    let engine_names: Vec<&'static str> = e1_engines(&limits).iter().map(|e| e.name()).collect();
    let mut per_model: Vec<Vec<usize>> = vec![vec![0; engine_names.len()]; suite.len()];
    let mut totals = vec![0usize; engine_names.len()];
    let mut peak_bytes = vec![0usize; engine_names.len()];
    let mut conflicts_detected = 0usize;
    let start = Instant::now();

    for (mi, model) in suite.iter().enumerate() {
        // Fresh engines per model keeps the runs independent.
        let mut engines = e1_engines(&limits);
        let mut verdicts: Vec<Vec<Option<bool>>> = vec![Vec::new(); max_bound];
        for k in 1..=max_bound {
            for (ei, engine) in engines.iter_mut().enumerate() {
                let out = engine.check(model, k, Semantics::Exactly);
                peak_bytes[ei] = peak_bytes[ei].max(out.stats.peak_formula_bytes);
                if !out.result.is_unknown() {
                    per_model[mi][ei] += 1;
                    totals[ei] += 1;
                    verdicts[k - 1].push(Some(out.result.is_reachable()));
                } else {
                    verdicts[k - 1].push(None);
                }
            }
        }
        // Soundness audit: all decided verdicts at a bound must agree.
        for v in &verdicts {
            let decided: Vec<bool> = v.iter().flatten().copied().collect();
            if decided.windows(2).any(|w| w[0] != w[1]) {
                conflicts_detected += 1;
            }
        }
        eprintln!(
            "[{:>5.1?}] {:<22} solved: {:?}",
            start.elapsed(),
            model.name(),
            per_model[mi]
        );
    }

    let mut table = Table::new(
        ["model"]
            .into_iter()
            .map(String::from)
            .chain(engine_names.iter().map(std::string::ToString::to_string)),
    );
    for (mi, model) in suite.iter().enumerate() {
        table.row(
            [model.name().to_string()]
                .into_iter()
                .chain(per_model[mi].iter().map(|c| format!("{c}/{max_bound}"))),
        );
    }
    let total_instances = suite.len() * max_bound;
    table.row(
        [format!("TOTAL (of {total_instances})")]
            .into_iter()
            .chain(totals.iter().map(std::string::ToString::to_string)),
    );
    // Exact peak clause-database bytes (arena-reported, headers
    // included, for the SAT-backed engines) — the paper's 1 GB axis.
    table.row(
        ["peak DB bytes".to_string()]
            .into_iter()
            .chain(peak_bytes.iter().map(std::string::ToString::to_string)),
    );
    println!();
    table.print();

    println!(
        "\npaper (234 instances, 300 s / 1 GB): sat-unroll 184, jsat 143, \
         general-purpose QBF 3"
    );
    println!(
        "shape check: solved(sat-unroll) ≥ solved(jsat) ≫ solved(qbf): {}",
        if totals[0] >= totals[1] && totals[1] > 4 * totals[2].max(totals[3]) {
            "HOLDS"
        } else {
            "REVIEW"
        }
    );
    assert_eq!(conflicts_detected, 0, "engines must never contradict");
    println!("cross-engine verdict conflicts: {conflicts_detected}");
    println!("total wall time: {:?}", start.elapsed());
}
