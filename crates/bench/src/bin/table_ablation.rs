//! E5 — jSAT design-choice ablation.
//!
//! Measures the two refinements DESIGN.md calls out on top of the
//! paper's sketch: the failed-state cache and the periodic
//! `simplify()` garbage collection of retired blocking clauses.
//! UNSAT instances are where both matter (full exhaustion).
//!
//! ```text
//! cargo run -p sebmc-bench --release --bin table_ablation -- \
//!     [--timeout-ms 10000] [--bound 10]
//! ```

use sebmc::{BoundedChecker, Budget, JSat, JSatConfig, Semantics};
use sebmc_bench::{budget, flag_u64, Table};
use sebmc_model::builders::{counter_with_enable, peterson, traffic_light};

fn run(
    limits: &Budget,
    config: JSatConfig,
    model: &sebmc_model::Model,
    k: usize,
) -> (String, u64, u64, usize, u128) {
    let mut engine = JSat::with_config(limits.clone(), config);
    let out = engine.check(model, k, Semantics::Exactly);
    (
        out.result.to_string(),
        engine.jsat_stats().sat_calls,
        engine.jsat_stats().cache_hits,
        out.stats.peak_formula_lits,
        out.stats.duration.as_millis(),
    )
}

fn main() {
    let timeout_ms = flag_u64("timeout-ms", 10_000);
    let bound = flag_u64("bound", 10) as usize;
    let limits = budget(timeout_ms, 4096);

    let variants: Vec<(&str, JSatConfig)> = vec![
        ("default (cache + gc)", JSatConfig::default()),
        (
            "no failed-state cache",
            JSatConfig {
                use_failed_cache: false,
                ..JSatConfig::default()
            },
        ),
        (
            "no simplify gc",
            JSatConfig {
                simplify_interval: u64::MAX,
                ..JSatConfig::default()
            },
        ),
        (
            "eager simplify (every pop)",
            JSatConfig {
                simplify_interval: 1,
                ..JSatConfig::default()
            },
        ),
    ];

    for model in [traffic_light(), peterson(), counter_with_enable(6)] {
        println!(
            "\n# E5: jSAT ablation on '{}' at bound {bound} (UNSAT exhaustion)\n",
            model.name()
        );
        let mut table = Table::new([
            "variant",
            "verdict",
            "sat calls",
            "cache hits",
            "peak lits",
            "ms",
        ]);
        for (name, config) in &variants {
            let (verdict, calls, hits, peak, ms) = run(&limits, config.clone(), &model, bound);
            table.row([
                name.to_string(),
                verdict,
                calls.to_string(),
                hits.to_string(),
                peak.to_string(),
                ms.to_string(),
            ]);
        }
        table.print();
    }
    println!(
        "\nreading: without the cache, SAT calls explode combinatorially on UNSAT\n\
         instances; without gc, retired blocking clauses accumulate in peak lits."
    );
}
