//! E2 — formula size vs bound per formulation (paper §2 "figure").
//!
//! Reproduces the paper's space analysis on a model in its stated
//! regime (`|TR|` much larger than the state width): formulation (1)
//! grows by one `TR` copy per bound, formulation (2) by `O(n)` with a
//! constant number of universal variables, and jSAT's formula (4) does
//! not grow at all.
//!
//! ```text
//! cargo run -p sebmc-bench --release --bin fig_growth -- [--max-bound 32]
//! ```

use sebmc::{encode_qbf_linear, encode_unrolled, BoundedChecker, JSat, Semantics};
use sebmc_bench::{flag_u64, Table};
use sebmc_model::builders::{dense_fsm, round_robin_arbiter};

fn main() {
    let max_bound = flag_u64("max-bound", 32) as usize;
    for model in [dense_fsm(10, 3, 600, 2005), round_robin_arbiter(8)] {
        println!(
            "\n# E2: formula growth on '{}' (n = {}, |TR| cone = {} ANDs)\n",
            model.name(),
            model.num_state_vars(),
            model.tr_cone_size()
        );
        let mut table = Table::new([
            "k",
            "unroll lits",
            "Δ unroll",
            "qbf(2) lits",
            "Δ qbf(2)",
            "#∀ qbf(2)",
            "jsat lits",
        ]);
        let mut prev_u = 0usize;
        let mut prev_q = 0usize;
        let mut jsat = JSat::default();
        let jsat_lits = jsat.check(&model, 1, Semantics::Exactly).stats.encode_lits;
        let mut deltas_u = Vec::new();
        let mut deltas_q = Vec::new();
        for k in 1..=max_bound {
            let u = encode_unrolled(&model, k, Semantics::Exactly)
                .cnf
                .num_literals();
            let q = encode_qbf_linear(&model, k);
            let ql = q.formula.matrix().num_literals();
            let du = if k > 1 { u - prev_u } else { 0 };
            let dq = if k > 1 { ql - prev_q } else { 0 };
            if k > 1 {
                deltas_u.push(du);
                deltas_q.push(dq);
            }
            table.row([
                k.to_string(),
                u.to_string(),
                if k > 1 { du.to_string() } else { "-".into() },
                ql.to_string(),
                if k > 1 { dq.to_string() } else { "-".into() },
                q.formula.num_universals().to_string(),
                jsat_lits.to_string(),
            ]);
            prev_u = u;
            prev_q = ql;
        }
        table.print();
        let avg = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
        println!(
            "\nmean per-iteration growth: unroll {:.0} lits (≈ one TR copy), \
             qbf(2) {:.0} lits (O(n)), ratio {:.1}×; jSAT flat at {} lits",
            avg(&deltas_u),
            avg(&deltas_q),
            avg(&deltas_u) / avg(&deltas_q).max(1.0),
            jsat_lits
        );
    }
    println!(
        "\npaper claim: \"the formula increase from iteration to iteration does not\n\
         depend on the size of the transition relation\" — the Δ qbf(2) column is\n\
         constant and TR-independent, while Δ unroll tracks |TR|."
    );
}
