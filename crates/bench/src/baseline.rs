//! Reading checked-in benchmark baselines (`BENCH_pr*.json`).
//!
//! The workspace is dependency-free, so instead of a JSON parser this
//! extracts exactly what the perf gate needs: every object carrying
//! both a `"name"` and a `"median_ns"` field (the shape
//! [`crate::microbench::Sample::to_json`] writes into the
//! `engine_benches` arrays of the baseline files). Nested summary
//! objects without a `"name"` are skipped.

/// Extracts `(name, median_ns)` pairs from a baseline JSON document.
pub fn extract_medians(json: &str) -> Vec<(String, u128)> {
    let mut out = Vec::new();
    // Each candidate object lies between a '{' and the next '}'.
    for fragment in json.split('{') {
        let object = fragment.split('}').next().unwrap_or("");
        if let (Some(name), Some(median)) =
            (field_str(object, "name"), field_u128(object, "median_ns"))
        {
            out.push((name, median));
        }
    }
    out
}

/// The median recorded for `name`, if the document has one.
pub fn baseline_median(json: &str, name: &str) -> Option<u128> {
    extract_medians(json)
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, m)| m)
}

/// The text following `"key":` (any whitespace around the colon).
fn field_value<'a>(object: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let after_key = &object[object.find(&pat)? + pat.len()..];
    let after_colon = after_key.trim_start().strip_prefix(':')?;
    Some(after_colon.trim_start())
}

fn field_str(object: &str, key: &str) -> Option<String> {
    let rest = field_value(object, key)?.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn field_u128(object: &str, key: &str) -> Option<u128> {
    let digits: String = field_value(object, key)?
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
      "note": "summary objects without a name are skipped",
      "summary": { "binary_chain_30k_median_ns": 1007000 },
      "engine_benches": [
        { "name": "propagation/binary_chain_30k", "median_ns": 881364, "samples": 30 },
        {
          "name": "propagation/watch_churn_4k_w8",
          "median_ns": 75842,
          "samples": 30
        }
      ]
    }"#;

    #[test]
    fn extracts_named_medians_only() {
        let got = extract_medians(DOC);
        assert_eq!(
            got,
            vec![
                ("propagation/binary_chain_30k".to_string(), 881364),
                ("propagation/watch_churn_4k_w8".to_string(), 75842),
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            baseline_median(DOC, "propagation/watch_churn_4k_w8"),
            Some(75842)
        );
        assert_eq!(baseline_median(DOC, "missing"), None);
    }

    #[test]
    fn round_trips_a_sample() {
        let s = crate::microbench::run("gate/selftest", 0, 3, || 1 + 1);
        let json = format!("[{}]", s.to_json());
        assert_eq!(baseline_median(&json, "gate/selftest"), Some(s.median_ns));
    }
}
