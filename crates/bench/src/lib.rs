//! Shared infrastructure for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see `EXPERIMENTS.md` at the repository root for the index):
//!
//! * `table1` — the §3 solved-instance comparison (E1),
//! * `fig_growth` — formula size vs bound per formulation (E2),
//! * `table_squaring` — iterative-squaring prefix statistics (E3),
//! * `fig_memory` — peak solver memory vs bound, unroll vs jSAT (E4),
//! * `table_ablation` — jSAT design-choice ablation (E5).

#![forbid(unsafe_code)]

pub mod baseline;
pub mod microbench;
pub mod workloads;

use std::time::Duration;

use sebmc::{BoundedChecker, Budget, JSat, QbfBackend, QbfLinear, QbfSquaring, UnrollSat};

/// A minimal command-line flag reader: `--name value`.
pub fn flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        }
    }
    None
}

/// Parses `--name value` as an integer, with a default.
pub fn flag_u64(name: &str, default: u64) -> u64 {
    flag(name).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{name} expects an integer, got '{v}'"))
    })
}

/// The paper's per-instance protocol, scaled: timeout in milliseconds
/// and a **byte-based** memory cap in MiB (compared against the SAT
/// solver's exact clause-arena accounting, headers included).
pub fn budget(timeout_ms: u64, mem_mib: u64) -> Budget {
    Budget {
        timeout: Some(Duration::from_millis(timeout_ms)),
        max_formula_bytes: Some((mem_mib as usize) * 1024 * 1024),
        // The experiment tables measure the paper's *raw* encodings;
        // static model reduction would shrink several suite models and
        // silently shift every baseline (including the CI perf gate's),
        // so the harness pins it off. The reduction itself is compared
        // against the unreduced oracle by `sebmc --no-reduce` and the
        // reduction_oracle test suite instead.
        reduce: false,
        ..Budget::default()
    }
}

/// The four engines of experiment E1, each with the given budget.
pub fn e1_engines(budget: &Budget) -> Vec<Box<dyn BoundedChecker + Send>> {
    vec![
        Box::new(UnrollSat::with_budget(budget.clone())),
        Box::new(JSat::with_budget(budget.clone())),
        Box::new(QbfLinear::with_budget(QbfBackend::Qdpll, budget.clone())),
        Box::new(QbfSquaring::with_budget(
            QbfBackend::Expansion,
            budget.clone(),
        )),
    ]
}

/// A plain Markdown table writer for the harness output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:>w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(["model", "solved"]);
        t.row(["counter", "18"]);
        t.row(["fifo_8", "9"]);
        let md = t.to_markdown();
        assert!(md.contains("| counter |"));
        assert!(md.lines().count() == 4);
        assert!(md.lines().nth(1).unwrap().starts_with("|-"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn budget_converts_units() {
        let b = budget(500, 100);
        assert_eq!(b.timeout, Some(Duration::from_millis(500)));
        assert_eq!(b.max_formula_bytes, Some(100 * 1024 * 1024));
    }

    #[test]
    fn e1_engine_lineup() {
        let engines = e1_engines(&Budget::none());
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "sat-unroll",
                "jsat",
                "qbf-linear-qdpll",
                "qbf-squaring-expansion"
            ]
        );
    }
}
