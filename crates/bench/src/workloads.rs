//! Solver workload builders shared by the microbenches and the CI
//! perf-regression gate (`sebmc_bench`).
//!
//! Both must measure the *same* instances: the gate compares fresh
//! medians against checked-in baselines produced by the benches, so a
//! drifting workload would fail (or pass) for the wrong reason.

use sebmc_logic::rng::SplitMix64;
use sebmc_logic::Lit;
use sebmc_sat::Solver;

/// Builds the chain instance: `chains` disjoint implication chains of
/// `len` variables each, plus satisfied-by-the-cascade side clauses
/// whose watchers must be visited (and moved) as the chains fire — two
/// ternaries and one 5-ary per link, i.e. ~40% binary clauses overall.
/// Returns the solver and the chain-head assumptions that force the
/// full assignment by BCP alone.
pub fn chain_instance(chains: usize, len: usize) -> (Solver, Vec<Lit>) {
    assert!(len >= 6);
    let mut s = Solver::new();
    let mut heads = Vec::with_capacity(chains);
    for _ in 0..chains {
        let vars: Vec<Lit> = (0..len).map(|_| s.new_var().positive()).collect();
        heads.push(vars[0]);
        for w in vars.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        for i in 0..len - 5 {
            s.add_clause([!vars[i], !vars[i + 1], vars[i + 3]]);
            s.add_clause([!vars[i + 1], !vars[i], vars[i + 4]]);
            s.add_clause([
                !vars[i],
                !vars[i + 2],
                !vars[i + 3],
                !vars[i + 1],
                vars[i + 5],
            ]);
        }
    }
    (s, heads)
}

/// A watch-churn instance: wide clauses over shuffled variables whose
/// watchers must migrate between lists throughout every cascade — the
/// worst case for the watch layout's push/relocate path, as opposed to
/// the chain instances' scan-dominated walks.
pub fn churn_instance(vars: usize, width: usize) -> (Solver, Vec<Lit>) {
    let mut rng = SplitMix64::new(0xc4a2_a11e);
    let mut s = Solver::new();
    let v: Vec<Lit> = (0..vars).map(|_| s.new_var().positive()).collect();
    // An implication spine forces the full assignment…
    for w in v.windows(2) {
        s.add_clause([!w[0], w[1]]);
    }
    // …and wide satisfied-late clauses keep watchers migrating: every
    // literal is the negation of a spine variable except one far-ahead
    // positive, so each cascade falsifies watch after watch.
    for _ in 0..vars * 2 {
        let mut c: Vec<Lit> = (0..width - 1)
            .map(|_| !v[rng.below(vars * 3 / 4)])
            .collect();
        c.push(v[vars - 1 - rng.below(vars / 8)]);
        s.add_clause(c);
    }
    (s, vec![v[0]])
}

/// The proof-logging workload: a pigeonhole instance (`pigeons` into
/// `holes`), conflict-heavy so the learnt-clause hooks dominate —
/// exactly what proof logging instruments. The builder takes an
/// optional proof sink installed *before* the first clause; solving
/// the returned instance (UNSAT for `pigeons > holes`) exercises
/// originals, learnt adds, reductions and the finalization lemma.
pub fn pigeonhole_instance(
    pigeons: usize,
    holes: usize,
    sink: Option<Box<dyn sebmc_proof::ProofSink>>,
) -> Solver {
    let mut s = Solver::new();
    if let Some(sink) = sink {
        s.set_proof_sink(sink);
    }
    let p: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &p {
        s.add_clause(row.iter().copied());
    }
    #[allow(clippy::needless_range_loop)]
    for h in 0..holes {
        for i in 0..pigeons {
            for j in i + 1..pigeons {
                s.add_clause([!p[i][h], !p[j][h]]);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_sat::SolveResult;

    #[test]
    fn chain_instance_is_forced_sat() {
        let (mut s, heads) = chain_instance(5, 10);
        assert_eq!(s.solve_with(&heads), SolveResult::Sat);
        assert_eq!(s.stats().conflicts, 0, "pure BCP, no search");
    }

    #[test]
    fn churn_instance_is_forced_sat() {
        let (mut s, heads) = churn_instance(200, 8);
        assert_eq!(s.solve_with(&heads), SolveResult::Sat);
    }

    #[test]
    fn pigeonhole_instance_is_unsat_and_certifiable() {
        let mut s = pigeonhole_instance(5, 4, Some(Box::new(sebmc_proof::StreamingChecker::new())));
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.proof_certifies(&[]));
        assert_eq!(s.proof_summary().unwrap().failed_checks, 0);
    }
}
