//! A minimal criterion-style micro-benchmark harness.
//!
//! The workspace is dependency-free, so `cargo bench` runs these
//! `harness = false` binaries instead of criterion. The protocol is
//! deliberately simple and robust: a warm-up, then `samples` timed
//! iterations, reported by **median** (criterion's headline statistic,
//! robust to scheduler noise) together with min/mean/max.
//!
//! Results can be serialised to a JSON fragment so benchmark baselines
//! can be checked in (see `BENCH_pr1.json` at the repository root).

use std::hint::black_box;
use std::time::Instant;

/// Timing summary of one benchmark, all values in nanoseconds.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark name (`group/function` by convention).
    pub name: String,
    /// Median of the timed iterations.
    pub median_ns: u128,
    /// Arithmetic mean.
    pub mean_ns: u128,
    /// Fastest iteration.
    pub min_ns: u128,
    /// Slowest iteration.
    pub max_ns: u128,
    /// Number of timed iterations.
    pub samples: usize,
}

impl Sample {
    /// Renders the sample as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
            self.name, self.median_ns, self.mean_ns, self.min_ns, self.max_ns, self.samples
        )
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Times `f` for `samples` iterations after `warmup` untimed ones and
/// prints a criterion-style summary line.
///
/// The closure's return value is passed through [`black_box`] so the
/// optimiser cannot delete the measured work.
pub fn run<R>(name: &str, warmup: usize, samples: usize, mut f: impl FnMut() -> R) -> Sample {
    assert!(samples > 0, "need at least one sample");
    for _ in 0..warmup {
        black_box(f());
    }
    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    let median_ns = times[times.len() / 2];
    let mean_ns = times.iter().sum::<u128>() / times.len() as u128;
    let sample = Sample {
        name: name.to_string(),
        median_ns,
        mean_ns,
        min_ns: times[0],
        max_ns: times[times.len() - 1],
        samples,
    };
    println!(
        "{:<44} median {:>12}   (min {}, mean {}, max {}, n={})",
        sample.name,
        format_ns(sample.median_ns),
        format_ns(sample.min_ns),
        format_ns(sample.mean_ns),
        format_ns(sample.max_ns),
        samples
    );
    sample
}

/// Prints a JSON array of samples — paste-able into a baseline file.
pub fn print_json(samples: &[Sample]) {
    println!("[");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        println!("  {}{}", s.to_json(), comma);
    }
    println!("]");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_produces_ordered_statistics() {
        let s = run("test/noop", 1, 9, || 1 + 1);
        assert_eq!(s.samples, 9);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.max_ns);
    }

    #[test]
    fn json_fragment_is_well_formed() {
        let s = run("test/json", 0, 3, || ());
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"name\":\"test/json\""));
        assert!(j.contains("median_ns"));
    }

    #[test]
    fn formatting_scales_units() {
        assert_eq!(format_ns(12), "12 ns");
        assert_eq!(format_ns(1_500), "1.500 µs");
        assert_eq!(format_ns(2_000_000), "2.000 ms");
        assert_eq!(format_ns(3_500_000_000), "3.500 s");
    }
}
