//! The common interface of all bounded-reachability engines.

use std::fmt;
use std::time::{Duration, Instant};

use sebmc_model::{Model, Trace};

/// Which bounded-reachability question to decide.
///
/// The paper's formulations check reachability in *exactly* `k` steps;
/// the self-loop transformation (end of §2) turns this into *within*
/// `k` steps. Both are first-class here.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// Is a target state reachable in exactly `k` steps?
    Exactly,
    /// Is a target state reachable in at most `k` steps?
    Within,
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Semantics::Exactly => write!(f, "exactly"),
            Semantics::Within => write!(f, "within"),
        }
    }
}

/// Verdict of a bounded check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BmcResult {
    /// A target state is reachable; engines that construct concrete
    /// paths attach a witness (QBF back-ends cannot).
    Reachable(Option<Trace>),
    /// No target state is reachable under the given bound/semantics.
    Unreachable,
    /// The engine gave up (budget exhausted or unsupported bound); the
    /// string says why.
    Unknown(String),
}

impl BmcResult {
    /// `true` for [`BmcResult::Reachable`].
    pub fn is_reachable(&self) -> bool {
        matches!(self, BmcResult::Reachable(_))
    }

    /// `true` for [`BmcResult::Unreachable`].
    pub fn is_unreachable(&self) -> bool {
        matches!(self, BmcResult::Unreachable)
    }

    /// `true` for [`BmcResult::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, BmcResult::Unknown(_))
    }

    /// The witness trace, if one was produced.
    pub fn witness(&self) -> Option<&Trace> {
        match self {
            BmcResult::Reachable(t) => t.as_ref(),
            _ => None,
        }
    }

    /// Whether two verdicts agree (Unknown is compatible with anything).
    pub fn agrees_with(&self, other: &BmcResult) -> bool {
        !matches!(
            (self, other),
            (BmcResult::Reachable(_), BmcResult::Unreachable)
                | (BmcResult::Unreachable, BmcResult::Reachable(_))
        )
    }
}

impl fmt::Display for BmcResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmcResult::Reachable(Some(t)) => write!(f, "reachable ({} steps)", t.len()),
            BmcResult::Reachable(None) => write!(f, "reachable"),
            BmcResult::Unreachable => write!(f, "unreachable"),
            BmcResult::Unknown(why) => write!(f, "unknown: {why}"),
        }
    }
}

/// Resource budgets shared by every engine — the reproduction of the
/// paper's per-instance 300 s / 1 GB protocol.
#[derive(Clone, Debug, Default)]
pub struct EngineLimits {
    /// Wall-clock budget for the whole check.
    pub timeout: Option<Duration>,
    /// Memory budget expressed in live formula literals (≈ 4 bytes
    /// each), applied to the dominant in-memory formula.
    pub max_formula_lits: Option<usize>,
}

impl EngineLimits {
    /// No limits.
    pub fn none() -> Self {
        EngineLimits::default()
    }

    /// Limits with only a timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        EngineLimits {
            timeout: Some(timeout),
            max_formula_lits: None,
        }
    }

    /// The wall-clock deadline implied by [`EngineLimits::timeout`],
    /// measured from `start`.
    pub fn deadline_from(&self, start: Instant) -> Option<Instant> {
        self.timeout.map(|t| start + t)
    }
}

/// Size and effort metrics for one engine run — the raw material of
/// the experiment tables (see `EXPERIMENTS.md`).
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Wall-clock time spent.
    pub duration: Duration,
    /// Variables in the encoded formula (0 if the engine does not build
    /// a monolithic formula).
    pub encode_vars: usize,
    /// Clauses in the encoded formula.
    pub encode_clauses: usize,
    /// Literals in the encoded formula — the paper's formula-size
    /// measure (E2).
    pub encode_lits: usize,
    /// Peak live literals held by the engine's solver(s) — the memory
    /// proxy of experiment E4.
    pub peak_formula_lits: usize,
    /// Peak clause-database size in bytes. For SAT-backed engines this
    /// is the solver arena's exact figure (headers included); QBF
    /// engines report `peak_formula_lits × 4` since their matrices are
    /// plain literal arrays.
    pub peak_formula_bytes: usize,
    /// Back-end solver conflicts (SAT) or decisions (QBF).
    pub solver_effort: u64,
}

/// Outcome of a bounded check: verdict plus metrics.
#[derive(Clone, Debug)]
pub struct BmcOutcome {
    /// The verdict.
    pub result: BmcResult,
    /// Metrics of the run.
    pub stats: RunStats,
}

impl BmcOutcome {
    /// Convenience constructor for unknown verdicts.
    pub fn unknown(reason: impl Into<String>, stats: RunStats) -> Self {
        BmcOutcome {
            result: BmcResult::Unknown(reason.into()),
            stats,
        }
    }
}

/// A bounded-reachability decision procedure.
///
/// Implementations: [`UnrollSat`](crate::UnrollSat) (formulation (1)),
/// [`QbfLinear`](crate::QbfLinear) (formulation (2) via a
/// general-purpose QBF solver), [`QbfSquaring`](crate::QbfSquaring)
/// (formulation (3)), and [`JSat`](crate::JSat) (the paper's
/// special-purpose procedure, formula (4)).
pub trait BoundedChecker {
    /// Short engine name for tables.
    fn name(&self) -> &'static str;

    /// Decides whether a target state of `model` is reachable at bound
    /// `k` under `semantics`.
    fn check(&mut self, model: &Model, k: usize, semantics: Semantics) -> BmcOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_predicates() {
        let r = BmcResult::Reachable(None);
        assert!(r.is_reachable() && !r.is_unreachable() && !r.is_unknown());
        assert!(r.witness().is_none());
        let u = BmcResult::Unreachable;
        assert!(u.is_unreachable());
        let q = BmcResult::Unknown("budget".into());
        assert!(q.is_unknown());
    }

    #[test]
    fn agreement_matrix() {
        let r = BmcResult::Reachable(None);
        let u = BmcResult::Unreachable;
        let q = BmcResult::Unknown("x".into());
        assert!(!r.agrees_with(&u));
        assert!(!u.agrees_with(&r));
        assert!(r.agrees_with(&r));
        assert!(u.agrees_with(&u));
        assert!(q.agrees_with(&r) && q.agrees_with(&u) && r.agrees_with(&q));
    }

    #[test]
    fn display_forms() {
        assert_eq!(BmcResult::Unreachable.to_string(), "unreachable");
        assert_eq!(
            BmcResult::Unknown("timeout".into()).to_string(),
            "unknown: timeout"
        );
        assert_eq!(Semantics::Exactly.to_string(), "exactly");
        assert_eq!(Semantics::Within.to_string(), "within");
    }

    #[test]
    fn deadline_computation() {
        let l = EngineLimits::with_timeout(Duration::from_secs(1));
        let now = Instant::now();
        let d = l.deadline_from(now).unwrap();
        assert!(d > now);
        assert!(EngineLimits::none().deadline_from(now).is_none());
    }
}
