//! The common interface of all bounded-reachability engines.
//!
//! The central abstraction is the **session**: [`Engine::start`] binds
//! an engine to one model/semantics/[`Budget`] and returns a
//! [`Session`] whose [`Session::check_bound`] may be called for a
//! *sequence* of bounds. Engines keep their solver and encoding state
//! alive between calls — incremental unrolling keeps its CDCL solver
//! and learnt clauses, jSAT keeps formula (4) and its failed-state
//! cache, the QBF engines keep their (self-loop-transformed) model —
//! which is what makes the paper's bound-deepening loop cheap.
//!
//! ```
//! use sebmc::{Budget, Engine, Semantics, UnrollSat};
//! use sebmc_model::builders::shift_register;
//!
//! let model = shift_register(4);
//! let engine = UnrollSat::default();
//! let mut session = engine.start(&model, Semantics::Exactly, Budget::none());
//! // Deepen: every bound reuses the clauses (and learnt clauses) of
//! // the previous ones.
//! for k in 0..4 {
//!     assert!(session.check_bound(k).result.is_unreachable());
//! }
//! assert!(session.check_bound(4).result.is_reachable());
//! let total = session.cumulative_stats();
//! assert!(total.bounds_checked == 5 && total.encode_lits > 0);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sebmc_model::{Model, Trace};
use sebmc_proof::Certificate;

/// Which bounded-reachability question to decide.
///
/// The paper's formulations check reachability in *exactly* `k` steps;
/// the self-loop transformation (end of §2) turns this into *within*
/// `k` steps. Both are first-class here.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// Is a target state reachable in exactly `k` steps?
    Exactly,
    /// Is a target state reachable in at most `k` steps?
    Within,
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Semantics::Exactly => write!(f, "exactly"),
            Semantics::Within => write!(f, "within"),
        }
    }
}

/// Verdict of a bounded check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BmcResult {
    /// A target state is reachable; engines that construct concrete
    /// paths attach a witness (QBF back-ends cannot).
    Reachable(Option<Trace>),
    /// No target state is reachable under the given bound/semantics.
    Unreachable,
    /// The engine gave up (budget exhausted, cancelled, or unsupported
    /// bound); the string says why.
    Unknown(String),
}

impl BmcResult {
    /// `true` for [`BmcResult::Reachable`].
    pub fn is_reachable(&self) -> bool {
        matches!(self, BmcResult::Reachable(_))
    }

    /// `true` for [`BmcResult::Unreachable`].
    pub fn is_unreachable(&self) -> bool {
        matches!(self, BmcResult::Unreachable)
    }

    /// `true` for [`BmcResult::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, BmcResult::Unknown(_))
    }

    /// The witness trace, if one was produced.
    pub fn witness(&self) -> Option<&Trace> {
        match self {
            BmcResult::Reachable(t) => t.as_ref(),
            _ => None,
        }
    }

    /// Whether two verdicts agree (Unknown is compatible with anything).
    pub fn agrees_with(&self, other: &BmcResult) -> bool {
        !matches!(
            (self, other),
            (BmcResult::Reachable(_), BmcResult::Unreachable)
                | (BmcResult::Unreachable, BmcResult::Reachable(_))
        )
    }
}

impl fmt::Display for BmcResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmcResult::Reachable(Some(t)) => write!(f, "reachable ({} steps)", t.len()),
            BmcResult::Reachable(None) => write!(f, "reachable"),
            BmcResult::Unreachable => write!(f, "unreachable"),
            BmcResult::Unknown(why) => write!(f, "unknown: {why}"),
        }
    }
}

/// A cooperative cancellation token shared between a session and
/// whoever wants to abort it (a portfolio harness, a service layer, a
/// ctrl-C handler).
///
/// Clones share the underlying flag. Engines poll the token at their
/// safe points — the SAT solver every 64 conflicts, the QDPLL solver
/// per decision, jSAT between incremental SAT calls — and return
/// [`BmcResult::Unknown`] ("cancelled") promptly after it fires.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fires the token. All clones observe the cancellation; firing is
    /// idempotent and cannot be undone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The raw shared flag, for plumbing into solver-level limit
    /// structs ([`sebmc_sat::Limits::cancel`],
    /// [`sebmc_qbf::QbfLimits::cancel`]).
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// Unified resource budget for a whole session — the reproduction of
/// the paper's per-instance 300 s / 1 GB protocol, plus cooperative
/// cancellation.
///
/// The wall clock starts when [`Engine::start`] creates the session;
/// every later [`Session::check_bound`] call shares the same deadline.
/// The memory cap is **byte-based** and compared against the exact
/// clause-arena accounting of the SAT solver (headers included) — not
/// a literal-count approximation.
///
/// `Clone` shares the [`CancelToken`]: cloning a budget for several
/// portfolio engines lets one `cancel()` stop them all.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Wall-clock budget for the whole session.
    pub timeout: Option<Duration>,
    /// Memory budget in bytes, applied to the dominant in-memory
    /// formula (the SAT clause arena's live bytes, or the QBF matrix at
    /// 4 bytes per literal).
    pub max_formula_bytes: Option<usize>,
    /// Certify verdicts: SAT-backed engines stream a binary-DRAT proof
    /// through the bounded on-the-fly checker and attach a
    /// [`Certificate`] to every decided bound (Unsat bounds are
    /// proof-checked, Sat bounds replayed through the model
    /// simulator). Engines without proof support (the QBF back-ends)
    /// attach nothing.
    pub certify: bool,
    /// Cooperative cancellation; fires for every clone of this budget.
    pub cancel: CancelToken,
    /// Stream the binary-DRAT proof of every Unsat bound to this file
    /// in addition to (or instead of) checking it on the fly. The file
    /// is created lazily by the first SAT-backed session; QBF engines
    /// ignore it.
    pub proof_out: Option<std::path::PathBuf>,
    /// Fault-injection plan, threaded down to the solver's safe points
    /// and consulted at engine `check_bound` entry. Inert by default.
    pub fault: sebmc_logic::fault::FaultPlan,
    /// Apply static model reduction (cone-of-influence, constant-latch
    /// sweeping, unused-input elimination) before the engine encodes
    /// anything, lifting any witness back to the original model. On by
    /// default; `--no-reduce` turns it off.
    pub reduce: bool,
    /// Progress sink, threaded down to the SAT solver's safe points
    /// and notified at engine `check_bound` entry. Inert by default —
    /// same one-branch contract as the proof hooks.
    pub progress: sebmc_telemetry::ProgressHandle,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            timeout: None,
            max_formula_bytes: None,
            certify: false,
            cancel: CancelToken::default(),
            proof_out: None,
            fault: sebmc_logic::fault::FaultPlan::default(),
            reduce: true,
            progress: sebmc_telemetry::ProgressHandle::default(),
        }
    }
}

impl Budget {
    /// No limits (and a fresh, un-fired token).
    pub fn none() -> Self {
        Budget::default()
    }

    /// A budget with only a timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        Budget {
            timeout: Some(timeout),
            ..Budget::default()
        }
    }

    /// A budget with only a byte-based memory cap.
    pub fn with_memory_bytes(bytes: usize) -> Self {
        Budget {
            max_formula_bytes: Some(bytes),
            ..Budget::default()
        }
    }

    /// Returns `self` with its cancel token replaced by `token` (used
    /// to tie several budgets to one external kill switch).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Returns `self` with verdict certification switched on or off.
    pub fn with_certify(mut self, certify: bool) -> Self {
        self.certify = certify;
        self
    }

    /// A clone of the session's cancel token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The wall-clock deadline implied by [`Budget::timeout`], measured
    /// from `start`.
    pub fn deadline_from(&self, start: Instant) -> Option<Instant> {
        self.timeout.map(|t| start + t)
    }

    /// `true` once the deadline (measured from `start`) has passed or
    /// the token has fired.
    pub fn expired(&self, start: Instant) -> bool {
        self.cancel.is_cancelled()
            || self
                .deadline_from(start)
                .is_some_and(|d| Instant::now() >= d)
    }

    /// The canonical [`BmcResult::Unknown`] reason under this budget:
    /// `"cancelled"` if the token fired, `"budget exhausted"` otherwise.
    pub fn unknown_reason(&self) -> String {
        if self.cancel.is_cancelled() {
            "cancelled".into()
        } else {
            "budget exhausted".into()
        }
    }

    /// This budget lowered onto the SAT solver's per-solve limits, with
    /// the deadline measured from `start` and the memory cap applied to
    /// the arena's exact live bytes.
    pub fn sat_limits(&self, start: Instant) -> sebmc_sat::Limits {
        sebmc_sat::Limits {
            deadline: self.deadline_from(start),
            max_live_bytes: self.max_formula_bytes,
            cancel: Some(self.cancel.flag()),
            fault: self.fault.clone(),
            progress: self.progress.clone(),
            ..sebmc_sat::Limits::none()
        }
    }

    /// The proof sink implied by this budget, if any: the on-the-fly
    /// checker for `certify`, a [`sebmc_proof::DratWriter`] on
    /// [`Budget::proof_out`] for disk export, or a tee of both. Returns
    /// `None` (and leaves the solver sink-free) when neither is asked
    /// for, or when the export file cannot be created — a budget is not
    /// the place to fail a run over an unwritable path, so export
    /// errors degrade to "no file" while certification still runs.
    pub fn proof_sink(&self) -> Option<Box<dyn sebmc_proof::ProofSink>> {
        let writer: Option<Box<dyn sebmc_proof::ProofSink>> =
            self.proof_out.as_ref().and_then(|path| {
                let file = std::fs::File::create(path).ok()?;
                Some(
                    Box::new(sebmc_proof::DratWriter::standard(std::io::BufWriter::new(
                        file,
                    ))) as Box<dyn sebmc_proof::ProofSink>,
                )
            });
        match (self.certify, writer) {
            (true, Some(w)) => Some(Box::new(sebmc_proof::TeeSink::new(
                Box::new(sebmc_proof::StreamingChecker::new()),
                w,
            ))),
            (true, None) => Some(Box::new(sebmc_proof::StreamingChecker::new())),
            (false, Some(w)) => Some(w),
            (false, None) => None,
        }
    }

    /// Records a fault-injection safe-point hit at engine level,
    /// steering injected cancellations onto this budget's token.
    pub fn fault_hit_engine(&self) -> sebmc_logic::fault::FaultVerdict {
        if self.fault.is_none() {
            return sebmc_logic::fault::FaultVerdict::None;
        }
        let flag = self.cancel.flag();
        self.fault
            .hit(sebmc_logic::fault::FaultSite::Engine, Some(&*flag))
    }

    /// This budget lowered onto the QBF solvers' limits.
    pub fn qbf_limits(&self, start: Instant) -> sebmc_qbf::QbfLimits {
        sebmc_qbf::QbfLimits {
            deadline: self.deadline_from(start),
            max_decisions: None,
            cancel: Some(self.cancel.flag()),
        }
    }
}

/// Size and effort metrics for one engine run — the raw material of
/// the experiment tables (see `EXPERIMENTS.md`).
///
/// For a [`Session`], the per-bound [`BmcOutcome::stats`] describe one
/// `check_bound` call while [`Session::cumulative_stats`] aggregates
/// across the whole session via [`RunStats::absorb`].
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Wall-clock time spent.
    pub duration: Duration,
    /// Variables in the encoded formula (0 if the engine does not build
    /// a monolithic formula).
    pub encode_vars: usize,
    /// Clauses in the encoded formula.
    pub encode_clauses: usize,
    /// Literals in the encoded formula — the paper's formula-size
    /// measure (E2).
    pub encode_lits: usize,
    /// Peak live literals held by the engine's solver(s) — the memory
    /// proxy of experiment E4.
    pub peak_formula_lits: usize,
    /// Peak clause-database size in bytes. For SAT-backed engines this
    /// is the solver arena's exact figure (headers included); QBF
    /// engines report `peak_formula_lits × 4` since their matrices are
    /// plain literal arrays.
    pub peak_formula_bytes: usize,
    /// Peak bytes held by the solver's *access structures* — the flat
    /// watch-list storage plus its per-literal range table — reported
    /// alongside `peak_formula_bytes` so the paper's memory accounting
    /// covers the whole clause database, not just the clauses. 0 for
    /// QBF engines (their matrices carry no watch structures).
    pub peak_watch_bytes: usize,
    /// Exact bytes of binary-DRAT proof stream emitted so far (0
    /// unless [`Budget::certify`] is on and the engine logs proofs).
    /// The stream only grows, so absorbing by maximum yields the
    /// session's total stream size.
    pub peak_proof_bytes: usize,
    /// Latches swept as constants by static reduction (0 when
    /// reduction is off or found nothing).
    pub latches_swept: usize,
    /// Latches kept in the cone of influence after static reduction
    /// (0 when reduction did not run or changed nothing).
    pub coi_latches: usize,
    /// Free inputs removed as unused by static reduction.
    pub inputs_removed: usize,
    /// Back-end solver conflicts (SAT) or decisions (QBF).
    pub solver_effort: u64,
    /// `check_bound` calls folded into this record (1 for a one-shot
    /// outcome; the session total in
    /// [`Session::cumulative_stats`]).
    pub bounds_checked: usize,
}

impl RunStats {
    /// Folds the stats of one more bounded check into a cumulative
    /// record: durations and solver effort add up, formula sizes and
    /// peaks take the maximum.
    pub fn absorb(&mut self, other: &RunStats) {
        self.duration += other.duration;
        self.encode_vars = self.encode_vars.max(other.encode_vars);
        self.encode_clauses = self.encode_clauses.max(other.encode_clauses);
        self.encode_lits = self.encode_lits.max(other.encode_lits);
        self.peak_formula_lits = self.peak_formula_lits.max(other.peak_formula_lits);
        self.peak_formula_bytes = self.peak_formula_bytes.max(other.peak_formula_bytes);
        self.peak_watch_bytes = self.peak_watch_bytes.max(other.peak_watch_bytes);
        self.peak_proof_bytes = self.peak_proof_bytes.max(other.peak_proof_bytes);
        self.latches_swept = self.latches_swept.max(other.latches_swept);
        self.coi_latches = self.coi_latches.max(other.coi_latches);
        self.inputs_removed = self.inputs_removed.max(other.inputs_removed);
        self.solver_effort += other.solver_effort;
        self.bounds_checked += other.bounds_checked;
    }
}

/// Outcome of a bounded check: verdict plus metrics, plus — under
/// [`Budget::certify`] — the machine-check summary backing the
/// verdict.
#[derive(Clone, Debug)]
pub struct BmcOutcome {
    /// The verdict.
    pub result: BmcResult,
    /// Metrics of the run.
    pub stats: RunStats,
    /// Certification summary for this bound: present when the session
    /// ran under [`Budget::certify`] and the engine supports proof
    /// logging. [`Certificate::fully_certified`] says whether the
    /// verdict is actually covered.
    pub certificate: Option<Certificate>,
}

impl BmcOutcome {
    /// An outcome with no certificate attached.
    pub fn new(result: BmcResult, stats: RunStats) -> Self {
        BmcOutcome {
            result,
            stats,
            certificate: None,
        }
    }

    /// Convenience constructor for unknown verdicts.
    pub fn unknown(reason: impl Into<String>, stats: RunStats) -> Self {
        BmcOutcome::new(BmcResult::Unknown(reason.into()), stats)
    }
}

/// A bounded-reachability decision procedure, viewed as a session
/// factory.
///
/// Implementations: [`UnrollSat`](crate::UnrollSat) (formulation (1),
/// incrementally unrolled), [`QbfLinear`](crate::QbfLinear)
/// (formulation (2) via a general-purpose QBF solver),
/// [`QbfSquaring`](crate::QbfSquaring) (formulation (3)), and
/// [`JSat`](crate::JSat) (the paper's special-purpose procedure,
/// formula (4)).
///
/// See the [module docs](crate::engine) for a deepening example.
pub trait Engine {
    /// Short engine name for tables.
    fn name(&self) -> &'static str;

    /// Opens a session on `model` under `semantics` and `budget`. The
    /// budget's wall clock starts now and covers every subsequent
    /// [`Session::check_bound`] call.
    fn start(&self, model: &Model, semantics: Semantics, budget: Budget) -> Box<dyn Session>;

    /// The budget used by the one-shot [`BoundedChecker::check`]
    /// convenience path (the engine's configured per-check budget).
    fn default_budget(&self) -> Budget {
        Budget::none()
    }
}

/// An open bounded-model-checking session: engine state bound to one
/// model, semantics and [`Budget`].
///
/// Bounds may be checked in any order; engines reuse whatever state
/// survives between bounds (clauses, learnt clauses, caches). All
/// sessions are `Send` so a portfolio can drive them from worker
/// threads.
pub trait Session: Send {
    /// Name of the engine that opened the session.
    fn name(&self) -> &'static str;

    /// The semantics the session was opened with.
    fn semantics(&self) -> Semantics;

    /// Decides reachability at bound `k`, reusing session state. The
    /// returned stats describe this call only.
    fn check_bound(&mut self, k: usize) -> BmcOutcome;

    /// Whether the engine's technique can decide this bound at all
    /// (iterative squaring checks only powers of two). `check_bound`
    /// on an unsupported bound returns [`BmcResult::Unknown`];
    /// deepening loops should skip it rather than give up.
    fn supports_bound(&self, _k: usize) -> bool {
        true
    }

    /// Replaces the session's [`CancelToken`] for all *subsequent*
    /// `check_bound` calls, leaving the rest of the budget (deadline,
    /// byte cap) untouched.
    ///
    /// A fired token can never be un-fired, so a harness that wants to
    /// abort *one* bounded check without killing the whole session must
    /// arm a fresh child token before each call — this is what makes
    /// **portfolio-level deepening** possible: the per-bound race token
    /// cancels this bound's losers, and the next bound re-arms every
    /// session with a new token, solver state intact.
    fn set_cancel(&mut self, token: CancelToken);

    /// Aggregate stats across every `check_bound` call so far:
    /// durations and solver effort summed, formula sizes and memory
    /// peaks maxed.
    fn cumulative_stats(&self) -> RunStats;
}

/// One-shot convenience over the session API: open a session with the
/// engine's default budget, check a single bound, drop the session.
pub fn one_shot(engine: &dyn Engine, model: &Model, k: usize, semantics: Semantics) -> BmcOutcome {
    engine
        .start(model, semantics, engine.default_budget())
        .check_bound(k)
}

/// The legacy one-shot interface, kept as a thin veneer over
/// [`Engine`]/[`Session`] for callers that decide a single bound.
///
/// Every engine implements this by opening a fresh session with its
/// configured [`Engine::default_budget`] and checking one bound.
pub trait BoundedChecker {
    /// Short engine name for tables.
    fn name(&self) -> &'static str;

    /// Decides whether a target state of `model` is reachable at bound
    /// `k` under `semantics`.
    fn check(&mut self, model: &Model, k: usize, semantics: Semantics) -> BmcOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_predicates() {
        let r = BmcResult::Reachable(None);
        assert!(r.is_reachable() && !r.is_unreachable() && !r.is_unknown());
        assert!(r.witness().is_none());
        let u = BmcResult::Unreachable;
        assert!(u.is_unreachable());
        let q = BmcResult::Unknown("budget".into());
        assert!(q.is_unknown());
    }

    #[test]
    fn agreement_matrix() {
        let r = BmcResult::Reachable(None);
        let u = BmcResult::Unreachable;
        let q = BmcResult::Unknown("x".into());
        assert!(!r.agrees_with(&u));
        assert!(!u.agrees_with(&r));
        assert!(r.agrees_with(&r));
        assert!(u.agrees_with(&u));
        assert!(q.agrees_with(&r) && q.agrees_with(&u) && r.agrees_with(&q));
    }

    #[test]
    fn display_forms() {
        assert_eq!(BmcResult::Unreachable.to_string(), "unreachable");
        assert_eq!(
            BmcResult::Unknown("timeout".into()).to_string(),
            "unknown: timeout"
        );
        assert_eq!(Semantics::Exactly.to_string(), "exactly");
        assert_eq!(Semantics::Within.to_string(), "within");
    }

    #[test]
    fn deadline_computation() {
        let b = Budget::with_timeout(Duration::from_secs(1));
        let now = Instant::now();
        let d = b.deadline_from(now).unwrap();
        assert!(d > now);
        assert!(Budget::none().deadline_from(now).is_none());
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let b = Budget::none();
        let clone = b.clone();
        assert!(!clone.cancel.is_cancelled());
        b.cancel.cancel();
        assert!(clone.cancel.is_cancelled());
        assert!(clone.expired(Instant::now()));
        assert_eq!(clone.unknown_reason(), "cancelled");
        // A *fresh* budget has its own flag.
        assert!(!Budget::none().cancel.is_cancelled());
    }

    #[test]
    fn budget_lowers_onto_solver_limits() {
        let b = Budget {
            timeout: Some(Duration::from_secs(1)),
            max_formula_bytes: Some(4096),
            certify: false,
            cancel: CancelToken::new(),
            ..Budget::default()
        };
        let now = Instant::now();
        let sl = b.sat_limits(now);
        assert!(sl.deadline.is_some());
        assert_eq!(sl.max_live_bytes, Some(4096));
        assert!(sl.cancel.is_some());
        let ql = b.qbf_limits(now);
        assert!(ql.deadline.is_some() && ql.cancel.is_some());
        b.cancel.cancel();
        assert!(sl
            .cancel
            .unwrap()
            .load(std::sync::atomic::Ordering::Relaxed));
    }

    #[test]
    fn stats_absorb_sums_and_maxes() {
        let mut total = RunStats::default();
        total.absorb(&RunStats {
            duration: Duration::from_millis(5),
            encode_lits: 100,
            peak_formula_bytes: 400,
            peak_proof_bytes: 90,
            solver_effort: 7,
            bounds_checked: 1,
            ..RunStats::default()
        });
        total.absorb(&RunStats {
            duration: Duration::from_millis(3),
            encode_lits: 250,
            peak_formula_bytes: 300,
            peak_proof_bytes: 150,
            solver_effort: 2,
            bounds_checked: 1,
            ..RunStats::default()
        });
        assert_eq!(total.duration, Duration::from_millis(8));
        assert_eq!(total.encode_lits, 250);
        assert_eq!(total.peak_formula_bytes, 400);
        assert_eq!(total.peak_proof_bytes, 150, "proof stream size is maxed");
        assert_eq!(total.solver_effort, 9);
        assert_eq!(total.bounds_checked, 2);
    }

    #[test]
    fn unknown_reason_tracks_token() {
        let b = Budget::none();
        assert_eq!(b.unknown_reason(), "budget exhausted");
        b.cancel.cancel();
        assert_eq!(b.unknown_reason(), "cancelled");
    }
}
