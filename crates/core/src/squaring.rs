//! Formulation (3): iterative squaring.
//!
//! `R_k(Z₀,Z_k) = ∃M ∀U,V.
//!    ((U↔Z₀ ∧ V↔M) ∨ (U↔M ∧ V↔Z_k)) → R_{k/2}(U,V)`
//!
//! with `R₁ = TR`. Each halving level shares its two recursive
//! occurrences through one `∀U,V` pair, so `TR` still appears once and
//! only `⌈log₂ k⌉` *iterations* are needed for a complete check — at
//! the price of a growing number of universal variables and one
//! quantifier alternation per level (experiment E3 tabulates this).
//!
//! Only power-of-two bounds are directly expressible; the paper's
//! self-loop trick ([`Model::with_self_loops`]) rounds other bounds up
//! under within-`k` semantics.

use std::time::Instant;

use sebmc_logic::{tseitin, Aig, AigRef, Cnf, Lit, Var, VarAlloc};
use sebmc_model::Model;
use sebmc_qbf::{QbfFormula, QbfResult, Quantifier};

use crate::engine::{
    BmcOutcome, BmcResult, BoundedChecker, Budget, Engine, RunStats, Semantics, Session,
};
use crate::qbf_enc::{import_map, import_tr, solve_qbf, QbfBackend, QbfEncoding};

/// Encodes "a target state is reachable in exactly `k` steps" by
/// iterative squaring.
///
/// # Panics
///
/// Panics if `k` is zero or not a power of two.
pub fn encode_qbf_squaring(model: &Model, k: usize) -> QbfEncoding {
    assert!(k >= 1 && k.is_power_of_two(), "squaring needs k = 2^d ≥ 1");
    let d = k.trailing_zeros() as usize;
    let n = model.num_state_vars();
    let m = model.num_inputs();
    let mut g = Aig::new();
    let z0 = g.inputs(n);
    let zk = g.inputs(n);

    struct Level {
        mid: Vec<AigRef>,
        u: Vec<AigRef>,
        v: Vec<AigRef>,
    }
    let levels: Vec<Level> = (0..d)
        .map(|_| Level {
            mid: g.inputs(n),
            u: g.inputs(n),
            v: g.inputs(n),
        })
        .collect();
    let w = g.inputs(m);

    // Innermost: one copy of TR over the deepest (U, V) pair.
    let (ta, tb) = if d == 0 {
        (&z0, &zk)
    } else {
        (&levels[d - 1].u, &levels[d - 1].v)
    };
    let ta = ta.clone();
    let tb = tb.clone();
    let mut body = import_tr(&mut g, model, &ta, &tb, &w);

    // Wrap the halving levels from the innermost out.
    for l in (0..d).rev() {
        let (pa, pb) = if l == 0 {
            (z0.clone(), zk.clone())
        } else {
            (levels[l - 1].u.clone(), levels[l - 1].v.clone())
        };
        let lv = &levels[l];
        let e1a = g.eq_words(&lv.u, &pa);
        let e1b = g.eq_words(&lv.v, &lv.mid);
        let first_half = g.and(e1a, e1b);
        let e2a = g.eq_words(&lv.u, &lv.mid);
        let e2b = g.eq_words(&lv.v, &pb);
        let second_half = g.and(e2a, e2b);
        let ante = g.or(first_half, second_half);
        body = g.implies(ante, body);
    }

    let init_map = import_map(model, &z0, None);
    let init_root = g.import(model.aig(), &[model.init_ref()], &init_map)[0];
    let target_map = import_map(model, &zk, None);
    let target_root = g.import(model.aig(), &[model.target_ref()], &target_map)[0];
    let with_init = g.and(body, init_root);
    let matrix_root = g.and(with_init, target_root);

    // Allocate variables in prefix order:
    // ∃(Z0, Zk, M₁) ∀(U₁,V₁) ∃(M₂) ∀(U₂,V₂) … ∃(M_d) ∀(U_d,V_d) ∃(W, aux).
    let mut alloc = VarAlloc::new();
    let mut input_lits: Vec<Lit> = Vec::new();
    let z0_lits = alloc.fresh_lits(n);
    let zk_lits = alloc.fresh_lits(n);
    input_lits.extend(&z0_lits);
    input_lits.extend(&zk_lits);
    // Block boundaries: (exists_vars, forall_vars) pairs per level.
    let mut blocks: Vec<(Quantifier, Vec<Var>)> = Vec::new();
    let mut outer_exists: Vec<Var> = (0..alloc.num_vars()).map(|i| Var::new(i as u32)).collect();
    for _lv in 0..d {
        let mid = alloc.fresh_lits(n);
        input_lits.extend(&mid);
        outer_exists.extend(mid.iter().map(|l| l.var()));
        blocks.push((Quantifier::Exists, std::mem::take(&mut outer_exists)));
        let u = alloc.fresh_lits(n);
        let v = alloc.fresh_lits(n);
        input_lits.extend(&u);
        input_lits.extend(&v);
        blocks.push((
            Quantifier::ForAll,
            u.iter().chain(v.iter()).map(|l| l.var()).collect(),
        ));
    }
    if !outer_exists.is_empty() {
        blocks.push((Quantifier::Exists, std::mem::take(&mut outer_exists)));
    }
    let w_lits = alloc.fresh_lits(m);
    input_lits.extend(&w_lits);
    let inner_start = alloc.num_vars() - m;

    let mut cnf = Cnf::new();
    let root = tseitin::encode(&g, &[matrix_root], &input_lits, &mut alloc, &mut cnf)[0];
    cnf.add_unit(root);
    cnf.ensure_vars(alloc.num_vars());

    let mut formula = QbfFormula::new(cnf);
    for (q, vars) in blocks {
        formula.push_block(q, vars);
    }
    formula.push_block(
        Quantifier::Exists,
        (inner_start..alloc.num_vars()).map(|i| Var::new(i as u32)),
    );
    debug_assert!(formula.validate().is_ok(), "{:?}", formula.validate());

    QbfEncoding {
        formula,
        z_lits: vec![z0_lits, zk_lits],
    }
}

/// Formulation (3) engine: iterative-squaring QBF solved by a
/// general-purpose QBF solver.
///
/// * [`Semantics::Exactly`]: only power-of-two bounds are checkable
///   (the paper's restriction); other bounds yield
///   [`BmcResult::Unknown`]. Bound 0 degenerates to an initial-state
///   intersection check, solved directly.
/// * [`Semantics::Within`]: the model is given self-loops (so exact-`k`
///   reachability becomes within-`k`), which still only supports
///   power-of-two bounds — the iterative procedure of the paper checks
///   within-1, within-2, within-4, …
///
/// ```
/// use sebmc::{BoundedChecker, QbfBackend, QbfSquaring, Semantics};
/// use sebmc_model::builders::johnson_counter;
///
/// let model = johnson_counter(2); // all-ones at exactly 2 steps
/// let mut engine = QbfSquaring::new(QbfBackend::Expansion);
/// assert!(engine.check(&model, 2, Semantics::Exactly).result.is_reachable());
/// ```
#[derive(Debug)]
pub struct QbfSquaring {
    /// Which QBF solver to run.
    pub backend: QbfBackend,
    /// Default budget for one-shot [`BoundedChecker::check`] calls.
    pub budget: Budget,
}

impl QbfSquaring {
    /// Creates the engine with unlimited budgets.
    pub fn new(backend: QbfBackend) -> Self {
        QbfSquaring {
            backend,
            budget: Budget::none(),
        }
    }

    /// Creates the engine with the given default budget.
    pub fn with_budget(backend: QbfBackend, budget: Budget) -> Self {
        QbfSquaring { backend, budget }
    }
}

/// An open formulation-(3) session. Like the linear QBF session, the
/// encoding is rebuilt per bound; the session keeps the (possibly
/// self-loop-transformed) model, the budget clock and the cumulative
/// statistics.
#[derive(Debug)]
pub struct QbfSquaringSession {
    backend: QbfBackend,
    semantics: Semantics,
    /// Already self-loop-transformed under `Within` semantics.
    model: Model,
    budget: Budget,
    started: Instant,
    total: RunStats,
}

impl QbfSquaringSession {
    /// Opens a session; applies the self-loop transform now if needed.
    pub fn new(backend: QbfBackend, model: &Model, semantics: Semantics, budget: Budget) -> Self {
        let model = match semantics {
            Semantics::Exactly => model.clone(),
            Semantics::Within => model.with_self_loops(),
        };
        QbfSquaringSession {
            backend,
            semantics,
            model,
            budget,
            started: Instant::now(),
            total: RunStats::default(),
        }
    }

    /// Bound-0 degenerate case: is some initial state a target state?
    fn check_zero(&self) -> (BmcResult, RunStats) {
        // Encode I(Z)∧F(Z) as a purely existential QBF and reuse the
        // same backend, keeping the engine self-contained.
        let model = &self.model;
        let n = model.num_state_vars();
        let mut g = Aig::new();
        let z = g.inputs(n);
        let map = import_map(model, &z, None);
        let init_root = g.import(model.aig(), &[model.init_ref()], &map)[0];
        let target_root = g.import(model.aig(), &[model.target_ref()], &map)[0];
        let both = g.and(init_root, target_root);
        let mut alloc = VarAlloc::new();
        let lits = alloc.fresh_lits(n);
        let mut cnf = Cnf::new();
        let root = tseitin::encode(&g, &[both], &lits, &mut alloc, &mut cnf)[0];
        cnf.add_unit(root);
        cnf.ensure_vars(alloc.num_vars());
        let formula = QbfFormula::new(cnf);
        let (r, effort, peak) = solve_qbf(self.backend, &formula, &self.budget, self.started);
        let result = match r {
            QbfResult::True => BmcResult::Reachable(None),
            QbfResult::False => BmcResult::Unreachable,
            QbfResult::Unknown => BmcResult::Unknown(self.budget.unknown_reason()),
        };
        let stats = RunStats {
            encode_vars: formula.matrix().num_vars(),
            encode_clauses: formula.matrix().num_clauses(),
            encode_lits: formula.matrix().num_literals(),
            peak_formula_lits: peak,
            peak_formula_bytes: peak * std::mem::size_of::<sebmc_logic::Lit>(),
            solver_effort: effort,
            ..RunStats::default()
        };
        (result, stats)
    }
}

impl Session for QbfSquaringSession {
    fn name(&self) -> &'static str {
        match self.backend {
            QbfBackend::Qdpll => "qbf-squaring-qdpll",
            QbfBackend::Expansion => "qbf-squaring-expansion",
        }
    }

    fn semantics(&self) -> Semantics {
        self.semantics
    }

    fn supports_bound(&self, k: usize) -> bool {
        k == 0 || k.is_power_of_two()
    }

    fn check_bound(&mut self, k: usize) -> BmcOutcome {
        let call_start = Instant::now();
        let (result, mut stats) = if self.budget.expired(self.started) {
            (
                BmcResult::Unknown(self.budget.unknown_reason()),
                RunStats::default(),
            )
        } else if k == 0 {
            self.check_zero()
        } else if !k.is_power_of_two() {
            (
                BmcResult::Unknown(format!(
                    "iterative squaring checks only power-of-two bounds, got {k}"
                )),
                RunStats::default(),
            )
        } else {
            let enc = encode_qbf_squaring(&self.model, k);
            let mut stats = RunStats {
                encode_vars: enc.formula.matrix().num_vars(),
                encode_clauses: enc.formula.matrix().num_clauses(),
                encode_lits: enc.formula.matrix().num_literals(),
                ..RunStats::default()
            };
            let (r, effort, peak) =
                solve_qbf(self.backend, &enc.formula, &self.budget, self.started);
            stats.solver_effort = effort;
            stats.peak_formula_lits = peak;
            stats.peak_formula_bytes = peak * std::mem::size_of::<sebmc_logic::Lit>();
            let result = match r {
                QbfResult::True => BmcResult::Reachable(None),
                QbfResult::False => BmcResult::Unreachable,
                QbfResult::Unknown => BmcResult::Unknown(self.budget.unknown_reason()),
            };
            (result, stats)
        };
        stats.duration = call_start.elapsed();
        stats.bounds_checked = 1;
        self.total.absorb(&stats);
        BmcOutcome::new(result, stats)
    }

    fn set_cancel(&mut self, token: crate::engine::CancelToken) {
        self.budget.cancel = token;
    }

    fn cumulative_stats(&self) -> RunStats {
        self.total.clone()
    }
}

impl Engine for QbfSquaring {
    fn name(&self) -> &'static str {
        match self.backend {
            QbfBackend::Qdpll => "qbf-squaring-qdpll",
            QbfBackend::Expansion => "qbf-squaring-expansion",
        }
    }

    fn start(&self, model: &Model, semantics: Semantics, budget: Budget) -> Box<dyn Session> {
        let backend = self.backend;
        crate::reduce::start_with_reduction(model, semantics, budget, |m, sem, b| {
            Box::new(QbfSquaringSession::new(backend, m, sem, b))
        })
    }

    fn default_budget(&self) -> Budget {
        self.budget.clone()
    }
}

impl BoundedChecker for QbfSquaring {
    fn name(&self) -> &'static str {
        Engine::name(self)
    }

    fn check(&mut self, model: &Model, k: usize, semantics: Semantics) -> BmcOutcome {
        crate::engine::one_shot(self, model, k, semantics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_model::builders::{johnson_counter, lfsr, token_ring, traffic_light};
    use sebmc_model::explicit;

    #[test]
    fn alternations_grow_logarithmically() {
        let m = token_ring(3);
        for (k, expected_foralls) in [(1usize, 0usize), (2, 1), (4, 2), (8, 3), (16, 4)] {
            let e = encode_qbf_squaring(&m, k);
            let foralls = e
                .formula
                .prefix()
                .iter()
                .filter(|b| b.quantifier == Quantifier::ForAll)
                .count();
            assert_eq!(foralls, expected_foralls, "bound {k}");
            assert_eq!(
                e.formula.num_universals(),
                2 * m.num_state_vars() * expected_foralls,
                "universal count grows with levels"
            );
        }
    }

    #[test]
    #[should_panic(expected = "squaring needs k = 2^d")]
    fn non_power_of_two_encode_panics() {
        let m = token_ring(3);
        let _ = encode_qbf_squaring(&m, 3);
    }

    #[test]
    fn base_case_matches_oracle() {
        let m = token_ring(3);
        let mut e = QbfSquaring::new(QbfBackend::Expansion);
        let got = e.check(&m, 1, Semantics::Exactly).result;
        assert_eq!(got.is_reachable(), explicit::reachable_in_exactly(&m, 1));
    }

    #[test]
    fn squared_bounds_match_oracle_tiny() {
        let m = token_ring(3);
        let mut e = QbfSquaring::new(QbfBackend::Expansion);
        for k in [1usize, 2, 4] {
            let got = e.check(&m, k, Semantics::Exactly).result;
            let expect = explicit::reachable_in_exactly(&m, k);
            assert_eq!(got.is_reachable(), expect, "bound {k}");
            assert!(!got.is_unknown(), "bound {k}");
        }
    }

    #[test]
    fn johnson_at_power_of_two() {
        // Johnson(2): 00 → 10 → 11 → 01 → 00 …; all-ones at exactly 2.
        let m = johnson_counter(2);
        let mut e = QbfSquaring::new(QbfBackend::Expansion);
        assert!(e.check(&m, 2, Semantics::Exactly).result.is_reachable());
        assert!(e.check(&m, 4, Semantics::Exactly).result.is_unreachable());
    }

    #[test]
    fn non_power_of_two_exact_is_unknown() {
        let m = token_ring(3);
        let mut e = QbfSquaring::new(QbfBackend::Expansion);
        let out = e.check(&m, 5, Semantics::Exactly);
        assert!(out.result.is_unknown());
        assert!(matches!(
            out.result,
            BmcResult::Unknown(ref s) if s.contains("power-of-two")
        ));
    }

    #[test]
    fn within_power_of_two_uses_self_loops() {
        let m = lfsr(3, 4); // needle at exactly 4
        let mut e = QbfSquaring::new(QbfBackend::Expansion);
        assert!(e.check(&m, 4, Semantics::Within).result.is_reachable());
        assert!(e.check(&m, 2, Semantics::Within).result.is_unreachable());
        // Non-power-of-two within bounds are outside the technique.
        assert!(e.check(&m, 5, Semantics::Within).result.is_unknown());
    }

    #[test]
    fn bound_zero_initial_intersection() {
        let m = traffic_light();
        let mut e = QbfSquaring::new(QbfBackend::Qdpll);
        assert!(e.check(&m, 0, Semantics::Exactly).result.is_unreachable());
        assert!(e.check(&m, 0, Semantics::Within).result.is_unreachable());
    }
}
