//! Parallel engine portfolios with first-winner cancellation.
//!
//! Two harnesses live here:
//!
//! * [`run_portfolio`] — the **whole-run** race: every engine opens a
//!   fresh session on one `(model, k)` instance, the first decided
//!   verdict cancels the rest. One race, then all sessions are gone.
//! * [`DeepeningPortfolio`] — **portfolio-level deepening**: every
//!   engine opens one *live* session, and each bound is raced
//!   individually on a fresh child [`CancelToken`]. The first decided
//!   verdict of a bound cancels that bound's losers *without killing
//!   their sessions* ([`Session::set_cancel`] re-arms them before the
//!   next bound), so the losers keep their solver state — learnt
//!   clauses, frames, failed-state caches — and stay competitive at
//!   deeper bounds. This is the per-bound sharing step beyond the
//!   whole-run races: the service layer drives it over a job queue.
//!
//! Both harnesses race on a **child** token; the caller's own token
//! (in the passed [`Budget`]) is only read, never fired, so the budget
//! stays reusable. An external cancellation still propagates into the
//! race. A panicking engine is caught and surfaced as
//! [`BmcResult::Unknown`] rather than taking the whole portfolio down,
//! and cancelled losers report their partial [`RunStats`] (via
//! [`PortfolioEntry::cumulative`]) so racing effort can be accounted
//! honestly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use sebmc_model::Model;

use crate::engine::{
    BmcOutcome, BmcResult, Budget, CancelToken, Engine, RunStats, Semantics, Session,
};

/// How often the race harnesses poll for an external cancellation of
/// the caller's budget while waiting on engine replies.
const BRIDGE_POLL: Duration = Duration::from_millis(2);

/// The outcome of one engine inside a portfolio run.
#[derive(Debug)]
pub struct PortfolioEntry {
    /// Engine name.
    pub engine: &'static str,
    /// The engine's outcome for the raced instance/bound. Cancelled
    /// losers report `Unknown("cancelled")`; a panicking engine reports
    /// `Unknown("engine panicked: …")`.
    pub outcome: BmcOutcome,
    /// The engine session's cumulative stats *including* this race —
    /// present even when the engine lost and was cancelled mid-solve,
    /// so the effort burnt by losers is never dropped from the
    /// accounting ([`portfolio_stats`] sums it).
    pub cumulative: RunStats,
}

/// Aggregates the racing effort of a portfolio honestly: every entry's
/// cumulative stats — winners *and* cancelled losers — folded with
/// [`RunStats::absorb`] (durations/effort summed, sizes/peaks maxed).
pub fn portfolio_stats(entries: &[PortfolioEntry]) -> RunStats {
    let mut total = RunStats::default();
    for e in entries {
        total.absorb(&e.cumulative);
    }
    total
}

/// Renders a panic payload (the argument of `panic!`) as text.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Renders a contained engine panic as an *attributable* Unknown
/// reason: `engine panicked: <engine>: <payload>`, with the payload
/// truncated to a bounded length so a runaway `Debug` impl cannot
/// flood a JSON report. The `engine panicked:` prefix is a stable
/// contract relied on by the service layer's retry classification.
pub fn engine_panic_reason(engine: &str, payload: &(dyn std::any::Any + Send)) -> String {
    format!(
        "engine panicked: {engine}: {}",
        truncate_panic_payload(payload)
    )
}

/// The panic payload as text, truncated to ~120 bytes on a char
/// boundary with a trailing ellipsis.
pub fn truncate_panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    const MAX: usize = 120;
    let mut msg = panic_message(payload);
    if msg.len() > MAX {
        let mut cut = MAX;
        while !msg.is_char_boundary(cut) {
            cut -= 1;
        }
        msg.truncate(cut);
        msg.push('…');
    }
    msg
}

/// Runs every engine on `(model, k, semantics)` concurrently and
/// returns their outcomes in input order.
///
/// The race runs on a **child** token: the first engine to decide
/// fires it, cancelling the rest, while the caller's own
/// [`CancelToken`] is only ever *read* (a bridge propagates an
/// external cancellation into the race), never fired — so the passed
/// `budget` stays usable for subsequent runs. Engines that panic are
/// reported as Unknown instead of propagating the panic; cancelled
/// losers still surface their partial stats in
/// [`PortfolioEntry::cumulative`].
pub fn run_portfolio(
    model: &Model,
    k: usize,
    semantics: Semantics,
    engines: Vec<Box<dyn Engine + Send>>,
    budget: Budget,
) -> Vec<PortfolioEntry> {
    let caller = budget.cancel_token();
    let race = CancelToken::new();
    thread::scope(|s| {
        // Bridge: an external cancellation of the caller's budget must
        // still stop the race. Polled coarsely; the bridge exits as
        // soon as the race token fires (which the scope guarantees
        // below).
        {
            let race = race.clone();
            let caller = caller.clone();
            s.spawn(move || {
                while !race.is_cancelled() {
                    if caller.is_cancelled() {
                        race.cancel();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
        let handles: Vec<_> = engines
            .into_iter()
            .map(|engine| {
                let mut budget = budget.clone().with_cancel(race.clone());
                // Proof export is a single-session feature: N racing
                // sessions must not fight over one output file.
                budget.proof_out = None;
                let race = race.clone();
                s.spawn(move || {
                    let name = Engine::name(engine.as_ref());
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        let mut session = engine.start(model, semantics, budget);
                        let outcome = session.check_bound(k);
                        // Even a cancelled loser's session has exact
                        // accumulated stats — keep them.
                        let cumulative = session.cumulative_stats();
                        (outcome, cumulative)
                    }));
                    let (outcome, cumulative) = match run {
                        Ok((outcome, cumulative)) => {
                            if !outcome.result.is_unknown() {
                                // Decided: the rest of the portfolio can
                                // stop working on this instance.
                                race.cancel();
                            }
                            (outcome, cumulative)
                        }
                        Err(payload) => (
                            BmcOutcome::new(
                                BmcResult::Unknown(engine_panic_reason(name, payload.as_ref())),
                                RunStats::default(),
                            ),
                            RunStats::default(),
                        ),
                    };
                    PortfolioEntry {
                        engine: name,
                        outcome,
                        cumulative,
                    }
                })
            })
            .collect();
        let entries = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(entry) => entry,
                // The closure catches engine panics; a join error can
                // only come from a panic inside our own bookkeeping.
                Err(payload) => PortfolioEntry {
                    engine: "unknown",
                    outcome: BmcOutcome::new(
                        BmcResult::Unknown(engine_panic_reason("unknown", payload.as_ref())),
                        RunStats::default(),
                    ),
                    cumulative: RunStats::default(),
                },
            })
            .collect();
        // Release the bridge thread (idempotent if a winner already
        // fired the race token).
        race.cancel();
        entries
    })
}

/// Returns the first decided (non-Unknown) outcome of a portfolio run,
/// if any, together with the engine that produced it.
pub fn first_decided(entries: &[PortfolioEntry]) -> Option<&PortfolioEntry> {
    entries.iter().find(|e| !e.outcome.result.is_unknown())
}

/// The raced outcome of one bound of a [`DeepeningPortfolio`].
#[derive(Debug)]
pub struct PortfolioBoundOutcome {
    /// Per-engine entries, in the portfolio's engine order. Losers
    /// report `Unknown("cancelled")` with their partial stats attached.
    pub entries: Vec<PortfolioEntry>,
    /// Index (into `entries`) of the engine whose decided verdict won
    /// the race, if any engine decided.
    pub winner: Option<usize>,
    /// Whether at least one engine supports this bound at all
    /// (a portfolio of only iterative squaring cannot decide bound 3;
    /// deepening loops should *skip* such bounds, not give up).
    pub supported: bool,
}

impl PortfolioBoundOutcome {
    /// The shared verdict of the bound: the winner's result, or the
    /// first entry's `Unknown` when nobody decided.
    pub fn verdict(&self) -> &BmcResult {
        match self.winner {
            Some(i) => &self.entries[i].outcome.result,
            None => &self.entries[0].outcome.result,
        }
    }

    /// The winning entry, if any engine decided the bound.
    pub fn winning_entry(&self) -> Option<&PortfolioEntry> {
        self.winner.map(|i| &self.entries[i])
    }
}

/// A command for one engine worker of a [`DeepeningPortfolio`].
enum Cmd {
    /// Race bound `k` under the given per-bound child token.
    Check { k: usize, race: CancelToken },
    /// Shut the worker down (drop its session, exit the thread).
    Finish,
}

/// One engine worker's reply to a [`Cmd::Check`].
struct BoundReply {
    idx: usize,
    supported: bool,
    outcome: BmcOutcome,
    cumulative: RunStats,
}

/// One engine worker of a [`DeepeningPortfolio`]: a dedicated OS
/// thread owning one live [`Session`].
struct PortfolioWorker {
    name: &'static str,
    cmd: mpsc::Sender<Cmd>,
    join: Option<thread::JoinHandle<()>>,
}

/// Portfolio-level deepening: one live session per engine, every bound
/// raced individually on a fresh child [`CancelToken`], the first
/// decided verdict shared.
///
/// Unlike [`run_portfolio`] (which drops all sessions after a single
/// race), the losers of a bound keep their solver state — the next
/// [`DeepeningPortfolio::check_bound`] re-arms every session with a
/// new child token ([`Session::set_cancel`]) and races them again.
/// An engine whose session panics is retired for the rest of the run
/// (reported as `Unknown("engine panicked: …")` per bound); its last
/// known cumulative stats stay in the accounting.
///
/// The caller's [`Budget`] token is only *read*: an external
/// cancellation (or the budget deadline) aborts the current bound's
/// race promptly, but the portfolio never fires the caller's token.
///
/// ```
/// use sebmc::{Budget, DeepeningPortfolio, Engine, JSat, Semantics, UnrollSat};
/// use sebmc_model::builders::shift_register;
///
/// let model = shift_register(4);
/// let engines: Vec<Box<dyn Engine + Send>> =
///     vec![Box::new(UnrollSat::default()), Box::new(JSat::default())];
/// let mut p = DeepeningPortfolio::start(&model, Semantics::Exactly, engines, Budget::none());
/// for k in 0..4 {
///     assert!(p.check_bound(k).verdict().is_unreachable());
/// }
/// assert!(p.check_bound(4).verdict().is_reachable());
/// ```
pub struct DeepeningPortfolio {
    workers: Vec<PortfolioWorker>,
    results: mpsc::Receiver<BoundReply>,
    budget: Budget,
    started: Instant,
    /// Last known cumulative stats per engine, refreshed on every
    /// reply (kept even after a worker's session panics).
    last_cumulative: Vec<RunStats>,
    bounds_raced: usize,
}

impl DeepeningPortfolio {
    /// Opens one live session per engine (each on its own thread) and
    /// starts the shared budget clock.
    ///
    /// # Panics
    /// Panics if `engines` is empty.
    pub fn start(
        model: &Model,
        semantics: Semantics,
        engines: Vec<Box<dyn Engine + Send>>,
        budget: Budget,
    ) -> Self {
        assert!(!engines.is_empty(), "a portfolio needs at least one engine");
        let (tx, results) = mpsc::channel::<BoundReply>();
        let n = engines.len();
        let workers = engines
            .into_iter()
            .enumerate()
            .map(|(idx, engine)| {
                let name = Engine::name(engine.as_ref());
                let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
                let model = model.clone();
                let mut budget = budget.clone();
                // As in `run_portfolio`: one file, many sessions — no.
                budget.proof_out = None;
                let tx = tx.clone();
                let join = thread::spawn(move || {
                    worker_loop(idx, engine, model, semantics, budget, cmd_rx, tx);
                });
                PortfolioWorker {
                    name,
                    cmd: cmd_tx,
                    join: Some(join),
                }
            })
            .collect();
        DeepeningPortfolio {
            workers,
            results,
            budget,
            started: Instant::now(),
            last_cumulative: vec![RunStats::default(); n],
            bounds_raced: 0,
        }
    }

    /// Engine names, in portfolio order.
    pub fn engine_names(&self) -> Vec<&'static str> {
        self.workers.iter().map(|w| w.name).collect()
    }

    /// Number of `check_bound` races run so far.
    pub fn bounds_raced(&self) -> usize {
        self.bounds_raced
    }

    /// Races every live session on bound `k` under a fresh child token
    /// and returns all entries plus the winner.
    ///
    /// The first decided verdict fires the child token; losers abort at
    /// their next safe point and *survive* into the next bound. If the
    /// caller's budget expires (deadline or external token) mid-race,
    /// the bound is aborted the same way.
    pub fn check_bound(&mut self, k: usize) -> PortfolioBoundOutcome {
        self.bounds_raced += 1;
        let race = CancelToken::new();
        let n = self.workers.len();
        let mut slots: Vec<Option<(bool, BmcOutcome)>> = (0..n).map(|_| None).collect();
        // Only workers that actually received the command will reply;
        // waiting on a dead worker's reply would hang the race forever.
        let mut pending = 0usize;
        for w in &self.workers {
            if w.cmd
                .send(Cmd::Check {
                    k,
                    race: race.clone(),
                })
                .is_ok()
            {
                pending += 1;
            }
        }
        let mut winner: Option<usize> = None;
        while pending > 0 {
            match self.results.recv_timeout(BRIDGE_POLL) {
                Ok(reply) => {
                    self.last_cumulative[reply.idx] = reply.cumulative;
                    if winner.is_none() && !reply.outcome.result.is_unknown() {
                        winner = Some(reply.idx);
                        // Decided: this bound's losers can stop.
                        race.cancel();
                    }
                    slots[reply.idx] = Some((reply.supported, reply.outcome));
                    pending -= 1;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Bridge the caller's budget into the race: an
                    // external cancellation or the shared deadline
                    // aborts this bound promptly.
                    if self.budget.expired(self.started) {
                        race.cancel();
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        // Release any straggler (idempotent if already fired).
        race.cancel();
        let mut supported = false;
        let entries = slots
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| {
                let (sup, outcome) = slot.unwrap_or((
                    false,
                    BmcOutcome::unknown("engine worker exited", RunStats::default()),
                ));
                supported |= sup;
                PortfolioEntry {
                    engine: self.workers[idx].name,
                    outcome,
                    cumulative: self.last_cumulative[idx].clone(),
                }
            })
            .collect();
        PortfolioBoundOutcome {
            entries,
            winner,
            supported,
        }
    }

    /// Per-engine cumulative stats (engine name, session totals) as of
    /// the last race each engine replied to.
    pub fn engine_stats(&self) -> Vec<(&'static str, RunStats)> {
        self.workers
            .iter()
            .zip(&self.last_cumulative)
            .map(|(w, s)| (w.name, s.clone()))
            .collect()
    }

    /// The portfolio's total racing effort: every engine's cumulative
    /// stats folded with [`RunStats::absorb`] — durations and solver
    /// effort *summed* across engines (losers included, so the cost of
    /// racing is never hidden), sizes and peaks maxed.
    pub fn cumulative_stats(&self) -> RunStats {
        let mut total = RunStats::default();
        for s in &self.last_cumulative {
            total.absorb(s);
        }
        total
    }
}

impl Drop for DeepeningPortfolio {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.cmd.send(Cmd::Finish);
        }
        for w in &mut self.workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
    }
}

/// Body of one engine worker thread: owns the live session, serves
/// `Check` commands until `Finish` (or the portfolio is dropped).
fn worker_loop(
    idx: usize,
    engine: Box<dyn Engine + Send>,
    model: Model,
    semantics: Semantics,
    budget: Budget,
    cmd_rx: mpsc::Receiver<Cmd>,
    tx: mpsc::Sender<BoundReply>,
) {
    // Even `Engine::start` may panic; a dead session keeps replying
    // Unknown so the race never hangs on a missing entry.
    let name = Engine::name(engine.as_ref());
    let mut panic_reason: Option<String> = None;
    let mut session: Option<Box<dyn Session>> =
        match catch_unwind(AssertUnwindSafe(|| engine.start(&model, semantics, budget))) {
            Ok(s) => Some(s),
            Err(payload) => {
                panic_reason = Some(engine_panic_reason(name, payload.as_ref()));
                None
            }
        };
    let mut cumulative = RunStats::default();
    while let Ok(cmd) = cmd_rx.recv() {
        let (k, race) = match cmd {
            Cmd::Finish => break,
            Cmd::Check { k, race } => (k, race),
        };
        let reply = match session.as_mut() {
            None => BoundReply {
                idx,
                supported: false,
                outcome: BmcOutcome::unknown(
                    panic_reason.as_deref().unwrap_or("engine retired"),
                    RunStats::default(),
                ),
                cumulative: cumulative.clone(),
            },
            Some(s) => {
                // Everything that touches the session runs inside the
                // catch: a panic anywhere (supports_bound, set_cancel,
                // check_bound, cumulative_stats) retires the engine
                // instead of killing the worker thread — a dead worker
                // would starve every later race of its reply.
                let run = catch_unwind(AssertUnwindSafe(|| {
                    let supported = s.supports_bound(k);
                    if !supported {
                        // Skipped, not raced: no effort is burnt on (or
                        // accounted for) a bound the technique cannot
                        // decide.
                        let outcome = BmcOutcome::unknown(
                            format!("bound {k} unsupported"),
                            RunStats::default(),
                        );
                        return (supported, outcome, s.cumulative_stats());
                    }
                    // Re-arm with this bound's child token: a
                    // cancellation here must not outlive the bound.
                    s.set_cancel(race);
                    let outcome = s.check_bound(k);
                    (supported, outcome, s.cumulative_stats())
                }));
                match run {
                    Ok((supported, outcome, cum)) => {
                        cumulative = cum;
                        BoundReply {
                            idx,
                            supported,
                            outcome,
                            cumulative: cumulative.clone(),
                        }
                    }
                    Err(payload) => {
                        // The session may be mid-mutation: retire it
                        // but keep its last coherent stats.
                        let reason = engine_panic_reason(name, payload.as_ref());
                        panic_reason = Some(reason.clone());
                        session = None;
                        BoundReply {
                            idx,
                            supported: false,
                            outcome: BmcOutcome::unknown(reason, RunStats::default()),
                            cumulative: cumulative.clone(),
                        }
                    }
                }
            }
        };
        if tx.send(reply).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Budget, Session};
    use crate::jsat::JSat;
    use crate::qbf_enc::{QbfBackend, QbfLinear};
    use crate::unroll::UnrollSat;
    use sebmc_model::builders::token_ring;
    use std::time::{Duration, Instant};

    #[test]
    fn portfolio_runs_all_engines_and_agrees() {
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> = vec![
            Box::new(UnrollSat::default()),
            Box::new(JSat::default()),
            Box::new(QbfLinear::new(QbfBackend::Qdpll)),
        ];
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, Budget::none());
        assert_eq!(entries.len(), 3);
        for e in &entries {
            assert!(
                e.outcome.result.is_reachable() || e.outcome.result.is_unknown(),
                "{} disagrees: {}",
                e.engine,
                e.outcome.result
            );
        }
        let winner = first_decided(&entries).expect("someone decides");
        assert!(winner.outcome.result.is_reachable());
    }

    #[test]
    fn first_decided_skips_unknowns() {
        // The sleeper is listed first, gets cancelled by the winner,
        // and must be skipped by `first_decided`.
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(SlowEngine), Box::new(UnrollSat::default())];
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, Budget::none());
        assert!(entries[0].outcome.result.is_unknown());
        let w = first_decided(&entries).expect("unroll decides");
        assert_eq!(w.engine, "sat-unroll");
    }

    /// A deliberately slow engine: sleeps in short slices, polling the
    /// cancel token, for up to 10 s before answering Unreachable.
    struct SlowEngine;
    struct SlowSession {
        budget: Budget,
        started: Instant,
        total: RunStats,
    }

    impl Engine for SlowEngine {
        fn name(&self) -> &'static str {
            "slow"
        }
        fn start(&self, _model: &Model, _semantics: Semantics, budget: Budget) -> Box<dyn Session> {
            Box::new(SlowSession {
                budget,
                started: Instant::now(),
                total: RunStats::default(),
            })
        }
    }

    impl Session for SlowSession {
        fn name(&self) -> &'static str {
            "slow"
        }
        fn semantics(&self) -> Semantics {
            Semantics::Exactly
        }
        fn check_bound(&mut self, _k: usize) -> BmcOutcome {
            let call_start = Instant::now();
            let deadline = Instant::now() + Duration::from_secs(10);
            let result = loop {
                if Instant::now() >= deadline {
                    break BmcResult::Unreachable;
                }
                if self.budget.expired(self.started) {
                    break BmcResult::Unknown(self.budget.unknown_reason());
                }
                std::thread::sleep(Duration::from_millis(2));
            };
            let stats = RunStats {
                duration: call_start.elapsed(),
                bounds_checked: 1,
                ..RunStats::default()
            };
            self.total.absorb(&stats);
            BmcOutcome::new(result, stats)
        }
        fn set_cancel(&mut self, token: CancelToken) {
            self.budget.cancel = token;
        }
        fn cumulative_stats(&self) -> RunStats {
            self.total.clone()
        }
    }

    /// The acceptance check: with one fast decider and one 10 s
    /// sleeper, the portfolio must return in roughly the fast engine's
    /// time because the winner cancels the sleeper.
    #[test]
    fn winner_cancels_the_losers() {
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(UnrollSat::default()), Box::new(SlowEngine)];
        let start = Instant::now();
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, Budget::none());
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "portfolio took {elapsed:?}, cancellation failed"
        );
        assert!(entries[0].outcome.result.is_reachable());
        assert_eq!(
            entries[1].outcome.result,
            BmcResult::Unknown("cancelled".into())
        );
    }

    /// A cancelled loser's effort must stay visible: its cumulative
    /// stats ride along in the entry and in `portfolio_stats`.
    #[test]
    fn cancelled_losers_keep_their_partial_stats() {
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(UnrollSat::default()), Box::new(SlowEngine)];
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, Budget::none());
        let loser = &entries[1];
        assert!(loser.outcome.result.is_unknown());
        assert!(
            loser.cumulative.duration > Duration::ZERO,
            "the loser's burnt wall-clock must be accounted"
        );
        assert_eq!(loser.cumulative.bounds_checked, 1);
        let total = portfolio_stats(&entries);
        assert!(total.duration >= loser.cumulative.duration);
        assert_eq!(total.bounds_checked, 2, "both engines' checks counted");
    }

    /// The race must run on a child token: the caller's budget (and
    /// its clones) stay un-fired and reusable after a decided run.
    #[test]
    fn portfolio_does_not_poison_the_callers_budget() {
        let m = token_ring(3);
        let budget = Budget::none();
        for round in 0..2 {
            let engines: Vec<Box<dyn Engine + Send>> =
                vec![Box::new(UnrollSat::default()), Box::new(JSat::default())];
            let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, budget.clone());
            assert!(
                first_decided(&entries).is_some(),
                "round {round}: a decided verdict expected"
            );
            assert!(
                !budget.cancel.is_cancelled(),
                "round {round}: the caller's token must never be fired by the portfolio"
            );
        }
    }

    /// Firing the caller's token externally must still stop the whole
    /// portfolio (via the bridge into the race token).
    #[test]
    fn external_cancellation_stops_the_portfolio() {
        let m = token_ring(3);
        let budget = Budget::none();
        let token = budget.cancel_token();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        });
        let engines: Vec<Box<dyn Engine + Send>> = vec![Box::new(SlowEngine), Box::new(SlowEngine)];
        let start = Instant::now();
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, budget);
        let elapsed = start.elapsed();
        canceller.join().unwrap();
        assert!(
            elapsed < Duration::from_secs(5),
            "external cancel took {elapsed:?} to stop the portfolio"
        );
        for e in &entries {
            assert!(e.outcome.result.is_unknown(), "{}", e.engine);
        }
    }

    /// A panicking engine must surface as Unknown, not crash the run.
    struct PanicEngine;
    impl Engine for PanicEngine {
        fn name(&self) -> &'static str {
            "panicker"
        }
        fn start(
            &self,
            _model: &Model,
            _semantics: Semantics,
            _budget: Budget,
        ) -> Box<dyn Session> {
            panic!("intentional test panic");
        }
    }

    #[test]
    fn engine_panic_is_contained() {
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(PanicEngine), Box::new(UnrollSat::default())];
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, Budget::none());
        match &entries[0].outcome.result {
            BmcResult::Unknown(reason) => {
                assert!(
                    reason.starts_with("engine panicked:"),
                    "unexpected reason: {reason}"
                );
                // Attributable from JSON output: the reason names the
                // engine, not just the payload.
                assert!(reason.contains("panicker"), "no engine name in: {reason}");
                assert!(reason.contains("intentional test panic"));
            }
            other => panic!("expected Unknown, got {other}"),
        }
        assert!(entries[1].outcome.result.is_reachable());
        let w = first_decided(&entries).expect("unroll still decides");
        assert_eq!(w.engine, "sat-unroll");
    }

    #[test]
    fn panic_payload_is_truncated_for_reports() {
        let long = "x".repeat(500);
        let reason = engine_panic_reason("jsat", &long as &(dyn std::any::Any + Send));
        assert!(reason.starts_with("engine panicked: jsat: "));
        assert!(
            reason.len() < 160,
            "payload not truncated: {}",
            reason.len()
        );
        assert!(reason.ends_with('…'));
    }

    // ---- DeepeningPortfolio ----

    #[test]
    fn deepening_portfolio_shares_verdicts_per_bound() {
        let m = token_ring(4); // first reachable at bound 3
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(UnrollSat::default()), Box::new(JSat::default())];
        let mut p = DeepeningPortfolio::start(&m, Semantics::Exactly, engines, Budget::none());
        for k in 0..3 {
            let out = p.check_bound(k);
            assert!(out.supported);
            assert!(
                out.verdict().is_unreachable(),
                "bound {k}: {}",
                out.verdict()
            );
        }
        let out = p.check_bound(3);
        assert!(out.verdict().is_reachable());
        let w = out.winning_entry().expect("someone wins");
        assert!(!w.engine.is_empty());
        assert_eq!(p.bounds_raced(), 4);
        let total = p.cumulative_stats();
        assert!(total.bounds_checked >= 4, "all racing effort accounted");
    }

    /// The heart of per-bound racing: a loser cancelled at bound k must
    /// survive — solver state intact — and race again at bound k+1.
    #[test]
    fn cancelled_loser_survives_into_the_next_bound() {
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(UnrollSat::default()), Box::new(SlowEngine)];
        let mut p = DeepeningPortfolio::start(&m, Semantics::Exactly, engines, Budget::none());
        for k in [2usize, 2, 2] {
            let start = Instant::now();
            let out = p.check_bound(k);
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "per-bound race did not cancel the sleeper"
            );
            assert!(out.verdict().is_reachable());
            // The sleeper was cancelled *this bound* but its session is
            // still alive and replying (not a dead worker).
            assert_eq!(
                out.entries[1].outcome.result,
                BmcResult::Unknown("cancelled".into())
            );
        }
        // Three races -> the slow session accumulated three checks.
        let stats = p.engine_stats();
        assert_eq!(stats[1].0, "slow");
        assert_eq!(stats[1].1.bounds_checked, 3);
    }

    #[test]
    fn deepening_portfolio_reports_unsupported_bounds() {
        use crate::squaring::QbfSquaring;
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(QbfSquaring::new(QbfBackend::Expansion))];
        let mut p = DeepeningPortfolio::start(&m, Semantics::Within, engines, Budget::none());
        let out = p.check_bound(3); // not a power of two
        assert!(!out.supported);
        assert!(out.verdict().is_unknown());
        let out = p.check_bound(4);
        assert!(out.supported);
    }

    #[test]
    fn deepening_portfolio_contains_session_panics() {
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(PanicEngine), Box::new(UnrollSat::default())];
        let mut p = DeepeningPortfolio::start(&m, Semantics::Exactly, engines, Budget::none());
        for k in [2usize, 2] {
            let out = p.check_bound(k);
            assert!(out.verdict().is_reachable(), "unroll still decides");
            match &out.entries[0].outcome.result {
                BmcResult::Unknown(r) => assert!(r.starts_with("engine panicked:"), "{r}"),
                other => panic!("expected Unknown, got {other}"),
            }
        }
    }

    #[test]
    fn deepening_portfolio_external_cancel_aborts_the_bound() {
        let m = token_ring(3);
        let budget = Budget::none();
        let token = budget.cancel_token();
        let engines: Vec<Box<dyn Engine + Send>> = vec![Box::new(SlowEngine), Box::new(SlowEngine)];
        let mut p = DeepeningPortfolio::start(&m, Semantics::Exactly, engines, budget);
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        });
        let start = Instant::now();
        let out = p.check_bound(2);
        canceller.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "external cancel did not abort the raced bound"
        );
        assert!(out.verdict().is_unknown());
    }
}
