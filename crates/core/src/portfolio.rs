//! Parallel engine portfolio with first-winner cancellation.
//!
//! Runs several engines on the same instance in parallel OS threads.
//! All sessions race on one child [`CancelToken`](crate::CancelToken):
//! the moment any engine reaches a decided verdict it fires that
//! token, and the losers abort at their next safe point instead of
//! burning the rest of their budget — so the harness returns in
//! roughly the fastest engine's time. The caller's own token (in the
//! passed [`Budget`]) is only read, never fired, so the budget stays
//! reusable; an external cancellation still propagates into the race.
//! A panicking engine is caught and surfaced as
//! [`BmcResult::Unknown`] rather than taking the whole portfolio
//! down.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

use sebmc_model::Model;

use crate::engine::{BmcOutcome, BmcResult, Budget, Engine, RunStats, Semantics};

/// The outcome of one engine inside a portfolio run.
#[derive(Debug)]
pub struct PortfolioEntry {
    /// Engine name.
    pub engine: &'static str,
    /// The engine's outcome. Cancelled losers report
    /// `Unknown("cancelled")`; a panicking engine reports
    /// `Unknown("engine panicked: …")`.
    pub outcome: BmcOutcome,
}

/// Renders a panic payload (the argument of `panic!`) as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Runs every engine on `(model, k, semantics)` concurrently and
/// returns their outcomes in input order.
///
/// The race runs on a **child** token: the first engine to decide
/// fires it, cancelling the rest, while the caller's own
/// [`CancelToken`](crate::CancelToken) is only ever *read* (a bridge
/// propagates an external cancellation into the race), never fired —
/// so the passed `budget` stays usable for subsequent runs. Engines
/// that panic are reported as Unknown instead of propagating the
/// panic.
pub fn run_portfolio(
    model: &Model,
    k: usize,
    semantics: Semantics,
    engines: Vec<Box<dyn Engine + Send>>,
    budget: Budget,
) -> Vec<PortfolioEntry> {
    let caller = budget.cancel_token();
    let race = crate::engine::CancelToken::new();
    thread::scope(|s| {
        // Bridge: an external cancellation of the caller's budget must
        // still stop the race. Polled coarsely; the bridge exits as
        // soon as the race token fires (which the scope guarantees
        // below).
        {
            let race = race.clone();
            let caller = caller.clone();
            s.spawn(move || {
                while !race.is_cancelled() {
                    if caller.is_cancelled() {
                        race.cancel();
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            });
        }
        let handles: Vec<_> = engines
            .into_iter()
            .map(|engine| {
                let budget = budget.clone().with_cancel(race.clone());
                let race = race.clone();
                s.spawn(move || {
                    let name = Engine::name(engine.as_ref());
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        engine.start(model, semantics, budget).check_bound(k)
                    }));
                    let outcome = match run {
                        Ok(outcome) => {
                            if !outcome.result.is_unknown() {
                                // Decided: the rest of the portfolio can
                                // stop working on this instance.
                                race.cancel();
                            }
                            outcome
                        }
                        Err(payload) => BmcOutcome {
                            result: BmcResult::Unknown(format!(
                                "engine panicked: {}",
                                panic_message(payload.as_ref())
                            )),
                            stats: RunStats::default(),
                        },
                    };
                    PortfolioEntry {
                        engine: name,
                        outcome,
                    }
                })
            })
            .collect();
        let entries = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(entry) => entry,
                // The closure catches engine panics; a join error can
                // only come from a panic inside our own bookkeeping.
                Err(payload) => PortfolioEntry {
                    engine: "unknown",
                    outcome: BmcOutcome {
                        result: BmcResult::Unknown(format!(
                            "engine panicked: {}",
                            panic_message(payload.as_ref())
                        )),
                        stats: RunStats::default(),
                    },
                },
            })
            .collect();
        // Release the bridge thread (idempotent if a winner already
        // fired the race token).
        race.cancel();
        entries
    })
}

/// Returns the first decided (non-Unknown) outcome of a portfolio run,
/// if any, together with the engine that produced it.
pub fn first_decided(entries: &[PortfolioEntry]) -> Option<&PortfolioEntry> {
    entries.iter().find(|e| !e.outcome.result.is_unknown())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Budget, Session};
    use crate::jsat::JSat;
    use crate::qbf_enc::{QbfBackend, QbfLinear};
    use crate::unroll::UnrollSat;
    use sebmc_model::builders::token_ring;
    use std::time::{Duration, Instant};

    #[test]
    fn portfolio_runs_all_engines_and_agrees() {
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> = vec![
            Box::new(UnrollSat::default()),
            Box::new(JSat::default()),
            Box::new(QbfLinear::new(QbfBackend::Qdpll)),
        ];
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, Budget::none());
        assert_eq!(entries.len(), 3);
        for e in &entries {
            assert!(
                e.outcome.result.is_reachable() || e.outcome.result.is_unknown(),
                "{} disagrees: {}",
                e.engine,
                e.outcome.result
            );
        }
        let winner = first_decided(&entries).expect("someone decides");
        assert!(winner.outcome.result.is_reachable());
    }

    #[test]
    fn first_decided_skips_unknowns() {
        // The sleeper is listed first, gets cancelled by the winner,
        // and must be skipped by `first_decided`.
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(SlowEngine), Box::new(UnrollSat::default())];
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, Budget::none());
        assert!(entries[0].outcome.result.is_unknown());
        let w = first_decided(&entries).expect("unroll decides");
        assert_eq!(w.engine, "sat-unroll");
    }

    /// A deliberately slow engine: sleeps in short slices, polling the
    /// cancel token, for up to 10 s before answering Unreachable.
    struct SlowEngine;
    struct SlowSession {
        budget: Budget,
        started: Instant,
    }

    impl Engine for SlowEngine {
        fn name(&self) -> &'static str {
            "slow"
        }
        fn start(&self, _model: &Model, _semantics: Semantics, budget: Budget) -> Box<dyn Session> {
            Box::new(SlowSession {
                budget,
                started: Instant::now(),
            })
        }
    }

    impl Session for SlowSession {
        fn name(&self) -> &'static str {
            "slow"
        }
        fn semantics(&self) -> Semantics {
            Semantics::Exactly
        }
        fn check_bound(&mut self, _k: usize) -> BmcOutcome {
            let deadline = Instant::now() + Duration::from_secs(10);
            while Instant::now() < deadline {
                if self.budget.expired(self.started) {
                    return BmcOutcome::unknown(self.budget.unknown_reason(), RunStats::default());
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            BmcOutcome {
                result: BmcResult::Unreachable,
                stats: RunStats::default(),
            }
        }
        fn cumulative_stats(&self) -> RunStats {
            RunStats::default()
        }
    }

    /// The acceptance check: with one fast decider and one 10 s
    /// sleeper, the portfolio must return in roughly the fast engine's
    /// time because the winner cancels the sleeper.
    #[test]
    fn winner_cancels_the_losers() {
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(UnrollSat::default()), Box::new(SlowEngine)];
        let start = Instant::now();
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, Budget::none());
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "portfolio took {elapsed:?}, cancellation failed"
        );
        assert!(entries[0].outcome.result.is_reachable());
        assert_eq!(
            entries[1].outcome.result,
            BmcResult::Unknown("cancelled".into())
        );
    }

    /// The race must run on a child token: the caller's budget (and
    /// its clones) stay un-fired and reusable after a decided run.
    #[test]
    fn portfolio_does_not_poison_the_callers_budget() {
        let m = token_ring(3);
        let budget = Budget::none();
        for round in 0..2 {
            let engines: Vec<Box<dyn Engine + Send>> =
                vec![Box::new(UnrollSat::default()), Box::new(JSat::default())];
            let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, budget.clone());
            assert!(
                first_decided(&entries).is_some(),
                "round {round}: a decided verdict expected"
            );
            assert!(
                !budget.cancel.is_cancelled(),
                "round {round}: the caller's token must never be fired by the portfolio"
            );
        }
    }

    /// Firing the caller's token externally must still stop the whole
    /// portfolio (via the bridge into the race token).
    #[test]
    fn external_cancellation_stops_the_portfolio() {
        let m = token_ring(3);
        let budget = Budget::none();
        let token = budget.cancel_token();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        });
        let engines: Vec<Box<dyn Engine + Send>> = vec![Box::new(SlowEngine), Box::new(SlowEngine)];
        let start = Instant::now();
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, budget);
        let elapsed = start.elapsed();
        canceller.join().unwrap();
        assert!(
            elapsed < Duration::from_secs(5),
            "external cancel took {elapsed:?} to stop the portfolio"
        );
        for e in &entries {
            assert!(e.outcome.result.is_unknown(), "{}", e.engine);
        }
    }

    /// A panicking engine must surface as Unknown, not crash the run.
    struct PanicEngine;
    impl Engine for PanicEngine {
        fn name(&self) -> &'static str {
            "panicker"
        }
        fn start(
            &self,
            _model: &Model,
            _semantics: Semantics,
            _budget: Budget,
        ) -> Box<dyn Session> {
            panic!("intentional test panic");
        }
    }

    #[test]
    fn engine_panic_is_contained() {
        let m = token_ring(3);
        let engines: Vec<Box<dyn Engine + Send>> =
            vec![Box::new(PanicEngine), Box::new(UnrollSat::default())];
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines, Budget::none());
        match &entries[0].outcome.result {
            BmcResult::Unknown(reason) => {
                assert!(
                    reason.starts_with("engine panicked:"),
                    "unexpected reason: {reason}"
                );
                assert!(reason.contains("intentional test panic"));
            }
            other => panic!("expected Unknown, got {other}"),
        }
        assert!(entries[1].outcome.result.is_reachable());
        let w = first_decided(&entries).expect("unroll still decides");
        assert_eq!(w.engine, "sat-unroll");
    }
}
