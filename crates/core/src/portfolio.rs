//! Parallel engine portfolio.
//!
//! Runs several bounded checkers on the same instance in parallel OS
//! threads (each with its own budgets) and reports every outcome. The
//! harness uses it to cross-check engines; callers wanting a single
//! verdict take the first decided one.

use std::thread;

use sebmc_model::Model;

use crate::engine::{BmcOutcome, BoundedChecker, Semantics};

/// The outcome of one engine inside a portfolio run.
#[derive(Debug)]
pub struct PortfolioEntry {
    /// Engine name.
    pub engine: &'static str,
    /// The engine's outcome.
    pub outcome: BmcOutcome,
}

/// Runs every engine on `(model, k, semantics)` concurrently and
/// returns their outcomes in input order.
///
/// # Panics
///
/// Panics if an engine thread panics.
pub fn run_portfolio(
    model: &Model,
    k: usize,
    semantics: Semantics,
    engines: Vec<Box<dyn BoundedChecker + Send>>,
) -> Vec<PortfolioEntry> {
    thread::scope(|s| {
        let handles: Vec<_> = engines
            .into_iter()
            .map(|mut engine| {
                s.spawn(move || {
                    let name = engine.name();
                    let outcome = engine.check(model, k, semantics);
                    PortfolioEntry {
                        engine: name,
                        outcome,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("portfolio engine panicked"))
            .collect()
    })
}

/// Returns the first decided (non-Unknown) outcome of a portfolio run,
/// if any, together with the engine that produced it.
pub fn first_decided(entries: &[PortfolioEntry]) -> Option<&PortfolioEntry> {
    entries.iter().find(|e| !e.outcome.result.is_unknown())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineLimits;
    use crate::jsat::JSat;
    use crate::qbf_enc::{QbfBackend, QbfLinear};
    use crate::unroll::UnrollSat;
    use sebmc_model::builders::token_ring;
    use std::time::Duration;

    #[test]
    fn portfolio_runs_all_engines_and_agrees() {
        let m = token_ring(3);
        let engines: Vec<Box<dyn BoundedChecker + Send>> = vec![
            Box::new(UnrollSat::default()),
            Box::new(JSat::default()),
            Box::new(QbfLinear::new(QbfBackend::Qdpll)),
        ];
        let entries = run_portfolio(&m, 2, Semantics::Exactly, engines);
        assert_eq!(entries.len(), 3);
        for e in &entries {
            assert!(
                e.outcome.result.is_reachable(),
                "{} disagrees: {}",
                e.engine,
                e.outcome.result
            );
        }
        let winner = first_decided(&entries).expect("someone decides");
        assert!(!winner.outcome.result.is_unknown());
    }

    #[test]
    fn first_decided_skips_unknowns() {
        let m = sebmc_model::builders::random_fsm(16, 2, 9);
        let engines: Vec<Box<dyn BoundedChecker + Send>> = vec![
            // Hopeless budget: always Unknown.
            Box::new(QbfLinear::with_limits(
                QbfBackend::Qdpll,
                EngineLimits::with_timeout(Duration::from_nanos(1)),
            )),
            Box::new(UnrollSat::default()),
        ];
        let entries = run_portfolio(&m, 3, Semantics::Within, engines);
        assert!(entries[0].outcome.result.is_unknown());
        let w = first_decided(&entries).expect("unroll decides");
        assert_eq!(w.engine, "sat-unroll");
    }
}
