//! Static model reduction applied transparently at
//! [`Engine::start`](crate::engine::Engine::start).
//!
//! Every engine routes its `start` through
//! [`start_with_reduction`]: when [`Budget::reduce`] is on and the
//! [`sebmc_analysis`] pipeline finds something to remove, the inner
//! session is opened on the *reduced* model and wrapped in a
//! [`LiftingSession`] that
//!
//! * lifts every witness trace back to the original variable order
//!   (via [`sebmc_analysis::Reconstruction::lift_trace`]) and
//!   re-validates it with [`Model::check_trace`] against the
//!   **original** model — a failed lift degrades the verdict to
//!   `Unknown` rather than ever reporting an unsound `Reachable`;
//! * stamps the reduction counters (`latches_swept`, `coi_latches`,
//!   `inputs_removed`) into every outcome's stats and into
//!   [`Session::cumulative_stats`].
//!
//! `Unreachable` verdicts transfer without adjustment: the swept set
//! is simultaneously inductive and removed latches neither influence
//! the target cone nor constrain the kept initial states (see the
//! soundness notes in the `sebmc-analysis` crate docs), so the
//! reachable-state projections of the reduced and original models
//! coincide — bounded reachability, `Within`/`Exactly` semantics, and
//! k-induction conclusions all carry over.
//!
//! The inner budget always runs with `reduce = false` so a session
//! opened on the already-reduced model never re-enters the analysis.

use sebmc_analysis::Reduction;
use sebmc_model::Model;

use crate::engine::{BmcOutcome, BmcResult, Budget, CancelToken, RunStats, Semantics, Session};

/// Opens a session with static reduction applied when
/// [`Budget::reduce`] asks for it.
///
/// `open` is the engine's raw session constructor; it receives the
/// (possibly reduced) model and a budget whose `reduce` flag is
/// cleared.
pub fn start_with_reduction(
    model: &Model,
    semantics: Semantics,
    budget: Budget,
    open: impl FnOnce(&Model, Semantics, Budget) -> Box<dyn Session>,
) -> Box<dyn Session> {
    if !budget.reduce {
        return open(model, semantics, budget);
    }
    let mut inner_budget = budget;
    inner_budget.reduce = false;
    match sebmc_analysis::reduce(model) {
        Some(reduction) => {
            let inner = open(&reduction.model, semantics, inner_budget);
            Box::new(LiftingSession::new(inner, reduction))
        }
        None => open(model, semantics, inner_budget),
    }
}

/// A session wrapper that runs on a reduced model and lifts results
/// back to the original one.
pub struct LiftingSession {
    inner: Box<dyn Session>,
    reduction: Reduction,
}

impl LiftingSession {
    /// Wraps `inner` (a session on `reduction.model`) so its verdicts
    /// and witnesses speak about the original model.
    pub fn new(inner: Box<dyn Session>, reduction: Reduction) -> Self {
        LiftingSession { inner, reduction }
    }

    /// The reduction this session runs under.
    pub fn reduction(&self) -> &Reduction {
        &self.reduction
    }

    fn stamp(&self, stats: &mut RunStats) {
        stats.latches_swept = self.reduction.analysis.latches_swept();
        stats.coi_latches = self.reduction.analysis.coi_latches;
        stats.inputs_removed = self.reduction.analysis.inputs_removed();
    }
}

impl Session for LiftingSession {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn semantics(&self) -> Semantics {
        self.inner.semantics()
    }

    fn check_bound(&mut self, k: usize) -> BmcOutcome {
        let mut outcome = self.inner.check_bound(k);
        self.stamp(&mut outcome.stats);
        if let BmcResult::Reachable(Some(reduced_trace)) = &outcome.result {
            match self.reduction.recon.lift_trace(reduced_trace) {
                Ok(lifted) => match self.reduction.recon.original().check_trace(&lifted) {
                    Ok(()) => outcome.result = BmcResult::Reachable(Some(lifted)),
                    Err(why) => {
                        // Never surface a witness the original model
                        // rejects: degrade instead of mislead.
                        outcome.result =
                            BmcResult::Unknown(format!("reduction lift failed: {why}"));
                        outcome.certificate = None;
                    }
                },
                Err(why) => {
                    outcome.result = BmcResult::Unknown(format!("reduction lift failed: {why}"));
                    outcome.certificate = None;
                }
            }
        }
        outcome
    }

    fn supports_bound(&self, k: usize) -> bool {
        self.inner.supports_bound(k)
    }

    fn set_cancel(&mut self, token: CancelToken) {
        self.inner.set_cancel(token);
    }

    fn cumulative_stats(&self) -> RunStats {
        let mut stats = self.inner.cumulative_stats();
        self.stamp(&mut stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, JSat, UnrollSat};
    use sebmc_model::builders;

    #[test]
    fn reduced_session_lifts_witnesses_to_the_original_model() {
        let model = builders::round_robin_arbiter(4);
        let engine = UnrollSat::default();
        let mut session = engine.start(&model, Semantics::Within, Budget::none());
        // Deepen until the grant fires; the witness must have the
        // *original* widths and pass the original checker.
        let mut found = None;
        for k in 0..8 {
            let out = session.check_bound(k);
            assert!(
                out.stats.coi_latches > 0 && out.stats.coi_latches < model.num_state_vars(),
                "arbiter reduces, so the counters must be stamped"
            );
            if let BmcResult::Reachable(Some(t)) = out.result {
                found = Some(t);
                break;
            }
        }
        let trace = found.expect("arbiter grant is reachable");
        assert_eq!(trace.states[0].len(), model.num_state_vars());
        assert_eq!(trace.inputs.first().map(Vec::len), Some(model.num_inputs()));
        model.check_trace(&trace).expect("lifted witness validates");
    }

    #[test]
    fn no_reduce_budget_bypasses_the_analysis() {
        let model = builders::round_robin_arbiter(4);
        let engine = JSat::default();
        let budget = Budget {
            reduce: false,
            ..Budget::default()
        };
        let mut session = engine.start(&model, Semantics::Within, budget);
        let out = session.check_bound(2);
        assert_eq!(out.stats.coi_latches, 0, "no reduction, no counters");
        assert_eq!(out.stats.latches_swept, 0);
    }

    #[test]
    fn irreducible_model_keeps_zero_counters() {
        let model = builders::counter_with_reset(4);
        let engine = UnrollSat::default();
        let mut session = engine.start(&model, Semantics::Within, Budget::none());
        let out = session.check_bound(3);
        assert_eq!(out.stats.coi_latches, 0);
        assert_eq!(out.stats.latches_swept, 0);
        assert_eq!(out.stats.inputs_removed, 0);
    }

    #[test]
    fn verdicts_agree_with_unreduced_oracle_on_reducible_models() {
        for model in [builders::round_robin_arbiter(4), builders::fifo(3)] {
            for k in 0..6 {
                let reduced = UnrollSat::default()
                    .start(&model, Semantics::Within, Budget::none())
                    .check_bound(k);
                let oracle = UnrollSat::default()
                    .start(
                        &model,
                        Semantics::Within,
                        Budget {
                            reduce: false,
                            ..Budget::default()
                        },
                    )
                    .check_bound(k);
                assert!(
                    reduced.result.agrees_with(&oracle.result),
                    "{} k={k}: {:?} vs {:?}",
                    model.name(),
                    reduced.result,
                    oracle.result
                );
                assert!(
                    !reduced.result.is_unknown() && !oracle.result.is_unknown(),
                    "both sides must decide"
                );
            }
        }
    }
}
