//! Incremental unrolling: one solver, growing bound — the
//! [`Session`] behind [`UnrollSat`](crate::UnrollSat).
//!
//! The classical BMC loop re-encodes the whole unrolled formula at
//! every bound. With an incremental SAT solver the transition frames
//! can be *added* instead — only the target constraint moves, which is
//! handled with one activation literal per bound (assumed for the
//! bound being checked, retired afterwards). Learnt clauses survive
//! across bounds, which is where the speedup comes from.
//!
//! This is the engine a 2005 bounded model checker would actually run
//! in its deepening loop;
//! [`find_shortest_witness`](crate::incremental::find_shortest_witness)
//! drives it (or any other session) bound by bound.

use std::time::Instant;

use sebmc_logic::{tseitin, Cnf, Lit, VarAlloc};
use sebmc_model::{Model, Trace};
use sebmc_proof::Certificate;
use sebmc_sat::{SolveResult, Solver};

use crate::engine::{BmcOutcome, BmcResult, Budget, RunStats, Semantics, Session};

/// An incremental unrolled-BMC session over one model.
///
/// Frames are appended on demand and never re-encoded; bounds may be
/// checked in any order and each query reuses every clause (and learnt
/// clause) from previous queries. The session's [`Budget`] wall clock
/// starts at construction and covers every `check_bound` call.
///
/// ```
/// use sebmc::inc_unroll::IncrementalUnroll;
/// use sebmc::Semantics;
/// use sebmc_model::builders::shift_register;
///
/// let model = shift_register(4);
/// let mut session = IncrementalUnroll::new(&model, Semantics::Exactly);
/// assert!(session.check_bound(3).result.is_unreachable());
/// assert!(session.check_bound(4).result.is_reachable());
/// ```
#[derive(Debug)]
pub struct IncrementalUnroll {
    model: Model,
    semantics: Semantics,
    solver: Solver,
    alloc: VarAlloc,
    state_lits: Vec<Vec<Lit>>,
    input_lits: Vec<Vec<Lit>>,
    /// `target_act[k]` activates "F holds at frame k".
    target_act: Vec<Lit>,
    /// Per-frame target literal (for Within witness truncation).
    target_lits: Vec<Lit>,
    budget: Budget,
    started: Instant,
    /// Problem clauses/literals encoded so far (the formula the session
    /// holds in memory — grows by one TR copy per frame).
    encoded_clauses: usize,
    encoded_lits: usize,
    total: RunStats,
}

impl IncrementalUnroll {
    /// Starts an unbudgeted session for `model` under `semantics`.
    pub fn new(model: &Model, semantics: Semantics) -> Self {
        Self::with_budget(model, semantics, Budget::none())
    }

    /// Starts a session whose budget covers all subsequent bounds.
    ///
    /// Under [`Budget::certify`] the solver streams a binary-DRAT
    /// proof through the bounded on-the-fly checker from the very
    /// first clause; every Unsat bound is then finalized via the
    /// failed-assumption core of its per-bound activation literal and
    /// matched against the proof, and every Sat bound's witness is
    /// replayed through [`Model::check_trace`].
    pub fn with_budget(model: &Model, semantics: Semantics, budget: Budget) -> Self {
        let mut solver = Solver::new();
        if let Some(sink) = budget.proof_sink() {
            solver.set_proof_sink(sink);
        }
        let mut s = IncrementalUnroll {
            model: model.clone(),
            semantics,
            solver,
            alloc: VarAlloc::new(),
            state_lits: Vec::new(),
            input_lits: Vec::new(),
            target_act: Vec::new(),
            target_lits: Vec::new(),
            budget,
            started: Instant::now(),
            encoded_clauses: 0,
            encoded_lits: 0,
            total: RunStats::default(),
        };
        // Frame 0: state variables + I(Z0) + F-at-0 activation.
        let n = s.model.num_state_vars();
        let frame0 = s.alloc.fresh_lits(n);
        s.state_lits.push(frame0);
        let mut cnf = Cnf::new();
        let map = s.frame_map(0, None);
        let mut enc = tseitin::Encoder::new(s.model.aig(), &map);
        let init_root = enc.encode_ref(s.model.init_ref(), &mut s.alloc, &mut cnf);
        cnf.add_unit(init_root);
        let f0 = enc.encode_ref(s.model.target_ref(), &mut s.alloc, &mut cnf);
        let act0 = s.alloc.fresh_lit();
        cnf.add_binary(!act0, f0);
        s.target_act.push(act0);
        s.target_lits.push(f0);
        cnf.ensure_vars(s.alloc.num_vars());
        s.encoded_clauses += cnf.num_clauses();
        s.encoded_lits += cnf.num_literals();
        s.solver.add_cnf(&cnf);
        s
    }

    /// Number of frames currently encoded (`highest bound + 1`).
    pub fn encoded_frames(&self) -> usize {
        self.state_lits.len()
    }

    /// Live-literal count of the underlying solver (the space proxy).
    pub fn live_lits(&self) -> usize {
        self.solver.stats().live_lits
    }

    /// Exact live clause-database bytes of the underlying solver
    /// (arena words × 4, headers included).
    pub fn live_bytes(&self) -> usize {
        self.solver.stats().live_bytes()
    }

    fn frame_map(&self, t: usize, inputs: Option<usize>) -> Vec<Lit> {
        let dummy = self.state_lits[t][0];
        let mut map = vec![dummy; self.model.aig().num_inputs()];
        for (i, &idx) in self.model.state_input_indices().iter().enumerate() {
            map[idx] = self.state_lits[t][i];
        }
        if let Some(step) = inputs {
            for (j, &idx) in self.model.free_input_indices().iter().enumerate() {
                map[idx] = self.input_lits[step][j];
            }
        }
        map
    }

    /// Appends one transition frame.
    fn extend(&mut self) {
        let t = self.state_lits.len() - 1;
        let n = self.model.num_state_vars();
        let m = self.model.num_inputs();
        self.input_lits.push(self.alloc.fresh_lits(m));
        let next_frame = self.alloc.fresh_lits(n);
        self.state_lits.push(next_frame);
        let mut cnf = Cnf::new();
        let map = self.frame_map(t, Some(t));
        let mut enc = tseitin::Encoder::new(self.model.aig(), &map);
        let next_roots = enc.encode_roots(self.model.next_refs(), &mut self.alloc, &mut cnf);
        for (i, &nl) in next_roots.iter().enumerate() {
            cnf.add_equiv(nl, self.state_lits[t + 1][i]);
        }
        for &c in self.model.constraint_refs() {
            let cl = enc.encode_ref(c, &mut self.alloc, &mut cnf);
            cnf.add_unit(cl);
        }
        // F at the new frame, guarded.
        let map_new = self.frame_map(t + 1, None);
        let mut enc_new = tseitin::Encoder::new(self.model.aig(), &map_new);
        let f = enc_new.encode_ref(self.model.target_ref(), &mut self.alloc, &mut cnf);
        let act = self.alloc.fresh_lit();
        cnf.add_binary(!act, f);
        self.target_act.push(act);
        self.target_lits.push(f);
        cnf.ensure_vars(self.alloc.num_vars());
        self.encoded_clauses += cnf.num_clauses();
        self.encoded_lits += cnf.num_literals();
        self.solver.add_cnf(&cnf);
    }

    /// Checks the given bound, extending the encoding as needed.
    pub fn check_bound(&mut self, k: usize) -> BmcOutcome {
        let call_start = Instant::now();
        let conflicts_before = self.solver.stats().conflicts;
        let cert_before = if self.budget.certify {
            self.solver.proof_summary()
        } else {
            None
        };
        let (result, bound_certified) = self.check_bound_inner(k);
        let stats = RunStats {
            duration: call_start.elapsed(),
            encode_vars: self.alloc.num_vars(),
            encode_clauses: self.encoded_clauses,
            encode_lits: self.encoded_lits,
            peak_formula_lits: self.solver.stats().peak_live_lits,
            peak_formula_bytes: self.solver.stats().peak_bytes(),
            peak_watch_bytes: self.solver.stats().peak_watch_bytes,
            peak_proof_bytes: self.solver.stats().peak_proof_bytes,
            solver_effort: self.solver.stats().conflicts - conflicts_before,
            bounds_checked: 1,
            ..RunStats::default()
        };
        self.total.absorb(&stats);
        let certificate = self.bound_certificate(cert_before, bound_certified);
        BmcOutcome {
            result,
            stats,
            certificate,
        }
    }

    /// The per-bound certificate: checker counters accumulated during
    /// this call, plus whether this bound's verdict was covered.
    fn bound_certificate(
        &mut self,
        before: Option<Certificate>,
        bound_certified: Option<bool>,
    ) -> Option<Certificate> {
        if !self.budget.certify {
            return None;
        }
        let now = self.solver.proof_summary().unwrap_or_default();
        let mut cert = match before {
            Some(b) => now.delta_since(&b),
            None => now,
        };
        if let Some(ok) = bound_certified {
            cert.bounds_attempted = 1;
            cert.bounds_certified = u64::from(ok);
        }
        Some(cert)
    }

    fn check_bound_inner(&mut self, k: usize) -> (BmcResult, Option<bool>) {
        self.budget.progress.on_bound("unroll", k);
        if self.budget.fault_hit_engine() == sebmc_logic::fault::FaultVerdict::Oom {
            return (BmcResult::Unknown("budget exhausted".into()), None);
        }
        if self.budget.expired(self.started) {
            return (BmcResult::Unknown(self.budget.unknown_reason()), None);
        }
        while self.state_lits.len() <= k {
            // Enforce the byte cap (and deadline/cancellation) while
            // *encoding*, not just at solver safe points — a huge bound
            // must not blow past the budget before the first solve.
            if self.budget.expired(self.started)
                || self
                    .budget
                    .max_formula_bytes
                    .is_some_and(|cap| self.solver.stats().live_bytes() >= cap)
            {
                return (BmcResult::Unknown(self.budget.unknown_reason()), None);
            }
            self.extend();
        }
        self.solver.set_limits(self.budget.sat_limits(self.started));
        // Assumptions: F at frame k (exact) or F somewhere ≤ k (within,
        // via an OR over activation literals — expressed by assuming a
        // fresh selector that implies the disjunction). The assumption
        // literal doubles as the proof-level assumption an Unsat
        // verdict is finalized against.
        let (result, cert_assumption) = match self.semantics {
            Semantics::Exactly => (
                self.solver.solve_with(&[self.target_act[k]]),
                self.target_act[k],
            ),
            Semantics::Within => {
                // selector → (act0 ∨ … ∨ actk) is wrong (acts are
                // guards); instead: selector → (f0 ∨ … ∨ fk).
                let sel = self.alloc.fresh_lit();
                self.solver.ensure_vars(self.alloc.num_vars());
                let mut clause = vec![!sel];
                clause.extend(self.target_lits.iter().take(k + 1).copied());
                self.solver.add_clause(clause);
                let r = self.solver.solve_with(&[sel]);
                // Retire the selector so later bounds are unaffected
                // (the finalization lemma of the solve survives this).
                self.solver.add_clause([!sel]);
                (r, sel)
            }
        };
        match result {
            SolveResult::Sat => {
                let value = |l: Lit| self.solver.lit_value_model(l).unwrap_or(false);
                let mut trace = Trace {
                    states: self.state_lits[..=k]
                        .iter()
                        .map(|f| f.iter().map(|&l| value(l)).collect())
                        .collect(),
                    inputs: self.input_lits[..k]
                        .iter()
                        .map(|f| f.iter().map(|&l| value(l)).collect())
                        .collect(),
                };
                if self.semantics == Semantics::Within {
                    if let Some(t) = trace.states.iter().position(|s| self.model.eval_target(s)) {
                        trace.states.truncate(t + 1);
                        trace.inputs.truncate(t);
                    }
                }
                debug_assert_eq!(self.model.check_trace(&trace), Ok(()));
                let certified = self
                    .budget
                    .certify
                    .then(|| self.model.check_trace(&trace).is_ok());
                (BmcResult::Reachable(Some(trace)), certified)
            }
            SolveResult::Unsat => {
                let certified = self
                    .budget
                    .certify
                    .then(|| self.solver.proof_certifies(&[cert_assumption]));
                (BmcResult::Unreachable, certified)
            }
            SolveResult::Unknown => (BmcResult::Unknown(self.budget.unknown_reason()), None),
        }
    }
}

impl Session for IncrementalUnroll {
    fn name(&self) -> &'static str {
        "sat-unroll"
    }

    fn semantics(&self) -> Semantics {
        self.semantics
    }

    fn check_bound(&mut self, k: usize) -> BmcOutcome {
        IncrementalUnroll::check_bound(self, k)
    }

    fn set_cancel(&mut self, token: crate::engine::CancelToken) {
        self.budget.cancel = token;
    }

    fn cumulative_stats(&self) -> RunStats {
        self.total.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CancelToken;
    use sebmc_model::builders::{counter_with_reset, lfsr, shift_register, traffic_light};
    use sebmc_model::explicit;

    #[test]
    fn matches_oracle_across_increasing_bounds() {
        let model = counter_with_reset(3);
        let mut session = IncrementalUnroll::new(&model, Semantics::Exactly);
        for k in 0..10 {
            let got = session.check_bound(k).result;
            let expect = explicit::reachable_in_exactly(&model, k);
            assert_eq!(got.is_reachable(), expect, "bound {k}");
            if let Some(t) = got.witness() {
                assert_eq!(model.check_trace(t), Ok(()));
                assert_eq!(t.len(), k);
            }
        }
    }

    #[test]
    fn within_semantics_matches_oracle() {
        let model = lfsr(4, 6);
        let mut session = IncrementalUnroll::new(&model, Semantics::Within);
        for k in 0..10 {
            let got = session.check_bound(k).result;
            assert_eq!(
                got.is_reachable(),
                explicit::reachable_within(&model, k),
                "bound {k}"
            );
        }
    }

    #[test]
    fn frames_are_reused_not_reencoded() {
        let model = shift_register(6);
        let mut session = IncrementalUnroll::new(&model, Semantics::Exactly);
        session.check_bound(4);
        let frames_after_4 = session.encoded_frames();
        let lits_after_4 = session.cumulative_stats().encode_lits;
        session.check_bound(2); // lower bound: no new frames
        assert_eq!(session.encoded_frames(), frames_after_4);
        assert_eq!(session.cumulative_stats().encode_lits, lits_after_4);
        session.check_bound(8);
        assert_eq!(session.encoded_frames(), 9);
    }

    #[test]
    fn unsat_family_stays_unreachable_incrementally() {
        let model = traffic_light();
        let mut session = IncrementalUnroll::new(&model, Semantics::Within);
        for k in 0..8 {
            assert!(session.check_bound(k).result.is_unreachable(), "bound {k}");
        }
    }

    #[test]
    fn bounds_can_be_revisited() {
        let model = shift_register(4);
        let mut session = IncrementalUnroll::new(&model, Semantics::Exactly);
        assert!(session.check_bound(4).result.is_reachable());
        assert!(session.check_bound(3).result.is_unreachable());
        assert!(
            session.check_bound(4).result.is_reachable(),
            "re-query works"
        );
    }

    #[test]
    fn live_lits_grow_linearly_with_frames() {
        let model = counter_with_reset(4);
        let mut session = IncrementalUnroll::new(&model, Semantics::Exactly);
        session.check_bound(4);
        let l4 = session.live_lits();
        session.check_bound(8);
        let l8 = session.live_lits();
        assert!(l8 > l4, "more frames, more clauses");
    }

    #[test]
    fn cumulative_stats_aggregate_across_bounds() {
        let model = counter_with_reset(3);
        let mut session = IncrementalUnroll::new(&model, Semantics::Exactly);
        let mut effort = 0;
        for k in 0..6 {
            effort += session.check_bound(k).stats.solver_effort;
        }
        let total = session.cumulative_stats();
        assert_eq!(total.bounds_checked, 6);
        assert_eq!(total.solver_effort, effort);
        assert!(total.encode_lits > 0);
        assert!(
            total.peak_watch_bytes > 0,
            "watch-storage bytes join the session accounting"
        );
    }

    #[test]
    fn byte_cap_limits_encoding_not_just_solving() {
        // A huge bound must hit the memory cap while *encoding* frames,
        // not allocate them all first.
        let model = counter_with_reset(4);
        let mut session = IncrementalUnroll::with_budget(
            &model,
            Semantics::Exactly,
            Budget::with_memory_bytes(4096),
        );
        let out = session.check_bound(100_000);
        assert!(out.result.is_unknown(), "got {}", out.result);
        assert!(
            session.live_bytes() < 64 * 1024,
            "encoding stopped near the cap, held {} B",
            session.live_bytes()
        );
    }

    /// Under a certify budget, every decided bound must come back with
    /// a fully-certified certificate: Unsat bounds proof-checked via
    /// the per-bound activation assumption, Sat bounds replayed.
    #[test]
    fn certified_session_covers_both_polarities() {
        for semantics in [Semantics::Exactly, Semantics::Within] {
            let model = counter_with_reset(3);
            let mut session = IncrementalUnroll::with_budget(
                &model,
                semantics,
                Budget::none().with_certify(true),
            );
            for k in 0..=8 {
                let out = session.check_bound(k);
                assert!(!out.result.is_unknown());
                let cert = out.certificate.as_ref().expect("certificate attached");
                assert!(cert.fully_certified(), "bound {k} ({semantics}): {cert:?}");
                if out.result.is_unreachable() {
                    assert!(cert.unsat_proofs > 0, "Unsat bound finalized a core");
                }
                assert!(out.stats.peak_proof_bytes > 0, "proof bytes accounted");
            }
            let total = session.cumulative_stats();
            assert!(total.peak_proof_bytes > 0);
        }
    }

    /// Without the certify flag nothing is attached and no proof bytes
    /// accrue — logging off is really off.
    #[test]
    fn uncertified_session_attaches_nothing() {
        let model = counter_with_reset(3);
        let mut session = IncrementalUnroll::new(&model, Semantics::Exactly);
        let out = session.check_bound(3);
        assert!(out.certificate.is_none());
        assert_eq!(out.stats.peak_proof_bytes, 0);
    }

    #[test]
    fn fired_token_stops_the_session() {
        let model = shift_register(8);
        let token = CancelToken::new();
        let mut session = IncrementalUnroll::with_budget(
            &model,
            Semantics::Exactly,
            Budget::none().with_cancel(token.clone()),
        );
        assert!(session.check_bound(3).result.is_unreachable());
        token.cancel();
        let out = session.check_bound(8);
        assert_eq!(out.result, BmcResult::Unknown("cancelled".into()));
    }
}
