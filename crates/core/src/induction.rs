//! k-induction — the paper's §1 "alternative technique".
//!
//! The paper notes that induction-based methods can prove a bound
//! sufficient for a *complete* proof, "but there are still many cases
//! where the induction depth is exponential in the size of the model".
//! This module implements the standard strengthened k-induction
//! (Sheeran–Singh–Stålmarck) on top of the unrolled encoder, both to
//! complete the engine line-up and to demonstrate that observation
//! (see the `induction_depth` tests: the counter needs depth `2^w`).
//!
//! * **Base(k)**: a path from an initial state reaches `F` within `k`
//!   steps — counterexample.
//! * **Step(k)**: a *simple* (pairwise-distinct) path `s₀ … s_k` with
//!   `¬F(s₀..s_{k-1})` and `F(s_k)`, started anywhere. If this is
//!   unsatisfiable and the base is clean, `F` is unreachable at every
//!   depth: a minimal counterexample is loop-free, so its length-`k`
//!   suffix would satisfy Step(k).

use std::time::Instant;

use sebmc_logic::{tseitin, Cnf, Lit, VarAlloc};
use sebmc_model::{Model, Trace};
use sebmc_sat::{SolveResult, Solver};

use crate::engine::{Budget, Engine, RunStats, Semantics};
use crate::unroll::UnrollSat;

/// Outcome of a k-induction run.
#[derive(Debug)]
pub enum InductionResult {
    /// The target is unreachable at *every* depth; proven at induction
    /// depth `k`.
    Proved {
        /// The depth at which the step case became unsatisfiable.
        k: usize,
    },
    /// A concrete counterexample was found by the base case.
    Falsified {
        /// The witness trace (replayable through the simulator).
        cex: Trace,
    },
    /// No verdict up to the maximum induction depth.
    Exhausted {
        /// The largest depth tried.
        max_depth: usize,
    },
    /// A resource budget was exhausted.
    Unknown {
        /// Why the run stopped.
        reason: String,
    },
}

impl InductionResult {
    /// `true` if the property was proven safe.
    pub fn is_proved(&self) -> bool {
        matches!(self, InductionResult::Proved { .. })
    }

    /// `true` if a counterexample was found.
    pub fn is_falsified(&self) -> bool {
        matches!(self, InductionResult::Falsified { .. })
    }
}

/// A k-induction verdict together with the run's cumulative solver
/// statistics (base-case session totals plus every step-case solve).
#[derive(Debug)]
pub struct InductionRun {
    /// The verdict.
    pub result: InductionResult,
    /// Aggregated stats: durations/conflicts summed, formula sizes and
    /// memory peaks maxed, `bounds_checked` counting base and step
    /// cases.
    pub stats: RunStats,
}

/// Builds the Step(k) formula: a simple path of `k` steps, `¬F` on the
/// first `k` states, `F` on the last. Returns the solver verdict
/// (satisfiable means induction fails at this depth) plus this call's
/// stats.
fn step_case(model: &Model, k: usize, budget: &Budget, start: Instant) -> (SolveResult, RunStats) {
    let n = model.num_state_vars();
    let m = model.num_inputs();
    let mut alloc = VarAlloc::new();
    let state_lits: Vec<Vec<Lit>> = (0..=k).map(|_| alloc.fresh_lits(n)).collect();
    let input_lits: Vec<Vec<Lit>> = (0..k).map(|_| alloc.fresh_lits(m)).collect();
    let mut cnf = Cnf::new();

    let dummy = state_lits[0][0];
    let frame_map = |states: &[Lit], inputs: Option<&[Lit]>| -> Vec<Lit> {
        let mut map = vec![dummy; model.aig().num_inputs()];
        for (i, &idx) in model.state_input_indices().iter().enumerate() {
            map[idx] = states[i];
        }
        if let Some(ins) = inputs {
            for (j, &idx) in model.free_input_indices().iter().enumerate() {
                map[idx] = ins[j];
            }
        }
        map
    };

    // Transitions and constraints.
    for t in 0..k {
        let map = frame_map(&state_lits[t], Some(&input_lits[t]));
        let mut enc = tseitin::Encoder::new(model.aig(), &map);
        let next_roots = enc.encode_roots(model.next_refs(), &mut alloc, &mut cnf);
        for (i, &nl) in next_roots.iter().enumerate() {
            cnf.add_equiv(nl, state_lits[t + 1][i]);
        }
        for &c in model.constraint_refs() {
            let cl = enc.encode_ref(c, &mut alloc, &mut cnf);
            cnf.add_unit(cl);
        }
    }
    // ¬F on frames 0..k, F on frame k.
    for (t, frame) in state_lits.iter().enumerate() {
        let map = frame_map(frame, None);
        let mut enc = tseitin::Encoder::new(model.aig(), &map);
        let f = enc.encode_ref(model.target_ref(), &mut alloc, &mut cnf);
        if t == k {
            cnf.add_unit(f);
        } else {
            cnf.add_unit(!f);
        }
    }
    // Simple-path constraint: every pair of frames differs somewhere.
    for i in 0..=k {
        for j in i + 1..=k {
            let mut clause: Vec<Lit> = Vec::with_capacity(n);
            for (&a, &c) in state_lits[i].iter().zip(&state_lits[j]) {
                let t = alloc.fresh_lit();
                // t → (a ≠ c)
                cnf.add_ternary(!t, a, c);
                cnf.add_ternary(!t, !a, !c);
                clause.push(t);
            }
            cnf.add_clause(clause);
        }
    }
    cnf.ensure_vars(alloc.num_vars());

    let call_start = Instant::now();
    let mut solver = Solver::new();
    solver.set_limits(budget.sat_limits(start));
    let result = if !solver.add_cnf(&cnf) {
        SolveResult::Unsat
    } else {
        solver.solve()
    };
    let stats = RunStats {
        duration: call_start.elapsed(),
        encode_vars: cnf.num_vars(),
        encode_clauses: cnf.num_clauses(),
        encode_lits: cnf.num_literals(),
        peak_formula_lits: solver.stats().peak_live_lits,
        peak_formula_bytes: solver.stats().peak_bytes(),
        peak_watch_bytes: solver.stats().peak_watch_bytes,
        peak_proof_bytes: solver.stats().peak_proof_bytes,
        solver_effort: solver.stats().conflicts,
        bounds_checked: 1,
        ..RunStats::default()
    };
    (result, stats)
}

/// Runs k-induction with increasing depth up to `max_depth`,
/// returning the verdict together with cumulative run statistics.
///
/// The budget's wall clock starts now and covers every base and step
/// case; its cancel token aborts the run at the next case boundary (or
/// inside a solver, at the solver's safe points).
pub fn k_induction_run(model: &Model, max_depth: usize, budget: &Budget) -> InductionRun {
    let start = Instant::now();
    let mut stats = RunStats::default();
    // One incremental base-case session shared by every depth: the
    // deepening base checks are exactly the session workload.
    let mut base = UnrollSat::default().start(model, Semantics::Within, budget.clone());
    let finish = |result: InductionResult, mut stats: RunStats| {
        stats.duration = start.elapsed();
        InductionRun { result, stats }
    };
    for k in 0..=max_depth {
        if budget.expired(start) {
            return finish(
                InductionResult::Unknown {
                    reason: budget.unknown_reason(),
                },
                stats,
            );
        }
        // Base: counterexample within k steps?
        let out = base.check_bound(k);
        stats.absorb(&out.stats);
        match out.result {
            crate::engine::BmcResult::Reachable(Some(cex)) => {
                return finish(InductionResult::Falsified { cex }, stats);
            }
            crate::engine::BmcResult::Reachable(None) => {
                unreachable!("UnrollSat always produces witnesses")
            }
            crate::engine::BmcResult::Unknown(reason) => {
                return finish(InductionResult::Unknown { reason }, stats);
            }
            crate::engine::BmcResult::Unreachable => {}
        }
        // Step: does a simple ¬F…¬F→F path of length k exist?
        let (step, step_stats) = step_case(model, k, budget, start);
        stats.absorb(&step_stats);
        match step {
            SolveResult::Unsat => return finish(InductionResult::Proved { k }, stats),
            SolveResult::Sat => {}
            SolveResult::Unknown => {
                return finish(
                    InductionResult::Unknown {
                        reason: format!("{} in step case", budget.unknown_reason()),
                    },
                    stats,
                );
            }
        }
    }
    finish(InductionResult::Exhausted { max_depth }, stats)
}

/// Runs k-induction with increasing depth up to `max_depth`.
///
/// Returns [`InductionResult::Proved`] as soon as a step case is
/// unsatisfiable, [`InductionResult::Falsified`] when the base case
/// finds a counterexample, [`InductionResult::Exhausted`] after
/// `max_depth` inconclusive rounds. See [`k_induction_run`] for the
/// variant that also reports cumulative run statistics.
pub fn k_induction(model: &Model, max_depth: usize, budget: &Budget) -> InductionResult {
    k_induction_run(model, max_depth, budget).result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_model::builders::{
        counter_with_enable, johnson_counter, peterson, shift_register, traffic_light,
    };

    #[test]
    fn proves_traffic_light_safe() {
        let r = k_induction(&traffic_light(), 8, &Budget::none());
        match r {
            InductionResult::Proved { k } => assert!(k <= 2, "traffic proves shallow, got {k}"),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn proves_peterson_safe_at_depth_17() {
        // Peterson is famously not inductive at shallow depths without
        // invariant strengthening; plain k-induction with simple-path
        // constraints needs k = 17 here — the paper's point that "the
        // induction depth [can be] exponential in the size of the model".
        let r = k_induction(&peterson(), 20, &Budget::none());
        match r {
            InductionResult::Proved { k } => {
                assert!(k >= 10, "expected a deep induction proof, got {k}");
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn falsifies_reachable_targets_with_valid_cex() {
        let m = shift_register(4);
        let r = k_induction(&m, 10, &Budget::none());
        match r {
            InductionResult::Falsified { cex } => {
                assert_eq!(cex.len(), 4, "minimal counterexample");
                assert_eq!(m.check_trace(&cex), Ok(()));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn induction_depth_can_be_exponential() {
        // The paper's caveat: proving the 3-bit counter with enable
        // never reaches 7... is false (it does); instead make the
        // target unreachable by freezing at the max-1 value: use a
        // johnson counter property that needs deep induction.
        // Johnson(4) never reaches the pattern 1001 (not a Johnson
        // code word): provable, but only once the path is longer than
        // the reachable diameter.
        let m = {
            use sebmc_model::ModelBuilder;
            let mut b = ModelBuilder::new("johnson_bad_code");
            let bits = b.state_vars(4, "j");
            let mut nexts = vec![!bits[3]];
            nexts.extend_from_slice(&bits[..3]);
            b.set_next_all(&nexts);
            // 1001 (bit0 and bit3 set, middle clear) is not reachable.
            let t1 = b.aig_mut().and(bits[0], !bits[1]);
            let t2 = b.aig_mut().and(!bits[2], bits[3]);
            let t = b.aig_mut().and(t1, t2);
            b.set_target(t);
            b.build().unwrap()
        };
        assert!(!sebmc_model::explicit::reachable_within(&m, 16));
        let r = k_induction(&m, 16, &Budget::none());
        match r {
            InductionResult::Proved { k } => {
                assert!(k >= 2, "needs non-trivial depth, proved at {k}");
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn exhausts_when_depth_insufficient() {
        // Johnson(4)'s all-ones is reachable at 4; at max_depth 2 the
        // base finds nothing and induction cannot conclude either way
        // for this shallow horizon... all-ones IS reachable, so with
        // max_depth 3 the result must be Exhausted (cex needs k=4).
        let r = k_induction(&johnson_counter(4), 3, &Budget::none());
        assert!(
            matches!(r, InductionResult::Exhausted { max_depth: 3 }),
            "{r:?}"
        );
    }

    #[test]
    fn budget_gives_unknown() {
        let r = k_induction(
            &counter_with_enable(6),
            20,
            &Budget::with_timeout(std::time::Duration::from_nanos(1)),
        );
        assert!(matches!(r, InductionResult::Unknown { .. }), "{r:?}");
    }

    #[test]
    fn deep_counter_proof() {
        // counter_with_enable(3) target is 7, reachable — falsified.
        let m = counter_with_enable(3);
        let r = k_induction(&m, 10, &Budget::none());
        assert!(r.is_falsified());
    }
}
