//! Formulation (2): bounded reachability as QBF with one copy of `TR`.
//!
//! `R_k(Z₀,…,Z_k) = I(Z₀) ∧ F(Z_k) ∧
//!    ∀U,V. ⋀_{i<k} ((U↔Zᵢ ∧ V↔Zᵢ₊₁) → TR(U,V))`
//!
//! The transition relation appears **once**; raising the bound adds
//! only a new state copy `Z` and one implication — `O(n)` growth per
//! iteration, independent of `|TR|`, and a constant number of
//! universal variables. This is the paper's space argument, measured by
//! experiment E2.
//!
//! [`QbfLinear`] feeds the encoding to one of the general-purpose QBF
//! solvers (QDPLL search or universal expansion), reproducing the
//! paper's negative result about those solvers.

use std::time::Instant;

use sebmc_logic::{tseitin, Aig, AigRef, Cnf, Lit, Var, VarAlloc};
use sebmc_model::Model;
use sebmc_qbf::{ExpansionLimits, ExpansionSolver, QbfFormula, QbfResult, QdpllSolver, Quantifier};

use crate::engine::{
    BmcOutcome, BmcResult, BoundedChecker, Budget, Engine, RunStats, Semantics, Session,
};

/// Which general-purpose QBF solver an engine uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QbfBackend {
    /// Search-based QDPLL (QuBE/semprop class).
    Qdpll,
    /// Universal expansion to SAT (Quantor class).
    Expansion,
}

/// A QBF encoding plus the variable maps needed for statistics.
#[derive(Debug)]
pub struct QbfEncoding {
    /// The prenex-CNF formula.
    pub formula: QbfFormula,
    /// Literals of the frame state variables (`z_lits[t][i]`).
    pub z_lits: Vec<Vec<Lit>>,
}

/// Builds the full-input literal map for importing a model cone into a
/// scratch graph: state variables bound to `states`, free inputs to
/// `inputs` (or folded to constant false when the cone cannot mention
/// them, as validated for init/target predicates).
pub(crate) fn import_map(
    model: &Model,
    states: &[AigRef],
    inputs: Option<&[AigRef]>,
) -> Vec<AigRef> {
    let mut map = vec![AigRef::FALSE; model.aig().num_inputs()];
    for (i, &idx) in model.state_input_indices().iter().enumerate() {
        map[idx] = states[i];
    }
    if let Some(ins) = inputs {
        for (j, &idx) in model.free_input_indices().iter().enumerate() {
            map[idx] = ins[j];
        }
    }
    map
}

/// Imports `TR(u, v) = ∃w. constraints(u,w) ∧ ⋀ᵢ vᵢ ↔ nextᵢ(u,w)` into
/// the scratch graph, returning a single "TR holds" reference.
pub(crate) fn import_tr(
    g: &mut Aig,
    model: &Model,
    u: &[AigRef],
    v: &[AigRef],
    w: &[AigRef],
) -> AigRef {
    let map = import_map(model, u, Some(w));
    let mut roots: Vec<AigRef> = model.next_refs().to_vec();
    roots.extend_from_slice(model.constraint_refs());
    let imported = g.import(model.aig(), &roots, &map);
    let n = model.num_state_vars();
    let mut ok = AigRef::TRUE;
    for i in 0..n {
        let eq = g.iff(imported[i], v[i]);
        ok = g.and(ok, eq);
    }
    for &c in &imported[n..] {
        ok = g.and(ok, c);
    }
    ok
}

/// Encodes "a target state is reachable from an initial state in
/// exactly `k` steps" as the linear single-`TR` QBF (formulation (2)).
pub fn encode_qbf_linear(model: &Model, k: usize) -> QbfEncoding {
    let n = model.num_state_vars();
    let m = model.num_inputs();
    let mut g = Aig::new();
    let z: Vec<Vec<AigRef>> = (0..=k).map(|_| g.inputs(n)).collect();
    let u = g.inputs(n);
    let v = g.inputs(n);
    let w = g.inputs(m);

    let tr_ok = import_tr(&mut g, model, &u, &v, &w);
    let init_map = import_map(model, &z[0], None);
    let init_root = g.import(model.aig(), &[model.init_ref()], &init_map)[0];
    let target_map = import_map(model, &z[k], None);
    let target_root = g.import(model.aig(), &[model.target_ref()], &target_map)[0];

    let mut matrix_root = g.and(init_root, target_root);
    for i in 0..k {
        let eu = g.eq_words(&u, &z[i]);
        let ev = g.eq_words(&v, &z[i + 1]);
        let ante = g.and(eu, ev);
        let imp = g.implies(ante, tr_ok);
        matrix_root = g.and(matrix_root, imp);
    }

    // Allocate real variables in prefix order: ∃Z ∀U,V ∃W,aux.
    let mut alloc = VarAlloc::new();
    let mut input_lits: Vec<Lit> = Vec::with_capacity(g.num_inputs());
    let z_lits: Vec<Vec<Lit>> = z
        .iter()
        .map(|frame| {
            let lits = alloc.fresh_lits(frame.len());
            input_lits.extend(&lits);
            lits
        })
        .collect();
    let uv_first = alloc.num_vars();
    let u_lits = alloc.fresh_lits(n);
    input_lits.extend(&u_lits);
    let v_lits = alloc.fresh_lits(n);
    input_lits.extend(&v_lits);
    let uv_last = alloc.num_vars();
    let w_lits = alloc.fresh_lits(m);
    input_lits.extend(&w_lits);

    let mut cnf = Cnf::new();
    let root = tseitin::encode(&g, &[matrix_root], &input_lits, &mut alloc, &mut cnf)[0];
    cnf.add_unit(root);
    cnf.ensure_vars(alloc.num_vars());

    let mut formula = QbfFormula::new(cnf);
    formula.push_block(
        Quantifier::Exists,
        (0..uv_first).map(|i| Var::new(i as u32)),
    );
    formula.push_block(
        Quantifier::ForAll,
        (uv_first..uv_last).map(|i| Var::new(i as u32)),
    );
    formula.push_block(
        Quantifier::Exists,
        (uv_last..alloc.num_vars()).map(|i| Var::new(i as u32)),
    );
    debug_assert!(formula.validate().is_ok());

    QbfEncoding { formula, z_lits }
}

/// Runs a QBF backend under a session budget (deadline measured from
/// `start`, byte cap lowered to a matrix-literal cap at 4 bytes per
/// literal, cancellation polled at the solver's safe points); returns
/// the verdict, the solver effort and its peak formula size.
pub(crate) fn solve_qbf(
    backend: QbfBackend,
    formula: &QbfFormula,
    budget: &Budget,
    start: Instant,
) -> (QbfResult, u64, usize) {
    match backend {
        QbfBackend::Qdpll => {
            let mut solver = QdpllSolver::with_limits(budget.qbf_limits(start));
            let r = solver.solve(formula);
            let effort = solver.stats().decisions;
            (r, effort, formula.matrix().num_literals())
        }
        QbfBackend::Expansion => {
            let mut solver = ExpansionSolver::with_limits(ExpansionLimits {
                max_matrix_literals: budget
                    .max_formula_bytes
                    .map_or(10_000_000, |b| b / std::mem::size_of::<Lit>()),
                base: budget.qbf_limits(start),
            });
            let r = solver.solve(formula);
            let effort = solver.stats().expanded_universals;
            let peak = solver.stats().peak_matrix_literals;
            (r, effort, peak.max(formula.matrix().num_literals()))
        }
    }
}

/// Formulation (2) engine: single-`TR` QBF solved by a general-purpose
/// QBF solver.
///
/// Under [`Semantics::Within`] the model is first given self-loops
/// (paper §2), preserving the single-`TR` property.
///
/// ```
/// use sebmc::{BoundedChecker, QbfBackend, QbfLinear, Semantics};
/// use sebmc_model::builders::token_ring;
///
/// let model = token_ring(3);
/// let mut engine = QbfLinear::new(QbfBackend::Qdpll);
/// let out = engine.check(&model, 2, Semantics::Exactly);
/// assert!(out.result.is_reachable());
/// ```
#[derive(Debug)]
pub struct QbfLinear {
    /// Which QBF solver to run.
    pub backend: QbfBackend,
    /// Default budget for one-shot [`BoundedChecker::check`] calls.
    pub budget: Budget,
}

impl QbfLinear {
    /// Creates the engine with unlimited budgets.
    pub fn new(backend: QbfBackend) -> Self {
        QbfLinear {
            backend,
            budget: Budget::none(),
        }
    }

    /// Creates the engine with the given default budget.
    pub fn with_budget(backend: QbfBackend, budget: Budget) -> Self {
        QbfLinear { backend, budget }
    }
}

/// An open formulation-(2) session. The QBF encoding is monolithic per
/// bound, so the reusable state is the (possibly self-loop-transformed)
/// model, the budget clock and the cumulative statistics.
#[derive(Debug)]
pub struct QbfLinearSession {
    backend: QbfBackend,
    semantics: Semantics,
    /// Already self-loop-transformed under `Within` semantics — the
    /// transform runs once per session, not once per bound.
    model: Model,
    budget: Budget,
    started: Instant,
    total: RunStats,
}

impl QbfLinearSession {
    /// Opens a session; applies the self-loop transform now if needed.
    pub fn new(backend: QbfBackend, model: &Model, semantics: Semantics, budget: Budget) -> Self {
        let model = match semantics {
            Semantics::Exactly => model.clone(),
            Semantics::Within => model.with_self_loops(),
        };
        QbfLinearSession {
            backend,
            semantics,
            model,
            budget,
            started: Instant::now(),
            total: RunStats::default(),
        }
    }
}

impl Session for QbfLinearSession {
    fn name(&self) -> &'static str {
        match self.backend {
            QbfBackend::Qdpll => "qbf-linear-qdpll",
            QbfBackend::Expansion => "qbf-linear-expansion",
        }
    }

    fn semantics(&self) -> Semantics {
        self.semantics
    }

    fn check_bound(&mut self, k: usize) -> BmcOutcome {
        let call_start = Instant::now();
        if self.budget.expired(self.started) {
            let stats = RunStats {
                duration: call_start.elapsed(),
                bounds_checked: 1,
                ..RunStats::default()
            };
            self.total.absorb(&stats);
            return BmcOutcome::unknown(self.budget.unknown_reason(), stats);
        }
        let enc = encode_qbf_linear(&self.model, k);
        let mut stats = RunStats {
            encode_vars: enc.formula.matrix().num_vars(),
            encode_clauses: enc.formula.matrix().num_clauses(),
            encode_lits: enc.formula.matrix().num_literals(),
            bounds_checked: 1,
            ..RunStats::default()
        };
        let (r, effort, peak) = solve_qbf(self.backend, &enc.formula, &self.budget, self.started);
        stats.duration = call_start.elapsed();
        stats.solver_effort = effort;
        stats.peak_formula_lits = peak;
        stats.peak_formula_bytes = peak * std::mem::size_of::<sebmc_logic::Lit>();
        let result = match r {
            QbfResult::True => BmcResult::Reachable(None),
            QbfResult::False => BmcResult::Unreachable,
            QbfResult::Unknown => BmcResult::Unknown(self.budget.unknown_reason()),
        };
        self.total.absorb(&stats);
        BmcOutcome::new(result, stats)
    }

    fn set_cancel(&mut self, token: crate::engine::CancelToken) {
        self.budget.cancel = token;
    }

    fn cumulative_stats(&self) -> RunStats {
        self.total.clone()
    }
}

impl Engine for QbfLinear {
    fn name(&self) -> &'static str {
        match self.backend {
            QbfBackend::Qdpll => "qbf-linear-qdpll",
            QbfBackend::Expansion => "qbf-linear-expansion",
        }
    }

    fn start(&self, model: &Model, semantics: Semantics, budget: Budget) -> Box<dyn Session> {
        let backend = self.backend;
        crate::reduce::start_with_reduction(model, semantics, budget, |m, sem, b| {
            Box::new(QbfLinearSession::new(backend, m, sem, b))
        })
    }

    fn default_budget(&self) -> Budget {
        self.budget.clone()
    }
}

impl BoundedChecker for QbfLinear {
    fn name(&self) -> &'static str {
        Engine::name(self)
    }

    fn check(&mut self, model: &Model, k: usize, semantics: Semantics) -> BmcOutcome {
        crate::engine::one_shot(self, model, k, semantics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_model::builders::{johnson_counter, lfsr, token_ring, traffic_light};
    use sebmc_model::explicit;

    #[test]
    fn constant_universal_count_and_linear_growth() {
        let m = johnson_counter(5);
        let e4 = encode_qbf_linear(&m, 4);
        let e5 = encode_qbf_linear(&m, 5);
        let e6 = encode_qbf_linear(&m, 6);
        assert_eq!(
            e4.formula.num_universals(),
            e5.formula.num_universals(),
            "number of universals does not change from iteration to iteration"
        );
        assert_eq!(e4.formula.num_universals(), 2 * m.num_state_vars());
        let d1 = e5.formula.matrix().num_literals() - e4.formula.matrix().num_literals();
        let d2 = e6.formula.matrix().num_literals() - e5.formula.matrix().num_literals();
        assert_eq!(d1, d2, "per-iteration growth is constant");
        // The per-iteration growth must not contain another TR copy:
        // it is O(n), far smaller than the base formula with its TR.
        assert!(d1 < e4.formula.matrix().num_literals());
    }

    #[test]
    fn prefix_shape_is_exists_forall_exists() {
        let m = token_ring(3);
        let e = encode_qbf_linear(&m, 3);
        let prefix = e.formula.prefix();
        assert_eq!(prefix.len(), 3);
        assert_eq!(prefix[0].quantifier, Quantifier::Exists);
        assert_eq!(prefix[1].quantifier, Quantifier::ForAll);
        assert_eq!(prefix[2].quantifier, Quantifier::Exists);
        assert_eq!(e.z_lits.len(), 4);
    }

    #[test]
    fn qdpll_backend_matches_oracle_on_tiny_models() {
        let m = token_ring(3);
        let mut e = QbfLinear::new(QbfBackend::Qdpll);
        for k in 0..4 {
            let got = e.check(&m, k, Semantics::Exactly).result;
            let expect = explicit::reachable_in_exactly(&m, k);
            assert_eq!(got.is_reachable(), expect, "bound {k}");
            assert!(!got.is_unknown());
        }
    }

    #[test]
    fn expansion_backend_matches_oracle_on_tiny_models() {
        let m = token_ring(3);
        let mut e = QbfLinear::new(QbfBackend::Expansion);
        for k in 0..4 {
            let got = e.check(&m, k, Semantics::Exactly).result;
            let expect = explicit::reachable_in_exactly(&m, k);
            assert_eq!(got.is_reachable(), expect, "bound {k}");
        }
    }

    #[test]
    fn within_semantics_via_self_loops() {
        let m = lfsr(3, 4);
        let mut e = QbfLinear::new(QbfBackend::Expansion);
        // Needle at exactly 4: within-5 must still be reachable.
        assert!(e.check(&m, 5, Semantics::Within).result.is_reachable());
        assert!(e.check(&m, 3, Semantics::Within).result.is_unreachable());
    }

    #[test]
    fn unsat_family_unreachable() {
        let m = traffic_light();
        let mut e = QbfLinear::new(QbfBackend::Qdpll);
        for k in 0..3 {
            assert!(
                e.check(&m, k, Semantics::Exactly).result.is_unreachable(),
                "bound {k}"
            );
        }
    }

    #[test]
    fn tight_timeout_gives_unknown() {
        let m = sebmc_model::builders::random_fsm(10, 2, 3);
        let mut e = QbfLinear::with_budget(
            QbfBackend::Qdpll,
            Budget::with_timeout(std::time::Duration::from_nanos(1)),
        );
        assert!(e.check(&m, 8, Semantics::Exactly).result.is_unknown());
    }

    #[test]
    fn session_accumulates_and_caches_self_loops() {
        let m = lfsr(3, 4);
        let mut s =
            QbfLinearSession::new(QbfBackend::Expansion, &m, Semantics::Within, Budget::none());
        assert!(s.check_bound(3).result.is_unreachable());
        assert!(s.check_bound(5).result.is_reachable());
        let total = s.cumulative_stats();
        assert_eq!(total.bounds_checked, 2);
        assert!(total.encode_lits > 0);
    }
}
