//! Structural model fingerprinting for the service result cache.
//!
//! The cache in `sebmc serve` must answer "have I already checked this
//! exact problem?" for models that may arrive under different names or
//! from different files. The fingerprint therefore hashes the model's
//! *structure* — AIG node graph, input roles, init/target/constraint
//! cones and the next-state functions — and deliberately ignores the
//! model name and any state/input label strings.
//!
//! The hash is 64-bit FNV-1a over a canonical byte stream. Two models
//! built by identical construction sequences always collide (that is
//! the point); distinct structures collide with probability ≈ 2⁻⁶⁴,
//! which is acceptable for a cache (a false hit would re-serve a
//! verdict for a different design, so the stream includes every field
//! that affects checking semantics).

use sebmc_logic::AigRef;
use sebmc_model::Model;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher over little-endian words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.byte(b);
        }
    }

    fn aig_ref(&mut self, r: AigRef) {
        self.word(r.code() as u64);
    }
}

/// Hashes the checking-relevant structure of `model` to 64 bits.
///
/// Included: input counts and roles (state vs. free, in order), every
/// AND node's fanin pair, the init / target refs, all invariant
/// constraint refs, and each state variable's next-state function.
/// Excluded: the model name and all display labels, so renamed copies
/// of the same design share a fingerprint.
pub fn model_fingerprint(model: &Model) -> u64 {
    let mut h = Fnv::new();
    let aig = model.aig();

    h.word(model.num_state_vars() as u64);
    h.word(model.num_inputs() as u64);
    for &i in model.state_input_indices() {
        h.byte(1);
        h.word(i as u64);
    }
    for &i in model.free_input_indices() {
        h.byte(2);
        h.word(i as u64);
    }

    h.word(aig.num_nodes() as u64);
    for node in 0..aig.num_nodes() {
        if let Some((a, b)) = aig.and_fanins(node) {
            h.byte(3);
            h.aig_ref(a);
            h.aig_ref(b);
        } else if let Some(idx) = aig.input_index(node) {
            h.byte(4);
            h.word(idx as u64);
        } else {
            h.byte(5); // constant-false node
        }
    }

    h.byte(6);
    h.aig_ref(model.init_ref());
    h.byte(7);
    h.aig_ref(model.target_ref());
    for &c in model.constraint_refs() {
        h.byte(8);
        h.aig_ref(c);
    }
    for &n in model.next_refs() {
        h.byte(9);
        h.aig_ref(n);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_model::builders;

    #[test]
    fn deterministic_across_rebuilds() {
        let a = builders::counter_with_reset(4);
        let b = builders::counter_with_reset(4);
        assert_eq!(model_fingerprint(&a), model_fingerprint(&b));
    }

    #[test]
    fn distinguishes_structures() {
        let a = builders::counter_with_reset(4);
        let b = builders::counter_with_reset(5);
        assert_ne!(model_fingerprint(&a), model_fingerprint(&b));
    }

    #[test]
    fn distinguishes_builder_families() {
        let models = [
            builders::counter_with_reset(3),
            builders::counter_with_enable(3),
            builders::shift_register(3),
            builders::gray_counter(3),
            builders::traffic_light(),
            builders::peterson(),
        ];
        let mut seen = std::collections::HashSet::new();
        for m in &models {
            assert!(
                seen.insert(model_fingerprint(m)),
                "fingerprint collision for {}",
                m.name()
            );
        }
    }
}
