//! jSAT — the paper's special-purpose decision procedure.
//!
//! Motivated by the failure of general-purpose QBF solvers on
//! formulation (2), the paper develops jSAT: a DPLL-based procedure
//! that only ever holds formula (4) in memory,
//!
//! `I(Z₀) ∧ TR(U, V) ∧ F(Z_k)`
//!
//! together with one concrete assignment per time frame. The pair
//! `(U, V)` is *implicitly* associated with the current/next state of
//! the frontier frame instead of carrying the `(U↔Zᵢ)∧(V↔Zᵢ₊₁)` terms
//! of (2). Operationally this is a depth-first search of the state
//! graph from the initial states toward the target:
//!
//! 1. decide `Z₀ ⊨ I` (a SAT call on `I(U)`);
//! 2. with `U` assumed equal to the frontier state, ask the incremental
//!    CDCL solver for a `TR` successor (`F`-constrained at the last
//!    frame);
//! 3. on success advance the frontier; on exhaustion *block* the
//!    refuted state behind a per-frame activation literal and
//!    backtrack, retiring the frame's blocking clauses so memory stays
//!    proportional to the path length.
//!
//! Two refinements beyond the paper's sketch are configurable
//! ([`JSatConfig`]) and ablated in experiment E5: a bounded
//! failed-state cache ("state σ cannot reach F in r steps") and the
//! periodic `simplify()` garbage collection of retired blocking
//! clauses.
//!
//! As a [`Session`], jSAT keeps formula (4), the solver's learnt
//! clauses *and* the failed-state cache alive across bounds — cached
//! "cannot reach F in r steps" facts are bound-independent, so a
//! deepening loop re-enters the search with everything it refuted at
//! smaller bounds already pruned.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use sebmc_logic::{tseitin, Cnf, Lit, VarAlloc};
use sebmc_model::{Model, Trace};
use sebmc_proof::Certificate;
use sebmc_sat::{SolveResult, Solver};

use crate::engine::{
    BmcOutcome, BmcResult, BoundedChecker, Budget, Engine, RunStats, Semantics, Session,
};

/// Tuning knobs of the jSAT procedure (ablated in experiment E5).
#[derive(Clone, Debug)]
pub struct JSatConfig {
    /// Cache "state σ cannot reach F within/in-exactly r steps" facts
    /// and prune repeat visits. The cache is the difference between
    /// exponential path enumeration and state-graph search on UNSAT
    /// instances.
    pub use_failed_cache: bool,
    /// Maximum cache entries before the cache is wholesale cleared
    /// (bounded memory, as the paper's space argument demands).
    pub max_cache_entries: usize,
    /// Run the solver's satisfied-clause garbage collection after this
    /// many frame pops (retired blocking clauses are physically freed).
    pub simplify_interval: u64,
}

impl Default for JSatConfig {
    fn default() -> Self {
        JSatConfig {
            use_failed_cache: true,
            max_cache_entries: 1 << 20,
            simplify_interval: 64,
        }
    }
}

/// Search statistics of a jSAT run (cumulative over a session).
#[derive(Clone, Debug, Default)]
pub struct JSatStats {
    /// Incremental SAT calls made.
    pub sat_calls: u64,
    /// Successor states enumerated.
    pub successors: u64,
    /// Frames popped (backtracks).
    pub backtracks: u64,
    /// Failed-state cache hits.
    pub cache_hits: u64,
    /// Maximum frontier depth reached.
    pub max_depth: usize,
    /// `simplify()` garbage-collection rounds run.
    pub simplify_runs: u64,
    /// Resident clause-database bytes physically reclaimed by those
    /// rounds (the arena compactor's doing — the seed solver tombstoned
    /// retired blocking clauses and this figure was unmeasurable).
    pub reclaimed_bytes: u64,
}

/// Packs a state into a hashable key.
fn state_key(state: &[bool]) -> Vec<u64> {
    let mut key = vec![0u64; state.len().div_ceil(64)];
    for (i, &b) in state.iter().enumerate() {
        if b {
            key[i / 64] |= 1 << (i % 64);
        }
    }
    key
}

/// Failed-state memory: exact mode records (state, remaining) pairs;
/// within mode records the largest remaining budget that failed. Both
/// kinds of fact are independent of the bound being checked, so the
/// cache survives across a session's bounds.
#[derive(Debug, Default)]
struct FailedCache {
    exact: HashSet<(Vec<u64>, u32)>,
    within: HashMap<Vec<u64>, u32>,
}

impl FailedCache {
    fn len(&self) -> usize {
        self.exact.len() + self.within.len()
    }

    fn clear(&mut self) {
        self.exact.clear();
        self.within.clear();
    }

    fn is_hopeless(&self, semantics: Semantics, state: &[bool], remaining: usize) -> bool {
        let key = state_key(state);
        match semantics {
            Semantics::Exactly => self.exact.contains(&(key, remaining as u32)),
            Semantics::Within => self
                .within
                .get(&key)
                .is_some_and(|&r| r >= remaining as u32),
        }
    }

    fn record(&mut self, semantics: Semantics, state: &[bool], remaining: usize) {
        let key = state_key(state);
        match semantics {
            Semantics::Exactly => {
                self.exact.insert((key, remaining as u32));
            }
            Semantics::Within => {
                let slot = self.within.entry(key).or_insert(0);
                *slot = (*slot).max(remaining as u32);
            }
        }
    }
}

/// One frontier frame of the DFS: a concrete state, the inputs that
/// produced it, and the activation literal guarding the blocking
/// clauses of its already-refuted successors.
#[derive(Debug)]
struct Frame {
    state: Vec<bool>,
    inputs_from_pred: Vec<bool>,
    act: Lit,
}

/// The jSAT engine (formula (4) + implicit `(U,V)` association).
///
/// ```
/// use sebmc::{BoundedChecker, JSat, Semantics};
/// use sebmc_model::builders::shift_register;
///
/// let model = shift_register(4);
/// let mut engine = JSat::default();
/// let out = engine.check(&model, 4, Semantics::Exactly);
/// assert!(out.result.is_reachable());
/// assert!(engine.check(&model, 3, Semantics::Exactly).result.is_unreachable());
/// ```
#[derive(Debug, Default)]
pub struct JSat {
    /// Default budget for one-shot [`BoundedChecker::check`] calls.
    pub budget: Budget,
    /// Algorithm configuration.
    pub config: JSatConfig,
    stats: JSatStats,
}

impl JSat {
    /// Creates the engine with the given default budget.
    pub fn with_budget(budget: Budget) -> Self {
        JSat {
            budget,
            ..JSat::default()
        }
    }

    /// Creates the engine with explicit configuration.
    pub fn with_config(budget: Budget, config: JSatConfig) -> Self {
        JSat {
            budget,
            config,
            stats: JSatStats::default(),
        }
    }

    /// Statistics of the most recent one-shot check.
    pub fn jsat_stats(&self) -> &JSatStats {
        &self.stats
    }
}

impl Engine for JSat {
    fn name(&self) -> &'static str {
        "jsat"
    }

    fn start(&self, model: &Model, semantics: Semantics, budget: Budget) -> Box<dyn Session> {
        let config = self.config.clone();
        crate::reduce::start_with_reduction(model, semantics, budget, |m, sem, b| {
            Box::new(JSatSession::new(m, sem, config, b))
        })
    }

    fn default_budget(&self) -> Budget {
        self.budget.clone()
    }
}

impl BoundedChecker for JSat {
    fn name(&self) -> &'static str {
        Engine::name(self)
    }

    fn check(&mut self, model: &Model, k: usize, semantics: Semantics) -> BmcOutcome {
        let mut session =
            JSatSession::new(model, semantics, self.config.clone(), self.budget.clone());
        let out = session.check_bound(k);
        self.stats = session.search_stats().clone();
        out
    }
}

/// The static formula (4) loaded into the incremental solver, plus the
/// variable maps jSAT drives it through.
#[derive(Debug)]
struct Formula4 {
    solver: Solver,
    u_lits: Vec<Lit>,
    v_lits: Vec<Lit>,
    w_lits: Vec<Lit>,
    /// Activates `I(U)`.
    act_init: Lit,
    /// Activates `F(V)`.
    act_target_v: Lit,
    /// Activates `F(U)` (for the k = 0 degenerate case).
    act_target_u: Lit,
    /// Guards the blocking clauses of refuted *initial* states. A
    /// bound's refuted-initial blocks are only valid for that bound, so
    /// each `check_bound` retires the old guard and allocates a fresh
    /// one.
    act_init_block: Lit,
    /// Size of the static formula, for the run statistics.
    base_vars: usize,
    base_clauses: usize,
    base_lits: usize,
}

fn build_formula4(model: &Model, budget: &Budget) -> Formula4 {
    let n = model.num_state_vars();
    let m = model.num_inputs();
    let mut alloc = VarAlloc::new();
    let u_lits = alloc.fresh_lits(n);
    let v_lits = alloc.fresh_lits(n);
    let w_lits = alloc.fresh_lits(m);
    let act_init = alloc.fresh_lit();
    let act_target_v = alloc.fresh_lit();
    let act_target_u = alloc.fresh_lit();
    let act_init_block = alloc.fresh_lit();
    let mut cnf = Cnf::new();

    // Input-literal map over the model AIG for the (U, W) frame.
    let dummy = u_lits.first().copied().unwrap_or(Lit::from_code(0));
    let mut map_uw = vec![dummy; model.aig().num_inputs()];
    for (i, &idx) in model.state_input_indices().iter().enumerate() {
        map_uw[idx] = u_lits[i];
    }
    for (j, &idx) in model.free_input_indices().iter().enumerate() {
        map_uw[idx] = w_lits[j];
    }
    // TR(U, W) → V: one copy, shared by every frame.
    {
        let mut enc = tseitin::Encoder::new(model.aig(), &map_uw);
        let next_roots = enc.encode_roots(model.next_refs(), &mut alloc, &mut cnf);
        for (i, &nl) in next_roots.iter().enumerate() {
            cnf.add_equiv(nl, v_lits[i]);
        }
        for &c in model.constraint_refs() {
            let cl = enc.encode_ref(c, &mut alloc, &mut cnf);
            cnf.add_unit(cl);
        }
        // I(U), guarded (same U/W map; init cannot mention W).
        let init_root = enc.encode_ref(model.init_ref(), &mut alloc, &mut cnf);
        cnf.add_binary(!act_init, init_root);
        // F(U), guarded (k = 0 case).
        let fu_root = enc.encode_ref(model.target_ref(), &mut alloc, &mut cnf);
        cnf.add_binary(!act_target_u, fu_root);
    }
    // F(V), guarded.
    {
        let mut map_v = vec![dummy; model.aig().num_inputs()];
        for (i, &idx) in model.state_input_indices().iter().enumerate() {
            map_v[idx] = v_lits[i];
        }
        let mut enc = tseitin::Encoder::new(model.aig(), &map_v);
        let fv_root = enc.encode_ref(model.target_ref(), &mut alloc, &mut cnf);
        cnf.add_binary(!act_target_v, fv_root);
    }
    cnf.ensure_vars(alloc.num_vars());

    let mut solver = Solver::new();
    if let Some(sink) = budget.proof_sink() {
        // The proof must witness formula (4) from its first clause.
        solver.set_proof_sink(sink);
    }
    solver.add_cnf(&cnf);
    Formula4 {
        base_vars: cnf.num_vars(),
        base_clauses: cnf.num_clauses(),
        base_lits: cnf.num_literals(),
        solver,
        u_lits,
        v_lits,
        w_lits,
        act_init,
        act_target_v,
        act_target_u,
        act_init_block,
    }
}

impl Formula4 {
    fn read_state(&self, lits: &[Lit]) -> Vec<bool> {
        lits.iter()
            .map(|&l| self.solver.lit_value_model(l).unwrap_or(false))
            .collect()
    }

    fn read_inputs(&self) -> Vec<bool> {
        self.read_state(&self.w_lits)
    }

    /// Assumption literals pinning `U` to a concrete state.
    fn assume_u(&self, state: &[bool]) -> Vec<Lit> {
        state
            .iter()
            .zip(&self.u_lits)
            .map(|(&b, &l)| if b { l } else { !l })
            .collect()
    }

    /// Adds a guarded blocking clause excluding `state` on `lits`.
    fn block_state(&mut self, guard: Lit, lits: &[Lit], state: &[bool]) {
        let mut clause = Vec::with_capacity(state.len() + 1);
        clause.push(!guard);
        for (&b, &l) in state.iter().zip(lits) {
            clause.push(if b { !l } else { l });
        }
        self.solver.add_clause(clause);
    }
}

/// An open jSAT session: formula (4), the incremental solver with its
/// learnt clauses, and the failed-state cache, all persisting across
/// [`JSatSession::check_bound`] calls.
#[derive(Debug)]
pub struct JSatSession {
    model: Model,
    semantics: Semantics,
    config: JSatConfig,
    budget: Budget,
    started: Instant,
    f4: Formula4,
    alloc: VarAlloc,
    cache: FailedCache,
    stats: JSatStats,
    total: RunStats,
    /// Incremental Unsat SAT calls made while deciding the current
    /// bound (certification accounting; reset per `check_bound`).
    bound_unsat_calls: u64,
    /// How many of them the streaming proof checker certified.
    bound_unsat_certified: u64,
}

impl JSatSession {
    /// Opens a session on `model`; the budget's wall clock starts now.
    ///
    /// Under [`Budget::certify`], formula (4) is proof-logged from its
    /// first clause and **every incremental Unsat call** of the search
    /// (initial-state selection, successor exhaustion, the k = 0
    /// degenerate query) is finalized with its failed-assumption core
    /// and checked on the fly; an Unreachable bound is certified iff
    /// all of its Unsat calls were.
    pub fn new(model: &Model, semantics: Semantics, config: JSatConfig, budget: Budget) -> Self {
        let f4 = build_formula4(model, &budget);
        let alloc = VarAlloc::starting_at(f4.solver.num_vars());
        JSatSession {
            model: model.clone(),
            semantics,
            config,
            budget,
            started: Instant::now(),
            f4,
            alloc,
            cache: FailedCache::default(),
            stats: JSatStats::default(),
            total: RunStats::default(),
            bound_unsat_calls: 0,
            bound_unsat_certified: 0,
        }
    }

    /// Cumulative jSAT search statistics across all bounds checked.
    pub fn search_stats(&self) -> &JSatStats {
        &self.stats
    }

    /// Certification bookkeeping for one incremental Unsat call: the
    /// proof must have finalized a core covered by `assumptions`.
    fn note_unsat_call(&mut self, assumptions: &[Lit]) {
        if !self.budget.certify {
            return;
        }
        self.bound_unsat_calls += 1;
        if self.f4.solver.proof_certifies(assumptions) {
            self.bound_unsat_certified += 1;
        }
    }

    /// Decides bound `k`, reusing the formula, learnt clauses and
    /// failed-state cache from earlier bounds.
    pub fn check_bound(&mut self, k: usize) -> BmcOutcome {
        self.budget.progress.on_bound("jsat", k);
        let call_start = Instant::now();
        let conflicts_before = self.f4.solver.stats().conflicts;
        let cert_before = if self.budget.certify {
            self.f4.solver.proof_summary()
        } else {
            None
        };
        self.bound_unsat_calls = 0;
        self.bound_unsat_certified = 0;
        let fault_oom = self.budget.fault_hit_engine() == sebmc_logic::fault::FaultVerdict::Oom;
        let result = if fault_oom {
            BmcResult::Unknown("budget exhausted".into())
        } else if self.budget.expired(self.started) {
            BmcResult::Unknown(self.budget.unknown_reason())
        } else {
            self.f4
                .solver
                .set_limits(self.budget.sat_limits(self.started));
            let mut frames: Vec<Frame> = Vec::new();
            let result = self.search(k, &mut frames);
            // Retire the blocking clauses of whatever frames were still
            // on the stack when the search exited (witness found or
            // budget/cancellation abort) so they don't linger into the
            // session's next bound.
            for f in frames {
                self.f4.solver.add_clause([!f.act]);
            }
            result
        };
        let stats = RunStats {
            duration: call_start.elapsed(),
            encode_vars: self.f4.base_vars,
            encode_clauses: self.f4.base_clauses,
            encode_lits: self.f4.base_lits,
            peak_formula_lits: self.f4.solver.stats().peak_live_lits,
            peak_formula_bytes: self.f4.solver.stats().peak_bytes(),
            peak_watch_bytes: self.f4.solver.stats().peak_watch_bytes,
            peak_proof_bytes: self.f4.solver.stats().peak_proof_bytes,
            solver_effort: self.f4.solver.stats().conflicts - conflicts_before,
            bounds_checked: 1,
            ..RunStats::default()
        };
        self.total.absorb(&stats);
        if let BmcResult::Reachable(Some(ref t)) = result {
            debug_assert_eq!(self.model.check_trace(t), Ok(()));
        }
        let certificate = self.bound_certificate(cert_before, &result);
        BmcOutcome {
            result,
            stats,
            certificate,
        }
    }

    /// Per-bound certificate: checker counters accumulated by this
    /// call, plus whether the bound's verdict is covered — an
    /// Unreachable bound needs every incremental Unsat call certified
    /// (or, for a top-level inconsistency, a verified empty clause); a
    /// Reachable bound needs its witness to replay.
    fn bound_certificate(
        &mut self,
        before: Option<Certificate>,
        result: &BmcResult,
    ) -> Option<Certificate> {
        if !self.budget.certify {
            return None;
        }
        let now = self.f4.solver.proof_summary().unwrap_or_default();
        let mut cert = match before {
            Some(b) => now.delta_since(&b),
            None => now,
        };
        let certified = match result {
            BmcResult::Unreachable => Some(if self.bound_unsat_calls == 0 {
                self.f4.solver.proof_certifies(&[])
            } else {
                self.bound_unsat_calls == self.bound_unsat_certified
            }),
            BmcResult::Reachable(Some(t)) => Some(self.model.check_trace(t).is_ok()),
            BmcResult::Reachable(None) => Some(false),
            BmcResult::Unknown(_) => None,
        };
        if let Some(ok) = certified {
            cert.bounds_attempted = 1;
            cert.bounds_certified = u64::from(ok);
        }
        Some(cert)
    }

    fn search(&mut self, k: usize, frames: &mut Vec<Frame>) -> BmcResult {
        // Degenerate bound: is some initial state a target state?
        if k == 0 {
            self.stats.sat_calls += 1;
            let assumptions = [self.f4.act_init, self.f4.act_target_u];
            return match self.f4.solver.solve_with(&assumptions) {
                SolveResult::Sat => {
                    let s0 = self.f4.read_state(&self.f4.u_lits);
                    BmcResult::Reachable(Some(Trace {
                        states: vec![s0],
                        inputs: vec![],
                    }))
                }
                SolveResult::Unsat => {
                    self.note_unsat_call(&assumptions);
                    BmcResult::Unreachable
                }
                SolveResult::Unknown => BmcResult::Unknown(self.budget.unknown_reason()),
            };
        }

        // Refuted-initial-state blocks from earlier bounds don't apply
        // at this bound: retire the old guard, start a fresh one.
        let retired = self.f4.act_init_block;
        self.f4.solver.add_clause([!retired]);
        self.f4.act_init_block = self.alloc.fresh_lit();
        self.f4.solver.ensure_vars(self.alloc.num_vars());

        let mut pops_since_simplify = 0u64;

        loop {
            if !self.f4.solver.is_ok() {
                // Top-level inconsistency can only mean the instance is
                // globally unsatisfiable (e.g. unsatisfiable constraints).
                return BmcResult::Unreachable;
            }
            if self.budget.expired(self.started) {
                return BmcResult::Unknown(self.budget.unknown_reason());
            }
            if frames.is_empty() {
                // Select a (new) initial state.
                self.stats.sat_calls += 1;
                let assumptions = [self.f4.act_init, self.f4.act_init_block];
                match self.f4.solver.solve_with(&assumptions) {
                    SolveResult::Sat => {
                        let s0 = self.f4.read_state(&self.f4.u_lits);
                        // Block it as an initial choice for when we return.
                        let guard = self.f4.act_init_block;
                        self.f4.block_state(guard, &self.f4.u_lits.clone(), &s0);
                        if self.semantics == Semantics::Within && self.model.eval_target(&s0) {
                            return BmcResult::Reachable(Some(Trace {
                                states: vec![s0],
                                inputs: vec![],
                            }));
                        }
                        if self.config.use_failed_cache
                            && self.cache.is_hopeless(self.semantics, &s0, k)
                        {
                            self.stats.cache_hits += 1;
                            continue;
                        }
                        let act = self.alloc.fresh_lit();
                        self.f4.solver.ensure_vars(self.alloc.num_vars());
                        frames.push(Frame {
                            state: s0,
                            inputs_from_pred: Vec::new(),
                            act,
                        });
                        self.stats.max_depth = self.stats.max_depth.max(frames.len());
                    }
                    SolveResult::Unsat => {
                        // No unblocked initial state remains: the bound
                        // is exhausted. Certify this very call.
                        self.note_unsat_call(&assumptions);
                        return BmcResult::Unreachable;
                    }
                    SolveResult::Unknown => {
                        return BmcResult::Unknown(self.budget.unknown_reason())
                    }
                }
                continue;
            }

            let depth = frames.len() - 1; // steps taken so far
            let frontier_state = frames.last().expect("non-empty").state.clone();
            let frontier_act = frames.last().expect("non-empty").act;
            // Ask for a successor: U = σ_depth, this frame's blocking
            // clauses active, F(V) required at the final step.
            let mut assumptions = self.f4.assume_u(&frontier_state);
            assumptions.push(frontier_act);
            if depth + 1 == k {
                assumptions.push(self.f4.act_target_v);
            }
            self.stats.sat_calls += 1;
            match self.f4.solver.solve_with(&assumptions) {
                SolveResult::Sat => {
                    self.stats.successors += 1;
                    let succ = self.f4.read_state(&self.f4.v_lits);
                    let step_inputs = self.f4.read_inputs();
                    // Never offer this successor again at this frame.
                    self.f4
                        .block_state(frontier_act, &self.f4.v_lits.clone(), &succ);
                    let reached_target = if depth + 1 == k {
                        true // act_target_v was assumed
                    } else {
                        self.semantics == Semantics::Within && self.model.eval_target(&succ)
                    };
                    if reached_target {
                        let mut states: Vec<Vec<bool>> =
                            frames.iter().map(|f| f.state.clone()).collect();
                        let mut inputs: Vec<Vec<bool>> = frames
                            .iter()
                            .skip(1)
                            .map(|f| f.inputs_from_pred.clone())
                            .collect();
                        states.push(succ);
                        inputs.push(step_inputs);
                        return BmcResult::Reachable(Some(Trace { states, inputs }));
                    }
                    let remaining = k - (depth + 1);
                    if self.config.use_failed_cache
                        && self.cache.is_hopeless(self.semantics, &succ, remaining)
                    {
                        self.stats.cache_hits += 1;
                        continue;
                    }
                    let act = self.alloc.fresh_lit();
                    self.f4.solver.ensure_vars(self.alloc.num_vars());
                    frames.push(Frame {
                        state: succ,
                        inputs_from_pred: step_inputs,
                        act,
                    });
                    self.stats.max_depth = self.stats.max_depth.max(frames.len());
                }
                SolveResult::Unsat => {
                    // σ_depth is exhausted for its remaining budget.
                    self.note_unsat_call(&assumptions);
                    let popped = frames.pop().expect("non-empty");
                    self.stats.backtracks += 1;
                    if self.config.use_failed_cache {
                        if self.cache.len() >= self.config.max_cache_entries {
                            self.cache.clear();
                        }
                        self.cache.record(self.semantics, &popped.state, k - depth);
                    }
                    // Retire the frame's blocking clauses and
                    // periodically reclaim their memory.
                    self.f4.solver.add_clause([!popped.act]);
                    pops_since_simplify += 1;
                    if pops_since_simplify >= self.config.simplify_interval {
                        let before = self.f4.solver.clause_db_resident_bytes();
                        self.f4.solver.simplify();
                        let after = self.f4.solver.clause_db_resident_bytes();
                        self.stats.simplify_runs += 1;
                        self.stats.reclaimed_bytes += before.saturating_sub(after) as u64;
                        pops_since_simplify = 0;
                    }
                }
                SolveResult::Unknown => return BmcResult::Unknown(self.budget.unknown_reason()),
            }
        }
    }
}

impl Session for JSatSession {
    fn name(&self) -> &'static str {
        "jsat"
    }

    fn semantics(&self) -> Semantics {
        self.semantics
    }

    fn check_bound(&mut self, k: usize) -> BmcOutcome {
        JSatSession::check_bound(self, k)
    }

    fn set_cancel(&mut self, token: crate::engine::CancelToken) {
        self.budget.cancel = token;
    }

    fn cumulative_stats(&self) -> RunStats {
        self.total.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_model::builders::{
        counter_with_reset, johnson_counter, lfsr, peterson, shift_register, token_ring,
        traffic_light,
    };
    use sebmc_model::explicit;

    fn check_all_bounds(model: &sebmc_model::Model, max_k: usize, semantics: Semantics) {
        let mut e = JSat::default();
        for k in 0..=max_k {
            let got = e.check(model, k, semantics);
            let expect = match semantics {
                Semantics::Exactly => explicit::reachable_in_exactly(model, k),
                Semantics::Within => explicit::reachable_within(model, k),
            };
            assert_eq!(
                got.result.is_reachable(),
                expect,
                "model {} bound {k} ({semantics})",
                model.name()
            );
            assert!(!got.result.is_unknown());
            if let Some(t) = got.result.witness() {
                assert_eq!(model.check_trace(t), Ok(()), "witness at bound {k}");
                match semantics {
                    Semantics::Exactly => assert_eq!(t.len(), k),
                    Semantics::Within => assert!(t.len() <= k),
                }
            }
        }
    }

    #[test]
    fn counter_exact_matches_oracle() {
        check_all_bounds(&counter_with_reset(3), 9, Semantics::Exactly);
    }

    #[test]
    fn counter_within_matches_oracle() {
        check_all_bounds(&counter_with_reset(3), 9, Semantics::Within);
    }

    #[test]
    fn shift_register_both_semantics() {
        check_all_bounds(&shift_register(4), 6, Semantics::Exactly);
        check_all_bounds(&shift_register(4), 6, Semantics::Within);
    }

    #[test]
    fn lfsr_needle_exact() {
        check_all_bounds(&lfsr(4, 6), 8, Semantics::Exactly);
    }

    #[test]
    fn johnson_periodicity() {
        check_all_bounds(&johnson_counter(4), 13, Semantics::Exactly);
    }

    #[test]
    fn unsat_families_are_unreachable() {
        check_all_bounds(&traffic_light(), 6, Semantics::Exactly);
        check_all_bounds(&peterson(), 5, Semantics::Within);
    }

    #[test]
    fn token_ring_within() {
        check_all_bounds(&token_ring(4), 6, Semantics::Within);
    }

    /// The same sweep through one persistent session: the formula,
    /// learnt clauses and cache survive between bounds, and the
    /// verdicts must still match the oracle at every bound.
    #[test]
    fn session_sweep_matches_oracle() {
        for semantics in [Semantics::Exactly, Semantics::Within] {
            let m = counter_with_reset(3);
            let mut session =
                JSatSession::new(&m, semantics, JSatConfig::default(), Budget::none());
            for k in 0..=9 {
                let got = session.check_bound(k);
                let expect = match semantics {
                    Semantics::Exactly => explicit::reachable_in_exactly(&m, k),
                    Semantics::Within => explicit::reachable_within(&m, k),
                };
                assert_eq!(got.result.is_reachable(), expect, "bound {k} ({semantics})");
                if let Some(t) = got.result.witness() {
                    assert_eq!(m.check_trace(t), Ok(()));
                }
            }
            assert_eq!(session.cumulative_stats().bounds_checked, 10);
        }
    }

    /// Revisiting bounds in arbitrary order must stay sound even though
    /// refuted-initial-state blocks are retired per bound.
    #[test]
    fn session_bounds_any_order() {
        let m = lfsr(4, 6);
        let mut session = JSatSession::new(
            &m,
            Semantics::Exactly,
            JSatConfig::default(),
            Budget::none(),
        );
        assert!(session.check_bound(6).result.is_reachable());
        assert!(session.check_bound(5).result.is_unreachable());
        assert!(session.check_bound(6).result.is_reachable(), "re-query");
        assert!(session.check_bound(7).result.is_unreachable());
    }

    #[test]
    fn cache_ablation_agrees() {
        let m = counter_with_reset(3);
        let mut with = JSat::default();
        let mut without = JSat::with_config(
            Budget::none(),
            JSatConfig {
                use_failed_cache: false,
                ..JSatConfig::default()
            },
        );
        for k in 0..8 {
            let a = with.check(&m, k, Semantics::Exactly).result.is_reachable();
            let b = without
                .check(&m, k, Semantics::Exactly)
                .result
                .is_reachable();
            assert_eq!(a, b, "bound {k}");
        }
    }

    #[test]
    fn cache_reduces_sat_calls_on_unsat() {
        let m = counter_with_reset(3);
        // Bound 6 < 7 is UNSAT and forces full exhaustion.
        let mut with = JSat::default();
        with.check(&m, 6, Semantics::Exactly);
        let calls_with = with.jsat_stats().sat_calls;
        let mut without = JSat::with_config(
            Budget::none(),
            JSatConfig {
                use_failed_cache: false,
                ..JSatConfig::default()
            },
        );
        without.check(&m, 6, Semantics::Exactly);
        let calls_without = without.jsat_stats().sat_calls;
        assert!(
            calls_with <= calls_without,
            "cache must not increase SAT calls ({calls_with} vs {calls_without})"
        );
    }

    /// Deepening 0..=k in one session must not need more SAT calls
    /// than fresh one-shot runs: the cache carries refutations across
    /// bounds.
    #[test]
    fn session_reuse_prunes_on_unsat_sweep() {
        let m = counter_with_reset(3);
        let max_k = 6; // all UNSAT below 7
        let mut session = JSatSession::new(
            &m,
            Semantics::Exactly,
            JSatConfig::default(),
            Budget::none(),
        );
        for k in 0..=max_k {
            assert!(session.check_bound(k).result.is_unreachable());
        }
        let session_calls = session.search_stats().sat_calls;
        let mut oneshot_calls = 0;
        for k in 0..=max_k {
            let mut e = JSat::default();
            assert!(e.check(&m, k, Semantics::Exactly).result.is_unreachable());
            oneshot_calls += e.jsat_stats().sat_calls;
        }
        assert!(
            session_calls <= oneshot_calls,
            "session sweep used {session_calls} SAT calls vs {oneshot_calls} one-shot"
        );
    }

    /// A certified jSAT session: every incremental Unsat call of an
    /// Unreachable bound is proof-checked, Sat bounds replay, and the
    /// heavy blocking-clause churn (adds, retirements, simplify GC)
    /// keeps the deletion log perfectly in sync.
    #[test]
    fn certified_session_checks_every_unsat_call() {
        for semantics in [Semantics::Exactly, Semantics::Within] {
            let m = counter_with_reset(3);
            let mut session = JSatSession::new(
                &m,
                semantics,
                JSatConfig {
                    simplify_interval: 4, // eager GC: stress the log
                    ..JSatConfig::default()
                },
                Budget::none().with_certify(true),
            );
            for k in 0..=8 {
                let out = session.check_bound(k);
                assert!(!out.result.is_unknown());
                let cert = out.certificate.as_ref().expect("certificate attached");
                assert!(cert.fully_certified(), "bound {k} ({semantics}): {cert:?}");
                assert_eq!(cert.missing_deletes, 0, "deletion log in sync");
                if out.result.is_unreachable() {
                    assert!(cert.unsat_proofs > 0, "Unsat calls were finalized");
                }
            }
        }
    }

    #[test]
    fn uncertified_session_attaches_nothing() {
        let m = shift_register(4);
        let mut session = JSatSession::new(
            &m,
            Semantics::Exactly,
            JSatConfig::default(),
            Budget::none(),
        );
        let out = session.check_bound(4);
        assert!(out.certificate.is_none());
        assert_eq!(out.stats.peak_proof_bytes, 0);
    }

    #[test]
    fn timeout_gives_unknown() {
        let m = sebmc_model::builders::random_fsm(20, 2, 11);
        let mut e = JSat::with_budget(Budget::with_timeout(std::time::Duration::from_nanos(1)));
        assert!(e.check(&m, 10, Semantics::Exactly).result.is_unknown());
    }

    /// The arena-refactor acceptance check at the jSAT level: an UNSAT
    /// sweep with heavy backtracking retires blocking clauses behind
    /// their activation literals, and the solver's compacting GC must
    /// *physically* reclaim them — shrinking the resident clause
    /// database, where the seed solver only tombstoned.
    #[test]
    fn retired_blocking_clauses_are_physically_reclaimed() {
        let m = counter_with_reset(8);
        let mut e = JSat::with_config(
            Budget::none(),
            JSatConfig {
                // No failed-state cache: maximal path enumeration and
                // therefore maximal blocking-clause churn. Simplify
                // eagerly so retirement is observable per backtrack.
                use_failed_cache: false,
                simplify_interval: 8,
                ..JSatConfig::default()
            },
        );
        let out = e.check(&m, 10, Semantics::Exactly);
        assert!(out.result.is_unreachable(), "8-bit counter needs 255 steps");
        let st = e.jsat_stats().clone();
        assert!(st.backtracks > 0, "the sweep must backtrack");
        assert!(st.simplify_runs > 0, "simplify must have run");
        assert!(
            st.reclaimed_bytes > 0,
            "GC must shrink resident clause-database bytes \
             ({} simplify runs, {} backtracks)",
            st.simplify_runs,
            st.backtracks
        );
        assert!(out.stats.peak_formula_bytes > 0, "exact bytes reported");
        assert!(
            out.stats.peak_watch_bytes > 0,
            "watch-storage bytes reported alongside arena bytes"
        );
    }

    #[test]
    fn memory_stays_flat_across_bounds() {
        // The paper's headline: jSAT's formula does not grow with k.
        let m = counter_with_reset(3);
        let mut e = JSat::default();
        let s1 = e.check(&m, 7, Semantics::Exactly).stats;
        let s2 = e.check(&m, 7 + 4, Semantics::Exactly).stats;
        assert_eq!(
            s1.encode_lits, s2.encode_lits,
            "formula (4) is independent of the bound"
        );
    }

    #[test]
    fn stats_populated() {
        let m = shift_register(4);
        let mut e = JSat::default();
        let out = e.check(&m, 4, Semantics::Exactly);
        assert!(out.result.is_reachable());
        assert!(e.jsat_stats().sat_calls > 0);
        assert!(e.jsat_stats().max_depth >= 4);
        assert!(out.stats.peak_formula_lits > 0);
    }
}
