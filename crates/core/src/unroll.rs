//! Formulation (1): classical BMC by unrolling the transition relation.
//!
//! `R_k(Z₀,…,Z_k) = I(Z₀) ∧ F(Z_k) ∧ ⋀_{i<k} TR(Zᵢ, Zᵢ₊₁)`
//!
//! The formula contains **k copies of `TR`** — the memory behaviour the
//! paper sets out to avoid. [`encode_unrolled`] builds the CNF (each
//! frame is an independent Tseitin instantiation of the transition
//! cone, exactly like a 2005 bounded model checker), and [`UnrollSat`]
//! solves it with the CDCL solver.

use sebmc_logic::{tseitin, Cnf, Lit, VarAlloc};
use sebmc_model::{Model, Trace};

use crate::engine::{BmcOutcome, BoundedChecker, Budget, Engine, Semantics, Session};
use crate::inc_unroll::IncrementalUnroll;

/// The unrolled CNF together with the variable maps needed to decode
/// witnesses.
#[derive(Debug)]
pub struct UnrolledCnf {
    /// The formula.
    pub cnf: Cnf,
    /// `state_lits[t][i]`: literal of state variable `i` at frame `t`
    /// (`t = 0..=k`).
    pub state_lits: Vec<Vec<Lit>>,
    /// `input_lits[t][j]`: literal of input `j` at step `t`
    /// (`t = 0..k`).
    pub input_lits: Vec<Vec<Lit>>,
}

impl UnrolledCnf {
    /// Number of frames (`k + 1`).
    pub fn num_frames(&self) -> usize {
        self.state_lits.len()
    }

    /// Decodes a witness trace from a satisfying assignment, truncating
    /// at the first target frame under [`Semantics::Within`].
    pub fn decode_trace(
        &self,
        model: &Model,
        semantics: Semantics,
        value: impl Fn(Lit) -> bool,
    ) -> Trace {
        let states: Vec<Vec<bool>> = self
            .state_lits
            .iter()
            .map(|frame| frame.iter().map(|&l| value(l)).collect())
            .collect();
        let inputs: Vec<Vec<bool>> = self
            .input_lits
            .iter()
            .map(|frame| frame.iter().map(|&l| value(l)).collect())
            .collect();
        let mut trace = Trace { states, inputs };
        if semantics == Semantics::Within {
            if let Some(t) = trace.states.iter().position(|s| model.eval_target(s)) {
                trace.states.truncate(t + 1);
                trace.inputs.truncate(t);
            }
        }
        trace
    }
}

/// Builds the input-literal map for one frame: state variables bound to
/// `states`, free inputs bound to `inputs` (or to a harmless dummy when
/// the cone cannot mention them).
fn frame_map(model: &Model, states: &[Lit], inputs: Option<&[Lit]>) -> Vec<Lit> {
    let dummy = states.first().copied().unwrap_or(Lit::from_code(0));
    let mut map = vec![dummy; model.aig().num_inputs()];
    for (i, &idx) in model.state_input_indices().iter().enumerate() {
        map[idx] = states[i];
    }
    if let Some(ins) = inputs {
        for (j, &idx) in model.free_input_indices().iter().enumerate() {
            map[idx] = ins[j];
        }
    }
    map
}

/// Encodes bounded reachability at bound `k` as the classical unrolled
/// CNF (formulation (1) of the paper).
///
/// Under [`Semantics::Within`] the target disjunction ranges over every
/// frame; under [`Semantics::Exactly`] only frame `k` is constrained.
pub fn encode_unrolled(model: &Model, k: usize, semantics: Semantics) -> UnrolledCnf {
    let n = model.num_state_vars();
    let m = model.num_inputs();
    let mut alloc = VarAlloc::new();
    let state_lits: Vec<Vec<Lit>> = (0..=k).map(|_| alloc.fresh_lits(n)).collect();
    let input_lits: Vec<Vec<Lit>> = (0..k).map(|_| alloc.fresh_lits(m)).collect();
    let mut cnf = Cnf::new();

    // I(Z0).
    {
        let map = frame_map(model, &state_lits[0], None);
        let mut enc = tseitin::Encoder::new(model.aig(), &map);
        let root = enc.encode_ref(model.init_ref(), &mut alloc, &mut cnf);
        cnf.add_unit(root);
    }

    let mut target_lits: Vec<Lit> = Vec::new();

    // One copy of TR per step: Z_{t+1} = next(Z_t, W_t) plus constraints.
    for t in 0..k {
        let map = frame_map(model, &state_lits[t], Some(&input_lits[t]));
        let mut enc = tseitin::Encoder::new(model.aig(), &map);
        let next_roots = enc.encode_roots(model.next_refs(), &mut alloc, &mut cnf);
        for (i, &nl) in next_roots.iter().enumerate() {
            cnf.add_equiv(nl, state_lits[t + 1][i]);
        }
        for &c in model.constraint_refs() {
            let cl = enc.encode_ref(c, &mut alloc, &mut cnf);
            cnf.add_unit(cl);
        }
        if semantics == Semantics::Within {
            let tl = enc.encode_ref(model.target_ref(), &mut alloc, &mut cnf);
            target_lits.push(tl);
        }
    }

    // F at the last frame (and, for Within, at every frame).
    {
        let map = frame_map(model, &state_lits[k], None);
        let mut enc = tseitin::Encoder::new(model.aig(), &map);
        let tl = enc.encode_ref(model.target_ref(), &mut alloc, &mut cnf);
        target_lits.push(tl);
    }
    match semantics {
        Semantics::Exactly => {
            let last = *target_lits.last().expect("frame k target encoded");
            cnf.add_unit(last);
        }
        Semantics::Within => {
            cnf.add_clause(target_lits);
        }
    }
    cnf.ensure_vars(alloc.num_vars());

    UnrolledCnf {
        cnf,
        state_lits,
        input_lits,
    }
}

/// Formulation (1) engine: unrolled CNF solved with CDCL — the paper's
/// classical-BMC baseline, incrementally unrolled.
///
/// [`Engine::start`] opens an [`IncrementalUnroll`] session: one CDCL
/// solver whose frames are appended as the bound grows, with per-bound
/// target activation literals, so a deepening loop never re-encodes.
/// The monolithic formulation-(1) formula remains available through
/// [`encode_unrolled`] for the paper's formula-size experiments.
///
/// ```
/// use sebmc::{BoundedChecker, Semantics, UnrollSat};
/// use sebmc_model::builders::shift_register;
///
/// let model = shift_register(4);
/// let mut engine = UnrollSat::default();
/// assert!(engine.check(&model, 4, Semantics::Exactly).result.is_reachable());
/// assert!(engine.check(&model, 3, Semantics::Exactly).result.is_unreachable());
/// ```
#[derive(Debug, Default)]
pub struct UnrollSat {
    /// Default budget for one-shot [`BoundedChecker::check`] calls (the
    /// session path takes an explicit [`Budget`]).
    pub budget: Budget,
}

impl UnrollSat {
    /// Creates the engine with the given default budget.
    pub fn with_budget(budget: Budget) -> Self {
        UnrollSat { budget }
    }
}

impl Engine for UnrollSat {
    fn name(&self) -> &'static str {
        "sat-unroll"
    }

    fn start(&self, model: &Model, semantics: Semantics, budget: Budget) -> Box<dyn Session> {
        crate::reduce::start_with_reduction(model, semantics, budget, |m, sem, b| {
            Box::new(IncrementalUnroll::with_budget(m, sem, b))
        })
    }

    fn default_budget(&self) -> Budget {
        self.budget.clone()
    }
}

impl BoundedChecker for UnrollSat {
    fn name(&self) -> &'static str {
        Engine::name(self)
    }

    fn check(&mut self, model: &Model, k: usize, semantics: Semantics) -> BmcOutcome {
        crate::engine::one_shot(self, model, k, semantics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_model::builders::{
        counter_with_reset, johnson_counter, lfsr, shift_register, traffic_light,
    };
    use sebmc_model::explicit;

    #[test]
    fn counter_exact_bounds_match_oracle() {
        let m = counter_with_reset(3);
        let mut e = UnrollSat::default();
        for k in 0..10 {
            let got = e.check(&m, k, Semantics::Exactly).result.is_reachable();
            let expect = explicit::reachable_in_exactly(&m, k);
            assert_eq!(got, expect, "bound {k}");
        }
    }

    #[test]
    fn counter_within_bounds_match_oracle() {
        let m = counter_with_reset(3);
        let mut e = UnrollSat::default();
        for k in 0..10 {
            let got = e.check(&m, k, Semantics::Within).result.is_reachable();
            assert_eq!(got, explicit::reachable_within(&m, k), "bound {k}");
        }
    }

    #[test]
    fn witnesses_validate_and_have_right_length() {
        let m = shift_register(5);
        let mut e = UnrollSat::default();
        let out = e.check(&m, 7, Semantics::Exactly);
        let trace = out.result.witness().expect("witness").clone();
        assert_eq!(trace.len(), 7);
        assert_eq!(m.check_trace(&trace), Ok(()));

        let out = e.check(&m, 7, Semantics::Within);
        let trace = out.result.witness().expect("witness").clone();
        assert!(trace.len() <= 7, "within-witness no longer than the bound");
        assert!(
            m.eval_target(trace.states.last().expect("non-empty")),
            "within-witness ends at the target"
        );
        assert!(
            trace.states[..trace.states.len() - 1]
                .iter()
                .all(|s| !m.eval_target(s)),
            "within-witness truncated at the first hit"
        );
        assert_eq!(m.check_trace(&trace), Ok(()));
    }

    #[test]
    fn unsat_family_is_unreachable() {
        let m = traffic_light();
        let mut e = UnrollSat::default();
        for k in 0..8 {
            assert!(
                e.check(&m, k, Semantics::Within).result.is_unreachable(),
                "bound {k}"
            );
        }
    }

    #[test]
    fn autonomous_needle_is_exact() {
        let m = lfsr(4, 6);
        let mut e = UnrollSat::default();
        assert!(e.check(&m, 6, Semantics::Exactly).result.is_reachable());
        assert!(e.check(&m, 5, Semantics::Exactly).result.is_unreachable());
        assert!(e.check(&m, 7, Semantics::Exactly).result.is_unreachable());
        assert!(e.check(&m, 7, Semantics::Within).result.is_reachable());
    }

    #[test]
    fn k_zero_handled() {
        // Johnson counter: initial state (all zeros) is not the target.
        let m = johnson_counter(4);
        let mut e = UnrollSat::default();
        assert!(e.check(&m, 0, Semantics::Exactly).result.is_unreachable());
        assert!(e.check(&m, 0, Semantics::Within).result.is_unreachable());
    }

    #[test]
    fn formula_grows_by_tr_per_frame() {
        let m = counter_with_reset(4);
        let e4 = encode_unrolled(&m, 4, Semantics::Exactly);
        let e5 = encode_unrolled(&m, 5, Semantics::Exactly);
        let e6 = encode_unrolled(&m, 6, Semantics::Exactly);
        let d1 = e5.cnf.num_literals() - e4.cnf.num_literals();
        let d2 = e6.cnf.num_literals() - e5.cnf.num_literals();
        assert_eq!(d1, d2, "per-frame growth is constant (one TR copy)");
        assert!(d1 > 0);
    }

    #[test]
    fn timeout_gives_unknown() {
        // A SAT instance that needs real decisions (input choices), so
        // level-0 propagation cannot decide it before the deadline hits.
        let m = shift_register(16);
        let mut e =
            UnrollSat::with_budget(Budget::with_timeout(std::time::Duration::from_nanos(1)));
        let out = e.check(&m, 16, Semantics::Exactly);
        assert!(out.result.is_unknown(), "got {}", out.result);
    }

    #[test]
    fn stats_are_populated() {
        let m = shift_register(4);
        let mut e = UnrollSat::default();
        let out = e.check(&m, 4, Semantics::Exactly);
        assert!(out.stats.encode_clauses > 0);
        assert!(out.stats.encode_lits > 0);
        assert!(out.stats.peak_formula_lits > 0);
    }
}
