//! Iterative-deepening BMC driver over the session API.
//!
//! The paper frames complete model checking as increasing the bound
//! "iteratively up to the length of the longest simple path". This
//! driver opens **one** [`Session`](crate::Session) and runs that loop
//! over it, so every bound reuses the engine's solver and encoding
//! state — incremental unrolling keeps its frames and learnt clauses,
//! jSAT keeps formula (4) and its failed-state cache. It stops at the
//! first witness, the session budget, or the requested maximum bound.

use sebmc_model::Model;

use crate::engine::{BmcOutcome, BmcResult, Budget, Engine, RunStats, Semantics};

/// Result of an iterative-deepening run. Every variant carries the
/// session's cumulative statistics across all bounds it checked.
// The witness-carrying variant dominates the enum's size, but one
// `DeepeningResult` exists per deepening run (never collections of
// them), so boxing the outcome would buy nothing and cost every
// caller an indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum DeepeningResult {
    /// A witness was found at the given bound (the minimal one, since
    /// bounds are tried in increasing order under exact semantics).
    FoundAt {
        /// The bound at which the witness appeared.
        bound: usize,
        /// The engine outcome at that bound.
        outcome: BmcOutcome,
        /// Cumulative session stats over bounds `0..=bound`.
        total: RunStats,
    },
    /// Every bound up to `max_bound` is unreachable.
    ExhaustedBounds {
        /// The largest bound checked.
        max_bound: usize,
        /// Cumulative session stats over all bounds.
        total: RunStats,
    },
    /// The engine returned Unknown (budget or cancellation) at the
    /// given bound.
    GaveUpAt {
        /// The bound at which the engine gave up.
        bound: usize,
        /// Why.
        reason: String,
        /// Cumulative session stats up to the give-up point.
        total: RunStats,
    },
}

impl DeepeningResult {
    /// The witness bound, if one was found.
    pub fn found_bound(&self) -> Option<usize> {
        match self {
            DeepeningResult::FoundAt { bound, .. } => Some(*bound),
            _ => None,
        }
    }

    /// The cumulative session stats, whatever the verdict.
    pub fn total_stats(&self) -> &RunStats {
        match self {
            DeepeningResult::FoundAt { total, .. }
            | DeepeningResult::ExhaustedBounds { total, .. }
            | DeepeningResult::GaveUpAt { total, .. } => total,
        }
    }
}

/// Opens one session of `engine` on `model` under `budget` and checks
/// bounds `0..=max_bound` (exact semantics) until a witness is found,
/// a bound fails with Unknown, or the budget runs out.
///
/// ```
/// use sebmc::{find_shortest_witness, Budget, DeepeningResult, UnrollSat};
/// use sebmc_model::builders::shift_register;
///
/// let model = shift_register(4);
/// let r = find_shortest_witness(&UnrollSat::default(), &model, 10, Budget::none());
/// assert_eq!(r.found_bound(), Some(4));
/// assert_eq!(r.total_stats().bounds_checked, 5); // bounds 0..=4
/// ```
pub fn find_shortest_witness(
    engine: &dyn Engine,
    model: &Model,
    max_bound: usize,
    budget: Budget,
) -> DeepeningResult {
    let mut session = engine.start(model, Semantics::Exactly, budget);
    for k in 0..=max_bound {
        let outcome = session.check_bound(k);
        match outcome.result {
            BmcResult::Reachable(_) => {
                return DeepeningResult::FoundAt {
                    bound: k,
                    total: session.cumulative_stats(),
                    outcome,
                }
            }
            BmcResult::Unreachable => {}
            BmcResult::Unknown(ref why) => {
                return DeepeningResult::GaveUpAt {
                    bound: k,
                    reason: why.clone(),
                    total: session.cumulative_stats(),
                }
            }
        }
    }
    DeepeningResult::ExhaustedBounds {
        max_bound,
        total: session.cumulative_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsat::JSat;
    use crate::unroll::UnrollSat;
    use sebmc_model::builders::{shift_register, traffic_light};
    use sebmc_model::explicit;
    use std::time::Duration;

    #[test]
    fn finds_minimal_bound_with_unroll() {
        let m = shift_register(4);
        let r = find_shortest_witness(&UnrollSat::default(), &m, 10, Budget::none());
        assert_eq!(r.found_bound(), Some(4));
        assert_eq!(explicit::min_steps_to_target(&m, 10), Some(4));
    }

    #[test]
    fn finds_minimal_bound_with_jsat() {
        let m = shift_register(4);
        let r = find_shortest_witness(&JSat::default(), &m, 10, Budget::none());
        assert_eq!(r.found_bound(), Some(4));
        if let DeepeningResult::FoundAt { outcome, total, .. } = r {
            let t = outcome.result.witness().expect("jsat gives witnesses");
            assert_eq!(t.len(), 4);
            assert_eq!(total.bounds_checked, 5);
        }
    }

    #[test]
    fn exhausts_bounds_on_unsat_instance() {
        let m = traffic_light();
        let r = find_shortest_witness(&UnrollSat::default(), &m, 6, Budget::none());
        assert!(matches!(
            r,
            DeepeningResult::ExhaustedBounds { max_bound: 6, .. }
        ));
        assert_eq!(r.found_bound(), None);
        assert_eq!(r.total_stats().bounds_checked, 7);
    }

    #[test]
    fn global_timeout_stops_early() {
        let m = traffic_light();
        let r = find_shortest_witness(
            &UnrollSat::default(),
            &m,
            1000,
            Budget::with_timeout(Duration::ZERO),
        );
        assert!(matches!(r, DeepeningResult::GaveUpAt { .. }));
    }

    #[test]
    fn cancellation_stops_the_loop() {
        let m = traffic_light();
        let budget = Budget::none();
        budget.cancel.cancel();
        let r = find_shortest_witness(&JSat::default(), &m, 1000, budget);
        match r {
            DeepeningResult::GaveUpAt { reason, .. } => assert_eq!(reason, "cancelled"),
            other => panic!("expected GaveUpAt, got {other:?}"),
        }
    }
}
