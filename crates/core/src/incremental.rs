//! Iterative-deepening BMC driver.
//!
//! The paper frames complete model checking as increasing the bound
//! "iteratively up to the length of the longest simple path". This
//! driver runs that loop over any [`BoundedChecker`], stopping at the
//! first witness, a global budget, or the requested maximum bound.

use std::time::{Duration, Instant};

use sebmc_model::Model;

use crate::engine::{BmcOutcome, BmcResult, BoundedChecker, Semantics};

/// Result of an iterative-deepening run.
#[derive(Debug)]
pub enum DeepeningResult {
    /// A witness was found at the given bound (the minimal one, since
    /// bounds are tried in increasing order under exact semantics).
    FoundAt {
        /// The bound at which the witness appeared.
        bound: usize,
        /// The engine outcome at that bound.
        outcome: BmcOutcome,
    },
    /// Every bound up to `max_bound` is unreachable.
    ExhaustedBounds {
        /// The largest bound checked.
        max_bound: usize,
    },
    /// The engine returned Unknown (budget) at the given bound.
    GaveUpAt {
        /// The bound at which the engine gave up.
        bound: usize,
        /// Why.
        reason: String,
    },
}

impl DeepeningResult {
    /// The witness bound, if one was found.
    pub fn found_bound(&self) -> Option<usize> {
        match self {
            DeepeningResult::FoundAt { bound, .. } => Some(*bound),
            _ => None,
        }
    }
}

/// Runs `engine` at bounds `0..=max_bound` (exact semantics) until a
/// witness is found, a bound fails with Unknown, or the optional global
/// timeout expires.
pub fn find_shortest_witness(
    engine: &mut dyn BoundedChecker,
    model: &Model,
    max_bound: usize,
    global_timeout: Option<Duration>,
) -> DeepeningResult {
    let start = Instant::now();
    for k in 0..=max_bound {
        if let Some(t) = global_timeout {
            if start.elapsed() >= t {
                return DeepeningResult::GaveUpAt {
                    bound: k,
                    reason: "global timeout".into(),
                };
            }
        }
        let outcome = engine.check(model, k, Semantics::Exactly);
        match outcome.result {
            BmcResult::Reachable(_) => return DeepeningResult::FoundAt { bound: k, outcome },
            BmcResult::Unreachable => {}
            BmcResult::Unknown(ref why) => {
                return DeepeningResult::GaveUpAt {
                    bound: k,
                    reason: why.clone(),
                }
            }
        }
    }
    DeepeningResult::ExhaustedBounds { max_bound }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsat::JSat;
    use crate::unroll::UnrollSat;
    use sebmc_model::builders::{shift_register, traffic_light};
    use sebmc_model::explicit;

    #[test]
    fn finds_minimal_bound_with_unroll() {
        let m = shift_register(4);
        let mut e = UnrollSat::default();
        let r = find_shortest_witness(&mut e, &m, 10, None);
        assert_eq!(r.found_bound(), Some(4));
        assert_eq!(explicit::min_steps_to_target(&m, 10), Some(4));
    }

    #[test]
    fn finds_minimal_bound_with_jsat() {
        let m = shift_register(4);
        let mut e = JSat::default();
        let r = find_shortest_witness(&mut e, &m, 10, None);
        assert_eq!(r.found_bound(), Some(4));
        if let DeepeningResult::FoundAt { outcome, .. } = r {
            let t = outcome.result.witness().expect("jsat gives witnesses");
            assert_eq!(t.len(), 4);
        }
    }

    #[test]
    fn exhausts_bounds_on_unsat_instance() {
        let m = traffic_light();
        let mut e = UnrollSat::default();
        let r = find_shortest_witness(&mut e, &m, 6, None);
        assert!(matches!(
            r,
            DeepeningResult::ExhaustedBounds { max_bound: 6 }
        ));
        assert_eq!(r.found_bound(), None);
    }

    #[test]
    fn global_timeout_stops_early() {
        let m = traffic_light();
        let mut e = UnrollSat::default();
        let r = find_shortest_witness(&mut e, &m, 1000, Some(Duration::ZERO));
        assert!(matches!(r, DeepeningResult::GaveUpAt { .. }));
    }
}
