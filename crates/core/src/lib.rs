//! Space-efficient bounded model checking — a from-scratch Rust
//! reproduction of *"Space-Efficient Bounded Model Checking"* (Jacob
//! Katz, Ziyad Hanna, Nachum Dershowitz; DATE 2005).
//!
//! Classical BMC (formulation (1)) unrolls the transition relation `k`
//! times, so its formula carries `k` copies of `TR` — the memory
//! explosion the paper attacks. The paper's alternatives keep **one**
//! copy:
//!
//! | Formulation | Module | Engine | Growth per bound |
//! |---|---|---|---|
//! | (1) unrolled CNF | [`unroll`] | [`UnrollSat`] | Θ(\|TR\|) |
//! | (2) linear QBF | [`qbf_enc`] | [`QbfLinear`] | Θ(n), constant #∀ |
//! | (3) iterative squaring | [`squaring`] | [`QbfSquaring`] | log₂ k iterations, growing #∀ |
//! | (4) jSAT | [`jsat`] | [`JSat`] | constant formula |
//!
//! All engines implement [`Engine`]: [`Engine::start`] opens a
//! [`Session`] bound to one model, [`Semantics`] and [`Budget`] (the
//! paper's per-instance 300 s / 1 GB protocol, byte-accurate, plus a
//! shared [`CancelToken`]), and [`Session::check_bound`] decides a
//! *sequence* of bounds while engine state — solvers, learnt clauses,
//! caches — persists between them. The legacy one-shot
//! [`BoundedChecker`] remains as a thin veneer. Engines that find
//! reachable targets produce replayable witness
//! [`Trace`](sebmc_model::Trace)s (except the QBF back-ends, which
//! decide validity only — as in 2005).
//!
//! # Quickstart
//!
//! ```
//! use sebmc::{Budget, Engine, JSat, Semantics, UnrollSat};
//! use sebmc_model::builders::counter_with_reset;
//!
//! let model = counter_with_reset(3); // 3-bit counter, target 7
//! let mut jsat = JSat::default().start(&model, Semantics::Exactly, Budget::none());
//! let mut unroll = UnrollSat::default().start(&model, Semantics::Exactly, Budget::none());
//! for k in 0..9 {
//!     let a = jsat.check_bound(k).result;
//!     let b = unroll.check_bound(k).result;
//!     assert!(a.agrees_with(&b));
//! }
//! ```

#![forbid(unsafe_code)]

pub mod engine;
pub mod fingerprint;
pub mod inc_unroll;
pub mod incremental;
pub mod induction;
pub mod jsat;
pub mod portfolio;
pub mod qbf_enc;
pub mod reduce;
pub mod squaring;
pub mod unroll;

pub use engine::{
    one_shot, BmcOutcome, BmcResult, BoundedChecker, Budget, CancelToken, Engine, RunStats,
    Semantics, Session,
};
pub use fingerprint::model_fingerprint;
pub use inc_unroll::IncrementalUnroll;
pub use incremental::{find_shortest_witness, DeepeningResult};
pub use induction::{k_induction, k_induction_run, InductionResult, InductionRun};
pub use jsat::{JSat, JSatConfig, JSatSession, JSatStats};
pub use portfolio::{
    engine_panic_reason, first_decided, panic_message, portfolio_stats, run_portfolio,
    truncate_panic_payload, DeepeningPortfolio, PortfolioBoundOutcome, PortfolioEntry,
};
pub use qbf_enc::{encode_qbf_linear, QbfBackend, QbfEncoding, QbfLinear, QbfLinearSession};
pub use reduce::{start_with_reduction, LiftingSession};
pub use sebmc_proof::Certificate;
pub use squaring::{encode_qbf_squaring, QbfSquaring, QbfSquaringSession};
pub use unroll::{encode_unrolled, UnrollSat, UnrolledCnf};
