//! Space-efficient bounded model checking — a from-scratch Rust
//! reproduction of *"Space-Efficient Bounded Model Checking"* (Jacob
//! Katz, Ziyad Hanna, Nachum Dershowitz; DATE 2005).
//!
//! Classical BMC (formulation (1)) unrolls the transition relation `k`
//! times, so its formula carries `k` copies of `TR` — the memory
//! explosion the paper attacks. The paper's alternatives keep **one**
//! copy:
//!
//! | Formulation | Module | Engine | Growth per bound |
//! |---|---|---|---|
//! | (1) unrolled CNF | [`unroll`] | [`UnrollSat`] | Θ(\|TR\|) |
//! | (2) linear QBF | [`qbf_enc`] | [`QbfLinear`] | Θ(n), constant #∀ |
//! | (3) iterative squaring | [`squaring`] | [`QbfSquaring`] | log₂ k iterations, growing #∀ |
//! | (4) jSAT | [`jsat`] | [`JSat`] | constant formula |
//!
//! All engines implement [`BoundedChecker`] and accept the paper's
//! per-instance resource budgets through [`EngineLimits`]. Engines
//! that find reachable targets produce replayable witness
//! [`Trace`](sebmc_model::Trace)s (except the QBF back-ends, which
//! decide validity only — as in 2005).
//!
//! # Quickstart
//!
//! ```
//! use sebmc::{BoundedChecker, JSat, Semantics, UnrollSat};
//! use sebmc_model::builders::counter_with_reset;
//!
//! let model = counter_with_reset(3); // 3-bit counter, target 7
//! let mut jsat = JSat::default();
//! let mut unroll = UnrollSat::default();
//! for k in 0..9 {
//!     let a = jsat.check(&model, k, Semantics::Exactly).result;
//!     let b = unroll.check(&model, k, Semantics::Exactly).result;
//!     assert!(a.agrees_with(&b));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod inc_unroll;
pub mod incremental;
pub mod induction;
pub mod jsat;
pub mod portfolio;
pub mod qbf_enc;
pub mod squaring;
pub mod unroll;

pub use engine::{BmcOutcome, BmcResult, BoundedChecker, EngineLimits, RunStats, Semantics};
pub use inc_unroll::IncrementalUnroll;
pub use incremental::{find_shortest_witness, DeepeningResult};
pub use induction::{k_induction, InductionResult};
pub use jsat::{JSat, JSatConfig, JSatStats};
pub use portfolio::{first_decided, run_portfolio, PortfolioEntry};
pub use qbf_enc::{encode_qbf_linear, QbfBackend, QbfEncoding, QbfLinear};
pub use squaring::{encode_qbf_squaring, QbfSquaring};
pub use unroll::{encode_unrolled, UnrollSat, UnrolledCnf};
