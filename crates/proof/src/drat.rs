//! Binary DRAT encoding and incremental decoding.
//!
//! See the [crate docs](crate) for the record grammar. Encoding is
//! allocation-free into a caller-provided buffer; decoding is a
//! byte-at-a-time state machine so records can be reassembled straight
//! out of the bounded [`crate::ByteRing`] without ever materialising
//! the stream.

use std::io::Write;

use sebmc_logic::Lit;

use crate::sink::ProofSink;

/// Record tag: original (axiom) clause.
pub const TAG_ORIG: u8 = b'o';
/// Record tag: derived (RUP-checkable) clause addition.
pub const TAG_ADD: u8 = b'a';
/// Record tag: clause deletion.
pub const TAG_DELETE: u8 = b'd';
/// Record tag: finalization lemma of an Unsat solve.
pub const TAG_FINAL: u8 = b'f';

/// Appends one varint (base-128, little-endian, high bit = continue).
fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Encodes one record (`tag`, literals, `0` terminator) onto `buf`.
///
/// Literals use the **standard binary-DRAT mapping**
/// `2·(var + 1) + sign` — which, with this workspace's
/// `var << 1 | sign` packing, is exactly `code + 2`. The `+2` keeps
/// the `0` terminator unambiguous *and* makes the literal bytes
/// directly consumable by external binary-DRAT tooling (only the
/// record tags differ between the dialects; see
/// [`DratWriter::standard`]).
pub fn encode_record(tag: u8, lits: &[Lit], buf: &mut Vec<u8>) {
    buf.push(tag);
    for &l in lits {
        push_varint(buf, l.code() as u64 + 2);
    }
    buf.push(0);
}

/// An incremental binary-DRAT record decoder.
///
/// Feed bytes one at a time with [`DratDecoder::feed`]; when it
/// returns `true`, a full record is available via
/// [`DratDecoder::tag`] / [`DratDecoder::take_lits`]. The literal
/// buffer is reused across records ([`DratDecoder::recycle`]), so
/// steady-state decoding allocates nothing.
#[derive(Debug, Default)]
pub struct DratDecoder {
    tag: Option<u8>,
    acc: u64,
    shift: u32,
    /// A varint in flight has exceeded 64 bits (malformed stream); its
    /// value is dropped and counted when it terminates.
    overlong: bool,
    lits: Vec<Lit>,
    /// Bytes that were not a valid record tag, plus malformed varints.
    corrupt: u64,
}

impl DratDecoder {
    /// A fresh decoder at a record boundary.
    pub fn new() -> Self {
        DratDecoder::default()
    }

    /// Consumes one stream byte; returns `true` when it completed a
    /// record.
    pub fn feed(&mut self, byte: u8) -> bool {
        match self.tag {
            None => {
                if matches!(byte, TAG_ORIG | TAG_ADD | TAG_DELETE | TAG_FINAL) {
                    self.tag = Some(byte);
                } else {
                    // Skip the unknown byte, stay at the boundary; the
                    // count surfaces in the checker as a failed check.
                    self.corrupt += 1;
                }
                false
            }
            Some(_) => {
                // A shift past the accumulator width would panic in
                // debug builds; a malformed stream must degrade to a
                // counted corruption instead.
                if self.shift < u64::BITS {
                    self.acc |= u64::from(byte & 0x7f) << self.shift;
                } else {
                    self.overlong = true;
                }
                if byte & 0x80 != 0 {
                    self.shift = self.shift.saturating_add(7);
                    return false;
                }
                let v = self.acc;
                let overlong = self.overlong;
                self.acc = 0;
                self.shift = 0;
                self.overlong = false;
                if overlong {
                    self.corrupt += 1;
                    return false;
                }
                if v == 0 {
                    return true; // terminator: record complete
                }
                if v == 1 {
                    // Not a valid literal under the 2·(var+1)+sign
                    // mapping; count it and keep the record going.
                    self.corrupt += 1;
                    return false;
                }
                self.lits.push(Lit::from_code((v - 2) as usize));
                false
            }
        }
    }

    /// Tag of the just-completed record.
    pub fn tag(&self) -> u8 {
        self.tag.expect("a record was completed")
    }

    /// Takes the completed record's literals (resetting the decoder to
    /// the record boundary). Hand the vector back via
    /// [`DratDecoder::recycle`] to reuse its allocation.
    pub fn take_lits(&mut self) -> Vec<Lit> {
        self.tag = None;
        std::mem::take(&mut self.lits)
    }

    /// Returns a drained literal vector for reuse.
    pub fn recycle(&mut self, mut lits: Vec<Lit>) {
        lits.clear();
        if self.lits.capacity() < lits.capacity() {
            self.lits = lits;
        }
    }

    /// Bytes skipped because they were not a valid record tag.
    pub fn corrupt_bytes(&self) -> u64 {
        self.corrupt
    }

    /// Whether the decoder sits at a record boundary (nothing partial
    /// buffered).
    pub fn at_boundary(&self) -> bool {
        self.tag.is_none()
    }
}

/// Decodes a complete in-memory stream into `(tag, clause)` records —
/// a test/tooling convenience; the streaming path never calls this.
pub fn decode_stream(bytes: &[u8]) -> Vec<(u8, Vec<Lit>)> {
    let mut dec = DratDecoder::new();
    let mut out = Vec::new();
    for &b in bytes {
        if dec.feed(b) {
            let tag = dec.tag();
            out.push((tag, dec.take_lits()));
        }
    }
    out
}

/// A write-only [`ProofSink`]: encodes the event stream as binary DRAT
/// onto any [`Write`] destination, with exact byte accounting and no
/// checking.
///
/// Use it to export proofs (a file, a `Vec<u8>`) or to measure the
/// pure cost of proof logging (`std::io::sink()`); in
/// [`DratWriter::standard`] mode the output is plain binary DRAT
/// (original clauses dropped, finalizations written as additions) that
/// external tooling understands.
pub struct DratWriter<W: Write + Send> {
    out: W,
    buf: Vec<u8>,
    bytes: usize,
    include_originals: bool,
    /// Set when the destination reported an I/O error; the stream is
    /// truncated but the byte accounting stays exact for what was
    /// actually written.
    failed: bool,
}

impl<W: Write + Send> std::fmt::Debug for DratWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DratWriter")
            .field("bytes", &self.bytes)
            .field("include_originals", &self.include_originals)
            .field("failed", &self.failed)
            .finish()
    }
}

impl<W: Write + Send> DratWriter<W> {
    /// A writer in the annotated dialect (every tag, `o` included).
    pub fn new(out: W) -> Self {
        DratWriter {
            out,
            buf: Vec::with_capacity(64),
            bytes: 0,
            include_originals: true,
            failed: false,
        }
    }

    /// A writer emitting *standard* binary DRAT: `o` records skipped,
    /// `f` written as `a`.
    pub fn standard(out: W) -> Self {
        DratWriter {
            include_originals: false,
            ..DratWriter::new(out)
        }
    }

    /// Whether an I/O error truncated the stream.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Flushes and returns the destination.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }

    fn emit(&mut self, tag: u8, lits: &[Lit]) {
        self.buf.clear();
        encode_record(tag, lits, &mut self.buf);
        if !self.failed && self.out.write_all(&self.buf).is_err() {
            self.failed = true;
        }
        if !self.failed {
            self.bytes += self.buf.len();
        }
    }
}

impl<W: Write + Send> ProofSink for DratWriter<W> {
    fn original(&mut self, lits: &[Lit]) {
        if self.include_originals {
            self.emit(TAG_ORIG, lits);
        }
    }

    fn add(&mut self, lits: &[Lit]) {
        self.emit(TAG_ADD, lits);
    }

    fn delete(&mut self, lits: &[Lit]) {
        self.emit(TAG_DELETE, lits);
    }

    fn finalize_unsat(&mut self, neg_core: &[Lit]) {
        let tag = if self.include_originals {
            TAG_FINAL
        } else {
            TAG_ADD
        };
        self.emit(tag, neg_core);
    }

    fn bytes_emitted(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(code: usize) -> Lit {
        Lit::from_code(code)
    }

    /// The literal bytes must follow the standard binary-DRAT mapping
    /// `2·(var + 1) + sign` so external checkers decode them
    /// correctly (regression: an earlier draft wrote `code + 1`,
    /// which external tooling reads as shifted, polarity-flipped
    /// literals).
    #[test]
    fn literal_encoding_matches_the_binary_drat_spec() {
        use sebmc_logic::Var;
        let pos0 = Var::new(0).positive(); // DIMACS +1 → ulit 2
        let neg0 = Var::new(0).negative(); // DIMACS -1 → ulit 3
        let pos6 = Var::new(6).positive(); // DIMACS +7 → ulit 14
        let mut buf = Vec::new();
        encode_record(TAG_ADD, &[pos0, neg0, pos6], &mut buf);
        assert_eq!(buf, vec![TAG_ADD, 2, 3, 14, 0]);
    }

    #[test]
    fn varints_round_trip_through_the_decoder() {
        // Codes spanning 1, 2 and 3 varint bytes.
        let lits: Vec<Lit> = [0usize, 1, 126, 127, 128, 300, 16_383, 16_384, 1 << 20]
            .iter()
            .map(|&c| lit(c))
            .collect();
        let mut buf = Vec::new();
        encode_record(TAG_ADD, &lits, &mut buf);
        let records = decode_stream(&buf);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0, TAG_ADD);
        assert_eq!(records[0].1, lits);
    }

    #[test]
    fn empty_clause_and_multi_record_streams() {
        let mut buf = Vec::new();
        encode_record(TAG_ORIG, &[lit(4), lit(7)], &mut buf);
        encode_record(TAG_FINAL, &[], &mut buf);
        encode_record(TAG_DELETE, &[lit(4), lit(7)], &mut buf);
        let records = decode_stream(&buf);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], (TAG_ORIG, vec![lit(4), lit(7)]));
        assert_eq!(records[1], (TAG_FINAL, vec![]));
        assert_eq!(records[2], (TAG_DELETE, vec![lit(4), lit(7)]));
    }

    #[test]
    fn decoder_is_byte_at_a_time_safe() {
        // Feeding the same stream in 1-byte slices must yield the same
        // records (this is how the ring delivers it).
        let mut buf = Vec::new();
        encode_record(TAG_ADD, &[lit(128), lit(16_500)], &mut buf);
        encode_record(TAG_DELETE, &[lit(2)], &mut buf);
        let mut dec = DratDecoder::new();
        let mut seen = Vec::new();
        for &b in &buf {
            if dec.feed(b) {
                let tag = dec.tag();
                let lits = dec.take_lits();
                seen.push((tag, lits.clone()));
                dec.recycle(lits);
            }
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].1, vec![lit(128), lit(16_500)]);
        assert_eq!(seen[1].1, vec![lit(2)]);
        assert!(dec.at_boundary());
        assert_eq!(dec.corrupt_bytes(), 0);
    }

    /// A varint with more continuation bytes than a `u64` can hold
    /// must be counted as corruption, not overflow the decoder's
    /// shift (which would panic in debug builds).
    #[test]
    fn overlong_varints_are_counted_not_fatal() {
        let mut dec = DratDecoder::new();
        let mut stream = vec![TAG_ADD];
        stream.extend([0x80u8; 12]); // 12 continuation bytes > 64 bits
        stream.push(0x01);
        stream.push(0); // terminator
        let mut completed = 0;
        for &b in &stream {
            if dec.feed(b) {
                completed += 1;
                let lits = dec.take_lits();
                assert!(lits.is_empty(), "the overlong literal was dropped");
            }
        }
        assert_eq!(completed, 1, "the record still terminates");
        assert_eq!(dec.corrupt_bytes(), 1);
        assert!(dec.at_boundary());
    }

    #[test]
    fn unknown_tags_are_counted_not_fatal() {
        let mut dec = DratDecoder::new();
        assert!(!dec.feed(b'x'));
        assert_eq!(dec.corrupt_bytes(), 1);
        let mut buf = Vec::new();
        encode_record(TAG_ADD, &[lit(1)], &mut buf);
        let mut done = 0;
        for &b in &buf {
            if dec.feed(b) {
                done += 1;
                let l = dec.take_lits();
                assert_eq!(l, vec![lit(1)]);
            }
        }
        assert_eq!(done, 1);
    }

    #[test]
    fn writer_accounts_bytes_and_standard_mode_drops_originals() {
        let mut full = DratWriter::new(Vec::new());
        full.original(&[lit(0), lit(2)]);
        full.add(&[lit(0)]);
        full.finalize_unsat(&[]);
        let full_bytes = full.bytes_emitted();
        let out = full.into_inner();
        assert_eq!(out.len(), full_bytes, "accounting matches the stream");
        let records = decode_stream(&out);
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].0, TAG_FINAL);

        let mut std_w = DratWriter::standard(Vec::new());
        std_w.original(&[lit(0), lit(2)]);
        std_w.add(&[lit(0)]);
        std_w.finalize_unsat(&[]);
        let out = std_w.into_inner();
        let records = decode_stream(&out);
        assert_eq!(records.len(), 2, "originals dropped");
        assert!(records.iter().all(|(t, _)| *t == TAG_ADD));
    }
}
