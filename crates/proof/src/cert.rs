//! Certification summaries.

/// Summary of one stretch of checked proof stream — the counters a
/// verdict carries so "machine-checked" is quantifiable.
///
/// A [`Certificate`] is either a *cumulative* snapshot of a checker
/// ([`crate::ProofSink::summary`]) or a *delta* between two
/// snapshots ([`Certificate::delta_since`], what the engines attach to
/// one bound's verdict). Deltas compose with [`Certificate::absorb`]
/// (everything summed, the active-clause peak maxed), so per-bound
/// certificates fold into per-session, per-job and per-service totals
/// exactly like `RunStats`.
///
/// The engine layers fill in the two `bounds_*` fields: a bound whose
/// verdict was decided *and* matched against the proof (Unsat bounds)
/// or replayed through the model simulator (Sat bounds) counts one
/// `bounds_attempted` and, on success, one `bounds_certified`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Certificate {
    /// Original (`o`) clauses inserted, unchecked, as axioms.
    pub originals: u64,
    /// Derived lemmas (`a` and `f` records) put through the RUP check.
    pub lemmas_checked: u64,
    /// Deletions (`d` records) applied to the active set.
    pub deletions: u64,
    /// RUP checks that failed, plus malformed records. Zero for a
    /// valid proof stream.
    pub failed_checks: u64,
    /// Deletions whose clause was not in the active set — a
    /// desynchronised deletion log. Zero for a valid stream.
    pub missing_deletes: u64,
    /// Verified finalization lemmas (`f` records): Unsat solves whose
    /// failed-assumption core was proof-checked.
    pub unsat_proofs: u64,
    /// Exact bytes of encoded proof stream covered by this summary.
    pub proof_bytes: u64,
    /// Peak number of clauses the checker held at once — the
    /// `O(active clauses)` figure of the streaming design.
    pub peak_active_clauses: u64,
    /// Decided bounds this certificate was asked to cover.
    pub bounds_attempted: u64,
    /// Decided bounds whose verdict was successfully machine-checked.
    pub bounds_certified: u64,
}

impl Certificate {
    /// Folds another certificate in: all counters summed, the
    /// active-clause peak maxed.
    pub fn absorb(&mut self, other: &Certificate) {
        self.originals += other.originals;
        self.lemmas_checked += other.lemmas_checked;
        self.deletions += other.deletions;
        self.failed_checks += other.failed_checks;
        self.missing_deletes += other.missing_deletes;
        self.unsat_proofs += other.unsat_proofs;
        self.proof_bytes += other.proof_bytes;
        self.peak_active_clauses = self.peak_active_clauses.max(other.peak_active_clauses);
        self.bounds_attempted += other.bounds_attempted;
        self.bounds_certified += other.bounds_certified;
    }

    /// Folds an optional certificate into an optional accumulator —
    /// the one folding rule shared by session drivers, the service's
    /// job/report aggregation and the CLI (`None` inputs are skipped,
    /// the first `Some` seeds the accumulator).
    pub fn fold_into(into: &mut Option<Certificate>, cert: Option<&Certificate>) {
        if let Some(c) = cert {
            match into {
                Some(t) => t.absorb(c),
                None => *into = Some(c.clone()),
            }
        }
    }

    /// The counters accumulated since `earlier` (an older snapshot of
    /// the same checker). Monotone counters subtract; the peak keeps
    /// the current value.
    pub fn delta_since(&self, earlier: &Certificate) -> Certificate {
        Certificate {
            originals: self.originals.saturating_sub(earlier.originals),
            lemmas_checked: self.lemmas_checked.saturating_sub(earlier.lemmas_checked),
            deletions: self.deletions.saturating_sub(earlier.deletions),
            failed_checks: self.failed_checks.saturating_sub(earlier.failed_checks),
            missing_deletes: self.missing_deletes.saturating_sub(earlier.missing_deletes),
            unsat_proofs: self.unsat_proofs.saturating_sub(earlier.unsat_proofs),
            proof_bytes: self.proof_bytes.saturating_sub(earlier.proof_bytes),
            peak_active_clauses: self.peak_active_clauses,
            bounds_attempted: self
                .bounds_attempted
                .saturating_sub(earlier.bounds_attempted),
            bounds_certified: self
                .bounds_certified
                .saturating_sub(earlier.bounds_certified),
        }
    }

    /// Whether every check passed and every attempted bound was
    /// certified (and at least one bound was attempted at all).
    pub fn fully_certified(&self) -> bool {
        self.failed_checks == 0
            && self.missing_deletes == 0
            && self.bounds_attempted > 0
            && self.bounds_certified == self.bounds_attempted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Certificate {
        Certificate {
            originals: n,
            lemmas_checked: 2 * n,
            deletions: n / 2,
            failed_checks: 0,
            missing_deletes: 0,
            unsat_proofs: 1,
            proof_bytes: 100 * n,
            peak_active_clauses: 10 + n,
            bounds_attempted: 1,
            bounds_certified: 1,
        }
    }

    #[test]
    fn absorb_sums_and_maxes() {
        let mut total = sample(4);
        total.absorb(&sample(10));
        assert_eq!(total.originals, 14);
        assert_eq!(total.lemmas_checked, 28);
        assert_eq!(total.proof_bytes, 1400);
        assert_eq!(total.peak_active_clauses, 20, "peaks maxed");
        assert_eq!(total.bounds_attempted, 2);
        assert!(total.fully_certified());
    }

    #[test]
    fn delta_subtracts_monotone_counters() {
        let early = sample(4);
        let mut late = sample(4);
        late.absorb(&sample(6));
        let delta = late.delta_since(&early);
        assert_eq!(delta.originals, 6);
        assert_eq!(delta.lemmas_checked, 12);
        assert_eq!(delta.proof_bytes, 600);
        assert_eq!(delta.peak_active_clauses, late.peak_active_clauses);
    }

    #[test]
    fn fully_certified_requires_coverage() {
        let mut c = Certificate::default();
        assert!(!c.fully_certified(), "nothing attempted, nothing certified");
        c.bounds_attempted = 2;
        c.bounds_certified = 1;
        assert!(!c.fully_certified());
        c.bounds_certified = 2;
        assert!(c.fully_certified());
        c.failed_checks = 1;
        assert!(!c.fully_certified());
    }
}
