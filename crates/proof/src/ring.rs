//! The bounded byte ring between the proof writer and the checker.

/// A fixed-capacity FIFO ring buffer of bytes.
///
/// This is the coupling between the DRAT encoder (the producer) and
/// the streaming checker (the consumer): the encoder pushes record
/// bytes, the checker drains them. The capacity is fixed at
/// construction, so the in-flight portion of the proof is *bounded* —
/// when a record does not fit, the producer must drain the checker
/// first, which is exactly what keeps certification memory
/// `O(active clauses)` instead of `O(proof)`.
///
/// ```
/// use sebmc_proof::ByteRing;
///
/// let mut ring = ByteRing::new(4);
/// assert_eq!(ring.push(b"abcdef"), 4, "only the capacity fits");
/// let mut out = [0u8; 8];
/// assert_eq!(ring.read_into(&mut out), 4);
/// assert_eq!(&out[..4], b"abcd");
/// assert!(ring.is_empty());
/// ```
#[derive(Debug)]
pub struct ByteRing {
    buf: Box<[u8]>,
    /// Index of the oldest unread byte.
    head: usize,
    /// Number of unread bytes.
    len: usize,
}

impl ByteRing {
    /// A ring holding at most `capacity` bytes (at least 1).
    pub fn new(capacity: usize) -> Self {
        ByteRing {
            buf: vec![0u8; capacity.max(1)].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Unread bytes currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no unread bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free space in bytes.
    pub fn free(&self) -> usize {
        self.buf.len() - self.len
    }

    /// Appends as much of `bytes` as fits and returns how many bytes
    /// were accepted (0 when full).
    pub fn push(&mut self, bytes: &[u8]) -> usize {
        let n = bytes.len().min(self.free());
        let cap = self.buf.len();
        let mut tail = (self.head + self.len) % cap;
        for &b in &bytes[..n] {
            self.buf[tail] = b;
            tail = (tail + 1) % cap;
        }
        self.len += n;
        n
    }

    /// Moves up to `out.len()` of the oldest bytes into `out` and
    /// returns how many were read (0 when empty).
    pub fn read_into(&mut self, out: &mut [u8]) -> usize {
        let n = out.len().min(self.len);
        let cap = self.buf.len();
        for slot in &mut out[..n] {
            *slot = self.buf[self.head];
            self.head = (self.head + 1) % cap;
        }
        self.len -= n;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_across_the_wrap_point() {
        let mut ring = ByteRing::new(8);
        let mut out = [0u8; 16];
        // Fill, half-drain, refill: the second write wraps.
        assert_eq!(ring.push(&[1, 2, 3, 4, 5, 6]), 6);
        assert_eq!(ring.read_into(&mut out[..4]), 4);
        assert_eq!(&out[..4], &[1, 2, 3, 4]);
        assert_eq!(ring.push(&[7, 8, 9, 10, 11, 12]), 6);
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.free(), 0);
        assert_eq!(ring.push(&[99]), 0, "full ring accepts nothing");
        let n = ring.read_into(&mut out);
        assert_eq!(n, 8);
        assert_eq!(&out[..8], &[5, 6, 7, 8, 9, 10, 11, 12]);
        assert!(ring.is_empty());
    }

    #[test]
    fn partial_pushes_report_accepted_prefix() {
        let mut ring = ByteRing::new(3);
        assert_eq!(ring.push(b"xyzzy"), 3);
        let mut out = [0u8; 3];
        ring.read_into(&mut out);
        assert_eq!(&out, b"xyz");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = ByteRing::new(0);
        assert_eq!(ring.capacity(), 1);
    }
}
