//! A sink that forwards every proof event to two sinks at once.

use sebmc_logic::Lit;

use crate::cert::Certificate;
use crate::sink::ProofSink;

/// Forwards proof events to a *checking* sink and a *logging* sink.
///
/// Certification queries ([`ProofSink::summary`] and
/// [`ProofSink::certifies`]) are answered by the checking sink, while
/// [`ProofSink::bytes_emitted`] reports the logging sink's output —
/// the natural split for "check on the fly, and also export the DRAT
/// stream to disk".
#[derive(Debug)]
pub struct TeeSink {
    checker: Box<dyn ProofSink>,
    writer: Box<dyn ProofSink>,
}

impl TeeSink {
    /// Combines a checking sink with a write-only logging sink.
    pub fn new(checker: Box<dyn ProofSink>, writer: Box<dyn ProofSink>) -> Self {
        TeeSink { checker, writer }
    }
}

impl ProofSink for TeeSink {
    fn original(&mut self, lits: &[Lit]) {
        self.checker.original(lits);
        self.writer.original(lits);
    }

    fn add(&mut self, lits: &[Lit]) {
        self.checker.add(lits);
        self.writer.add(lits);
    }

    fn delete(&mut self, lits: &[Lit]) {
        self.checker.delete(lits);
        self.writer.delete(lits);
    }

    fn finalize_unsat(&mut self, neg_core: &[Lit]) {
        self.checker.finalize_unsat(neg_core);
        self.writer.finalize_unsat(neg_core);
    }

    fn bytes_emitted(&self) -> usize {
        self.writer.bytes_emitted()
    }

    fn summary(&mut self) -> Option<Certificate> {
        self.checker.summary()
    }

    fn certifies(&mut self, assumptions: &[Lit]) -> bool {
        self.checker.certifies(assumptions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::StreamingChecker;
    use crate::drat::DratWriter;
    use sebmc_logic::{Lit, Var};

    fn lit(i: u32) -> Lit {
        Var::new(i).positive()
    }

    #[test]
    fn tee_checks_and_writes() {
        let checker = Box::new(StreamingChecker::new());
        let writer = Box::new(DratWriter::standard(Vec::<u8>::new()));
        let mut tee = TeeSink::new(checker, writer);
        tee.original(&[lit(0), lit(1)]);
        tee.original(&[lit(0)]);
        // {x0 x1}, {x0} ⊢ nothing yet; unit-subsumed delete is fine.
        tee.delete(&[lit(0), lit(1)]);
        assert!(tee.bytes_emitted() > 0, "writer side must see events");
        let cert = tee.summary().expect("checker side answers summary");
        assert_eq!(cert.originals, 2);
        assert!(!tee.certifies(&[]));
    }
}
