//! The forward proof checker and its streaming front-end.

use std::collections::HashMap;

use sebmc_logic::Lit;

use crate::cert::Certificate;
use crate::drat::{encode_record, DratDecoder, TAG_ADD, TAG_DELETE, TAG_FINAL, TAG_ORIG};
use crate::ring::ByteRing;
use crate::sink::ProofSink;

const UNASSIGNED: u8 = 0;
const TRUE: u8 = 1;
const FALSE: u8 = 2;

/// Default in-flight proof buffer of a [`StreamingChecker`], in bytes.
pub const DEFAULT_RING_BYTES: usize = 16 * 1024;

/// One active clause: its literals and, when it participates in
/// propagation, the two watched literal codes.
///
/// A clause that was unit, satisfied-by-a-unit or falsified at insert
/// time carries no watches (its consequence, if any, was propagated
/// permanently on insert).
#[derive(Debug, Default)]
struct Slot {
    lits: Vec<Lit>,
    watch: Option<[usize; 2]>,
}

/// A forward (unit-propagation) proof checker over an explicit active
/// clause set.
///
/// The checker mirrors the solver's logical clause database: original
/// clauses are inserted as axioms, derived clauses are admitted only
/// after a **reverse-unit-propagation** (RUP) check — assume the
/// negation of every literal, propagate, demand a conflict — and
/// deletions remove clauses by literal content (a multiset, so
/// duplicate clauses are handled). Top-level units derived along the
/// way are kept permanently: everything ever verified is entailed by
/// the axioms, so deletions can never unsound them (see the
/// [crate docs](crate)).
///
/// Memory is `O(active clauses)`: the watch lists, the content index
/// and the slots all shrink on deletion, which is what lets a
/// *streaming* consumer certify an unbounded proof in bounded space.
#[derive(Debug, Default)]
pub struct ForwardChecker {
    /// Assignment by literal code (`UNASSIGNED`/`TRUE`/`FALSE`).
    vals: Vec<u8>,
    trail: Vec<Lit>,
    qhead: usize,
    clauses: Vec<Slot>,
    free: Vec<usize>,
    /// Content index: sorted literal codes → slots holding that clause
    /// (a multiset — the solver may hold identical clauses).
    index: HashMap<Box<[u32]>, Vec<usize>>,
    /// Watch lists by literal code: slots watching that literal.
    watches: Vec<Vec<usize>>,
    proved_unsat: bool,
    /// The last *verified* finalization lemma, as sorted literal codes.
    last_final: Option<Vec<u32>>,
    originals: u64,
    lemmas_checked: u64,
    deletions: u64,
    failed_checks: u64,
    missing_deletes: u64,
    unsat_proofs: u64,
    active: usize,
    peak_active: usize,
}

impl ForwardChecker {
    /// An empty checker.
    pub fn new() -> Self {
        ForwardChecker::default()
    }

    /// Whether the empty clause has been verified: the axioms are
    /// unsatisfiable outright.
    pub fn proved_unsat(&self) -> bool {
        self.proved_unsat
    }

    /// Number of clauses currently active.
    pub fn active_clauses(&self) -> usize {
        self.active
    }

    /// Cumulative counters (the `proof_bytes` field is owned by the
    /// encoder and left 0 here).
    pub fn certificate(&self) -> Certificate {
        Certificate {
            originals: self.originals,
            lemmas_checked: self.lemmas_checked,
            deletions: self.deletions,
            failed_checks: self.failed_checks,
            missing_deletes: self.missing_deletes,
            unsat_proofs: self.unsat_proofs,
            proof_bytes: 0,
            peak_active_clauses: self.peak_active as u64,
            bounds_attempted: 0,
            bounds_certified: 0,
        }
    }

    /// Whether the proof so far establishes unsatisfiability under
    /// `assumptions`: the empty clause was verified, or the last
    /// verified finalization lemma is a subclause of
    /// `{¬a | a ∈ assumptions}`.
    pub fn certifies(&self, assumptions: &[Lit]) -> bool {
        if self.proved_unsat {
            return true;
        }
        let Some(lemma) = &self.last_final else {
            return false;
        };
        let mut neg: Vec<u32> = assumptions.iter().map(|&a| (!a).code() as u32).collect();
        neg.sort_unstable();
        lemma.iter().all(|c| neg.binary_search(c).is_ok())
    }

    /// Inserts an axiom clause (no check).
    pub fn original(&mut self, lits: &[Lit]) {
        self.originals += 1;
        if lits.is_empty() {
            self.proved_unsat = true;
            return;
        }
        self.insert(lits);
    }

    /// RUP-checks a derived clause and, when it passes, inserts it.
    /// With `finalize`, a passing clause is remembered as the stream's
    /// current finalization lemma. Returns whether the check passed;
    /// failures are counted and the clause is **not** inserted (only
    /// entailed clauses may enter the active set).
    pub fn add(&mut self, lits: &[Lit], finalize: bool) -> bool {
        self.lemmas_checked += 1;
        let ok = self.rup(lits);
        if ok {
            if finalize {
                self.unsat_proofs += 1;
                let mut codes: Vec<u32> = lits.iter().map(|&l| l.code() as u32).collect();
                codes.sort_unstable();
                self.last_final = Some(codes);
            }
            if lits.is_empty() {
                self.proved_unsat = true;
            } else {
                self.insert(lits);
            }
        } else {
            self.failed_checks += 1;
            if finalize {
                self.last_final = None;
            }
        }
        ok
    }

    /// Removes one active clause with exactly these literals (in any
    /// order). A clause not in the active set is counted as a missing
    /// delete — a desynchronised log.
    pub fn delete(&mut self, lits: &[Lit]) {
        self.deletions += 1;
        let key = clause_key(lits);
        let Some(ids) = self.index.get_mut(&key) else {
            self.missing_deletes += 1;
            return;
        };
        let id = ids.pop().expect("index entries are never empty");
        if ids.is_empty() {
            self.index.remove(&key);
        }
        if let Some(ws) = self.clauses[id].watch {
            for code in ws {
                self.watches[code].retain(|&c| c != id);
            }
        }
        self.clauses[id] = Slot::default();
        self.free.push(id);
        self.active -= 1;
    }

    // ----- internals -----------------------------------------------------

    fn ensure_lit(&mut self, l: Lit) {
        let need = l.code().max((!l).code()) + 1;
        if self.vals.len() < need {
            self.vals.resize(need, UNASSIGNED);
            self.watches.resize_with(need, Vec::new);
        }
    }

    #[inline]
    fn value(&self, l: Lit) -> u8 {
        self.vals.get(l.code()).copied().unwrap_or(UNASSIGNED)
    }

    #[inline]
    fn assign(&mut self, p: Lit) {
        debug_assert_eq!(self.value(p), UNASSIGNED);
        self.vals[p.code()] = TRUE;
        self.vals[(!p).code()] = FALSE;
        self.trail.push(p);
    }

    /// Unit propagation from the current queue head; `true` = conflict.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let fcode = (!p).code();
            if fcode >= self.watches.len() {
                continue;
            }
            let mut i = 0;
            while i < self.watches[fcode].len() {
                let cid = self.watches[fcode][i];
                let ws = self.clauses[cid].watch.expect("watched clause has watches");
                let other_code = if ws[0] == fcode { ws[1] } else { ws[0] };
                let other = Lit::from_code(other_code);
                if self.value(other) == TRUE {
                    i += 1;
                    continue;
                }
                // Look for a non-falsified replacement watch.
                let mut repl: Option<usize> = None;
                for idx in 0..self.clauses[cid].lits.len() {
                    let l = self.clauses[cid].lits[idx];
                    let c = l.code();
                    if c != fcode && c != other_code && self.value(l) != FALSE {
                        repl = Some(c);
                        break;
                    }
                }
                match repl {
                    Some(code) => {
                        self.watches[fcode].swap_remove(i);
                        let ws = self.clauses[cid]
                            .watch
                            .as_mut()
                            .expect("watched clause has watches");
                        if ws[0] == fcode {
                            ws[0] = code;
                        } else {
                            ws[1] = code;
                        }
                        self.watches[code].push(cid);
                    }
                    None if self.value(other) == UNASSIGNED => {
                        self.assign(other);
                        i += 1;
                    }
                    None => return true, // both watches false: conflict
                }
            }
        }
        false
    }

    /// Unassigns everything past `mark` (the RUP probe).
    fn backtrack(&mut self, mark: usize) {
        for idx in mark..self.trail.len() {
            let l = self.trail[idx];
            self.vals[l.code()] = UNASSIGNED;
            self.vals[(!l).code()] = UNASSIGNED;
        }
        self.trail.truncate(mark);
        self.qhead = mark;
    }

    /// Reverse unit propagation: negate the clause, propagate, expect
    /// a conflict. Leaves the permanent assignment untouched.
    fn rup(&mut self, lits: &[Lit]) -> bool {
        if self.proved_unsat {
            return true; // ex falso: anything is entailed
        }
        debug_assert_eq!(self.qhead, self.trail.len(), "permanent fixpoint");
        let mark = self.trail.len();
        let mut conflict = false;
        for &l in lits {
            self.ensure_lit(l);
            match self.value(l) {
                TRUE => {
                    conflict = true; // ¬l contradicts an established unit
                    break;
                }
                FALSE => {}
                _ => self.assign(!l),
            }
        }
        let conflict = conflict || self.propagate();
        self.backtrack(mark);
        conflict
    }

    /// Inserts an entailed clause permanently, propagating its
    /// consequence if it is unit (or conflicting) under the permanent
    /// assignment.
    fn insert(&mut self, lits: &[Lit]) {
        for &l in lits {
            self.ensure_lit(l);
        }
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.clauses.push(Slot::default());
                self.clauses.len() - 1
            }
        };
        self.index.entry(clause_key(lits)).or_default().push(id);
        self.active += 1;
        self.peak_active = self.peak_active.max(self.active);

        // Pick up to two non-falsified literals to watch; fewer means
        // the clause acts now.
        let mut picks = [0usize; 2];
        let mut found = 0;
        for &l in lits {
            if self.value(l) != FALSE {
                picks[found] = l.code();
                found += 1;
                if found == 2 {
                    break;
                }
            }
        }
        let slot = &mut self.clauses[id];
        slot.lits = lits.to_vec();
        slot.watch = None;
        match found {
            2 => {
                slot.watch = Some(picks);
                self.watches[picks[0]].push(id);
                self.watches[picks[1]].push(id);
            }
            1 => {
                let u = Lit::from_code(picks[0]);
                if self.value(u) == UNASSIGNED {
                    self.assign(u);
                    if self.propagate() {
                        self.proved_unsat = true;
                    }
                }
                // `u` already TRUE: satisfied, nothing to do.
            }
            _ => self.proved_unsat = true, // fully falsified by units
        }
    }
}

/// Order-insensitive clause identity: sorted literal codes.
fn clause_key(lits: &[Lit]) -> Box<[u32]> {
    let mut codes: Vec<u32> = lits.iter().map(|&l| l.code() as u32).collect();
    codes.sort_unstable();
    codes.into_boxed_slice()
}

/// The streaming certifier: a [`ProofSink`] that encodes every event
/// as binary DRAT, pipes the bytes through a bounded [`ByteRing`], and
/// has a [`ForwardChecker`] consume records on the fly.
///
/// The ring is drained whenever it fills (and on every query), so the
/// in-flight proof never exceeds the ring capacity and total memory is
/// the checker's `O(active clauses)` plus a constant. Byte accounting
/// ([`ProofSink::bytes_emitted`]) is exact: it counts every encoded
/// byte, i.e. the size the proof stream would have on disk.
#[derive(Debug)]
pub struct StreamingChecker {
    ring: ByteRing,
    decoder: DratDecoder,
    checker: ForwardChecker,
    scratch: Vec<u8>,
    bytes: usize,
}

impl Default for StreamingChecker {
    fn default() -> Self {
        StreamingChecker::new()
    }
}

impl StreamingChecker {
    /// A checker with the default ring capacity
    /// ([`DEFAULT_RING_BYTES`]).
    pub fn new() -> Self {
        StreamingChecker::with_ring_capacity(DEFAULT_RING_BYTES)
    }

    /// A checker whose in-flight proof buffer holds `bytes` bytes.
    pub fn with_ring_capacity(bytes: usize) -> Self {
        StreamingChecker {
            ring: ByteRing::new(bytes),
            decoder: DratDecoder::new(),
            checker: ForwardChecker::new(),
            scratch: Vec::with_capacity(64),
            bytes: 0,
        }
    }

    /// Capacity of the in-flight ring buffer.
    pub fn ring_capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Drains every buffered byte through the decoder into the checker.
    fn drain_ring(&mut self) {
        let mut chunk = [0u8; 128];
        loop {
            let n = self.ring.read_into(&mut chunk);
            if n == 0 {
                return;
            }
            for &b in &chunk[..n] {
                if self.decoder.feed(b) {
                    let tag = self.decoder.tag();
                    let lits = self.decoder.take_lits();
                    match tag {
                        TAG_ORIG => self.checker.original(&lits),
                        TAG_ADD => {
                            self.checker.add(&lits, false);
                        }
                        TAG_DELETE => self.checker.delete(&lits),
                        TAG_FINAL => {
                            self.checker.add(&lits, true);
                        }
                        _ => unreachable!("decoder only completes known tags"),
                    }
                    self.decoder.recycle(lits);
                }
            }
        }
    }

    fn emit(&mut self, tag: u8, lits: &[Lit]) {
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        encode_record(tag, lits, &mut buf);
        self.bytes += buf.len();
        let mut off = 0;
        while off < buf.len() {
            off += self.ring.push(&buf[off..]);
            if off < buf.len() {
                // Ring full: certify the backlog before buffering more.
                self.drain_ring();
            }
        }
        self.scratch = buf;
    }
}

impl ProofSink for StreamingChecker {
    fn original(&mut self, lits: &[Lit]) {
        self.emit(TAG_ORIG, lits);
    }

    fn add(&mut self, lits: &[Lit]) {
        self.emit(TAG_ADD, lits);
    }

    fn delete(&mut self, lits: &[Lit]) {
        self.emit(TAG_DELETE, lits);
    }

    fn finalize_unsat(&mut self, neg_core: &[Lit]) {
        self.emit(TAG_FINAL, neg_core);
    }

    fn bytes_emitted(&self) -> usize {
        self.bytes
    }

    fn summary(&mut self) -> Option<Certificate> {
        self.drain_ring();
        let mut cert = self.checker.certificate();
        cert.proof_bytes = self.bytes as u64;
        cert.failed_checks += self.decoder.corrupt_bytes();
        Some(cert)
    }

    fn certifies(&mut self, assumptions: &[Lit]) -> bool {
        self.drain_ring();
        // A mangled stream certifies nothing, even if the records that
        // did decode would cover the claim.
        self.decoder.corrupt_bytes() == 0 && self.checker.certifies(assumptions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(code: usize) -> Lit {
        Lit::from_code(code)
    }

    #[test]
    fn rup_accepts_resolvents_and_rejects_non_consequences() {
        let mut c = ForwardChecker::new();
        let (a, b, x) = (l(0), l(2), l(4));
        c.original(&[a, b]);
        c.original(&[!a, b]);
        assert!(c.add(&[b], false), "resolvent is RUP");
        assert!(!c.add(&[x], false), "x is not entailed");
        assert_eq!(c.certificate().failed_checks, 1);
        assert_eq!(c.certificate().lemmas_checked, 2);
    }

    #[test]
    fn empty_clause_proves_unsat_and_certifies_everything() {
        let mut c = ForwardChecker::new();
        let a = l(0);
        c.original(&[a]);
        c.original(&[!a]);
        assert!(c.add(&[], true));
        assert!(c.proved_unsat());
        assert!(c.certifies(&[]));
        assert!(c.certifies(&[l(6)]), "ex falso: any assumption set");
    }

    #[test]
    fn finalization_lemma_matches_assumption_supersets() {
        let mut c = ForwardChecker::new();
        let (a, b, s) = (l(0), l(2), l(4));
        c.original(&[!s, a]);
        c.original(&[!a, !b]);
        // Under assumptions s ∧ b: s → a → ¬b, conflict. Core {s, b}.
        assert!(c.add(&[!s, !b], true), "negated core is RUP");
        assert!(c.certifies(&[s, b]));
        assert!(c.certifies(&[s, b, l(8)]), "subclause of a larger set");
        assert!(!c.certifies(&[s]), "core literal missing");
        assert!(!c.certifies(&[]));
    }

    #[test]
    fn deletions_are_multiset_and_missing_deletes_are_counted() {
        let mut c = ForwardChecker::new();
        let (a, b) = (l(0), l(2));
        c.original(&[a, b]);
        c.original(&[b, a]); // identical content, different order
        assert_eq!(c.active_clauses(), 2);
        c.delete(&[a, b]);
        assert_eq!(c.active_clauses(), 1);
        c.delete(&[b, a]);
        assert_eq!(c.active_clauses(), 0);
        c.delete(&[a, b]);
        let cert = c.certificate();
        assert_eq!(cert.deletions, 3);
        assert_eq!(cert.missing_deletes, 1);
    }

    #[test]
    fn deleted_clauses_stop_supporting_rup() {
        let mut c = ForwardChecker::new();
        let (a, b) = (l(0), l(2));
        c.original(&[a, b]);
        c.original(&[!a, b]);
        c.delete(&[a, b]);
        assert!(!c.add(&[b], false), "support clause gone");
        // But units already derived persist: re-add the clause, derive
        // b, delete everything, b stays.
        c.original(&[a, b]);
        assert!(c.add(&[b], false));
        c.delete(&[a, b]);
        c.delete(&[!a, b]);
        assert!(c.add(&[b], false), "permanent unit keeps b entailed");
    }

    #[test]
    fn unit_insert_propagates_permanently() {
        let mut c = ForwardChecker::new();
        let (a, b, x) = (l(0), l(2), l(4));
        c.original(&[a]);
        c.original(&[!a, b]);
        c.original(&[!b, x]);
        // a, b, x are all forced: the unit clause [x] must be RUP.
        assert!(c.add(&[x], false));
        assert!(!c.proved_unsat());
    }

    #[test]
    fn conflicting_axioms_prove_unsat_without_an_explicit_empty_clause() {
        let mut c = ForwardChecker::new();
        let a = l(0);
        c.original(&[a]);
        c.original(&[!a]);
        assert!(c.proved_unsat(), "unit conflict detected on insert");
    }

    #[test]
    fn streaming_checker_matches_direct_checking() {
        let mut s = StreamingChecker::with_ring_capacity(8); // tiny: forces drains
        let (a, b) = (l(0), l(2));
        s.original(&[a, b]);
        s.original(&[!a, b]);
        s.original(&[!b]);
        s.add(&[b]);
        s.finalize_unsat(&[]);
        assert!(s.certifies(&[]));
        let cert = s.summary().unwrap();
        assert_eq!(cert.originals, 3);
        assert_eq!(cert.lemmas_checked, 2);
        assert_eq!(cert.failed_checks, 0);
        assert_eq!(cert.unsat_proofs, 1);
        assert_eq!(cert.proof_bytes as usize, s.bytes_emitted());
        assert!(cert.proof_bytes > 0);
        assert!(cert.peak_active_clauses >= 3);
    }

    #[test]
    fn streaming_checker_active_set_shrinks_on_deletion() {
        let mut s = StreamingChecker::new();
        let lits: Vec<Lit> = (0..6).map(|i| l(2 * i)).collect();
        for w in lits.windows(2) {
            s.original(w);
        }
        let high = s.summary().unwrap().peak_active_clauses;
        for w in lits.windows(2) {
            s.delete(w);
        }
        let cert = s.summary().unwrap();
        assert_eq!(cert.peak_active_clauses, high, "peak is sticky");
        assert_eq!(cert.deletions, 5);
        assert_eq!(cert.missing_deletes, 0);
    }
}
