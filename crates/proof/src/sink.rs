//! The hook interface the SAT solver drives.

use sebmc_logic::Lit;

use crate::cert::Certificate;

/// Receiver of the solver's proof events.
///
/// The CDCL solver calls these hooks at every point its logical clause
/// database changes:
///
/// * [`ProofSink::original`] for caller-asserted clauses (`add_clause`,
///   incremental additions included) — axioms, inserted unchecked;
/// * [`ProofSink::add`] for derived clauses: learnt clauses from
///   conflict analysis, filtered/strengthened rewrites (always emitted
///   *before* the deletion of the clause they replace, so the RUP
///   check can still use it), and the empty clause on a top-level
///   conflict;
/// * [`ProofSink::delete`] for clauses leaving the database
///   (`reduce_db`, `simplify`, subsumption), identified by literal
///   content — the solver's lazy watch deletion and arena compaction
///   are invisible at this level, which is what keeps the deletion log
///   impossible to desynchronise;
/// * [`ProofSink::finalize_unsat`] when a solve concludes Unsat: the
///   negated failed-assumption core (empty for a top-level conflict),
///   logged like an `add` but remembered so the verdict can later be
///   matched against the assumptions via [`ProofSink::certifies`].
///
/// Implementations: [`crate::StreamingChecker`] (encode + check on the
/// fly) and [`crate::DratWriter`] (encode only, e.g. to a file or to
/// measure pure logging overhead).
pub trait ProofSink: Send + std::fmt::Debug {
    /// Logs a caller-asserted (axiom) clause.
    fn original(&mut self, lits: &[Lit]);

    /// Logs a derived clause (must be RUP against the active set).
    fn add(&mut self, lits: &[Lit]);

    /// Logs the deletion of an active clause by content.
    fn delete(&mut self, lits: &[Lit]);

    /// Logs the finalization lemma of an Unsat solve: the negation of
    /// the failed-assumption core (empty for a top-level conflict).
    fn finalize_unsat(&mut self, neg_core: &[Lit]);

    /// Exact number of encoded proof-stream bytes emitted so far.
    fn bytes_emitted(&self) -> usize;

    /// Cumulative certification counters, if this sink checks what it
    /// writes (`None` for write-only sinks).
    fn summary(&mut self) -> Option<Certificate> {
        None
    }

    /// Whether a verified lemma establishes unsatisfiability under
    /// `assumptions`: either the empty clause was proved, or the last
    /// finalization lemma is a subclause of
    /// `{¬a | a ∈ assumptions}`. Write-only sinks certify nothing.
    fn certifies(&mut self, _assumptions: &[Lit]) -> bool {
        false
    }
}
