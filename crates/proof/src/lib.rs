//! Verdict certification: streaming DRAT proof logging with a
//! bounded-memory forward checker.
//!
//! The paper's whole premise is that bounded-model-checking verdicts
//! should stay trustworthy while memory stays bounded. Reachable
//! verdicts are already checkable — every SAT-backed engine produces a
//! witness trace that `Model::check_trace` replays through the
//! concrete simulator — but an *Unreachable* verdict from a CDCL
//! solver used to be taken on faith. This crate closes that hole in
//! the style the certified-UNSAT line of work made standard: the
//! solver emits a **DRAT** proof (a sequence of clause additions, each
//! checkable by reverse unit propagation, interleaved with clause
//! deletions), and a checker validates it. Two twists keep it on the
//! paper's space-efficiency theme:
//!
//! * the proof is **streamed**, never stored: the solver's
//!   [`ProofSink`] hooks encode each event into binary DRAT, the bytes
//!   flow through a bounded [`ByteRing`], and the
//!   [`StreamingChecker`] consumes and verifies lemmas on the fly —
//!   checker memory is `O(active clauses)` (it mirrors the solver's
//!   live clause database, deletions included), not `O(proof)`;
//! * the stream is **byte-accounted exactly** ([`ProofSink::bytes_emitted`]),
//!   so the size of the certificate joins the clause-arena and
//!   watch-storage bytes in the experiment tables.
//!
//! # The proof dialect
//!
//! Records are binary-DRAT shaped — a one-byte tag, then the clause's
//! literals as base-128 varints, then a `0` terminator — with two
//! extra tags beyond the standard `a`/`d` so one self-contained stream
//! can certify *incremental* solving:
//!
//! | tag | meaning |
//! |---|---|
//! | `o` | **original** clause asserted by the caller (incremental adds included); inserted unchecked |
//! | `a` | derived lemma; must pass reverse unit propagation (RUP) against the current active set |
//! | `d` | deletion of one active clause, identified by its literal content |
//! | `f` | **finalization** lemma of one Unsat solve: the negated failed-assumption core (empty for a top-level conflict); checked like `a` and remembered so the verdict can be matched against the assumptions that produced it |
//!
//! Literals are encoded with the standard binary-DRAT mapping
//! `2·(var + 1) + sign` — with this workspace's `var << 1 | sign`
//! packing that is exactly `code + 2`, so the literal bytes are what
//! external tooling expects and the `0` terminator stays unambiguous.
//! A standard DRAT *stream* is obtained by dropping `o` records (the
//! original formula travels separately as DIMACS) and writing `f` as
//! `a` — see [`DratWriter::standard`].
//!
//! # Soundness
//!
//! Every `a`/`f` clause verified by RUP is entailed by the clauses
//! active when it was checked; by induction, everything ever verified
//! is entailed by the `o` clauses alone. Deletions only ever shrink
//! the active set, so they can cost completeness (a later RUP check
//! might fail) but never soundness — which is why the checker keeps
//! top-level units even when the clause that produced them dies.
//! A verified empty clause certifies plain unsatisfiability; a
//! verified finalization lemma `¬a₁ ∨ … ∨ ¬aₙ` certifies
//! unsatisfiability under the assumptions `a₁ … aₙ`
//! ([`StreamingChecker`] matches it in [`ProofSink::certifies`]).
//!
//! # Example
//!
//! ```
//! use sebmc_logic::Lit;
//! use sebmc_proof::{ProofSink, StreamingChecker};
//!
//! let a = Lit::from_code(0);
//! let b = Lit::from_code(2);
//! let mut sink = StreamingChecker::new();
//! sink.original(&[a, b]);
//! sink.original(&[!a, b]);
//! sink.original(&[!b]);
//! sink.add(&[b]); // resolvent of the first two: RUP
//! sink.finalize_unsat(&[]); // the empty clause now follows
//! let cert = sink.summary().unwrap();
//! assert_eq!(cert.failed_checks, 0);
//! assert!(sink.certifies(&[]));
//! assert!(sink.bytes_emitted() > 0);
//! ```

#![forbid(unsafe_code)]

mod cert;
mod checker;
mod drat;
mod ring;
mod sink;
mod tee;

pub use cert::Certificate;
pub use checker::{ForwardChecker, StreamingChecker, DEFAULT_RING_BYTES};
pub use drat::{decode_stream, DratDecoder, DratWriter, TAG_ADD, TAG_DELETE, TAG_FINAL, TAG_ORIG};
pub use ring::ByteRing;
pub use sink::ProofSink;
pub use tee::TeeSink;
