//! Static model analysis: cone-of-influence reduction, constant-latch
//! sweeping, and witness lifting.
//!
//! The paper's whole contribution is keeping the BMC formula small,
//! yet an engine that encodes the *full* transition cone pays arena
//! bytes and propagation time for latches the target can never
//! observe. This crate runs a static pass over a [`Model`]'s AIG
//! **before any engine starts** and produces:
//!
//! * a [`ModelAnalysis`] diagnostics report — cone-of-influence size
//!   per root, constant latches with their values, unused free
//!   inputs, a latch fan-in histogram, and the transition-relation
//!   cone size before/after reduction;
//! * a [`Reduction`]: a genuinely smaller [`Model`] plus a
//!   [`Reconstruction`] map that lifts traces found on the reduced
//!   model back to the original variable order, so
//!   [`Model::check_trace`] (and `--certify`) still validate against
//!   the **original** model.
//!
//! # The three reductions, and why they are sound
//!
//! **Constant-latch sweeping.** A latch is *swept* when its initial
//! value is forced by the init predicate and its next-state function
//! folds to that same constant once every already-swept latch is
//! substituted. Forced values are extracted by decomposing the init
//! predicate as a top-level AND tree and reading off state literals —
//! an under-approximation, but one that captures every conjunctive
//! init the in-tree builders (and the AIGER importer's zero-init
//! default) produce. The sweep runs the set of candidates *downward*
//! to a greatest fixpoint: start from every forced latch, repeatedly
//! drop candidates whose next function does not fold to their forced
//! constant under the surviving candidates, and stop when the set is
//! stable. The surviving set `S` is simultaneously inductive — every
//! latch of `S` holds its constant in every initial state (forced),
//! and if all of `S` hold their constants at step `t`, each folds to
//! its constant at `t + 1` — so replacing `S` by constants preserves
//! every reachable state projection exactly.
//!
//! **Cone of influence.** With swept latches substituted, each
//! latch's *dependencies* are the state variables occurring in its
//! (folded) next function. The COI is the least set of latches
//! containing the dependencies of `target` and every constraint and
//! closed under next-function dependencies. Latches outside the COI
//! can never influence a verdict through the transition structure —
//! but they can still constrain the *initial* states, so removal
//! additionally requires that the residual init predicate (swept and
//! forced-removed latches substituted) does not mention them; any
//! latch that init still couples to the kept set is promoted back
//! into the COI, to a fixpoint. After that, every removed latch
//! either has a forced init value (substituted into the residual
//! init, which is an equivalence because the literal is conjoined at
//! the top level) or does not occur in it at all (so any lifted value
//! extends an initial state).
//!
//! **Unused inputs.** Free inputs that occur in no kept next
//! function and no constraint (after sweeping) are dropped; lifted
//! traces fill them with `false`.
//!
//! # Trace lifting
//!
//! [`Reconstruction::lift_trace`] rebuilds a full-width trace: kept
//! latches copy from the reduced trace, swept latches replay their
//! constants, removed latches start from their forced (or `false`)
//! init value and are *replayed through the original next functions*
//! step by step — so the lifted trace is a genuine execution of the
//! original model, not just a projection, and passes
//! [`Model::check_trace`] including the successor check on every
//! removed latch.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;

use sebmc_logic::{Aig, AigRef};
use sebmc_model::{Model, ModelBuilder, Trace};

/// What became of one original latch under the reduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LatchFate {
    /// In the cone of influence; maps to this reduced-model index.
    Kept(usize),
    /// Swept as a constant with this value.
    Swept(bool),
    /// Out of the cone of influence (and not constant); `forced` is
    /// its init-forced value when the init predicate pins it.
    Removed {
        /// Init-forced value, if any (`None` means init is
        /// insensitive to the latch and lifting fills `false`).
        forced: Option<bool>,
    },
}

/// What became of one original free input under the reduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InputFate {
    /// Still read somewhere; maps to this reduced-model input index.
    Kept(usize),
    /// Unused after reduction; lifted traces fill it with `false`.
    Filled,
}

/// Cone-of-influence size of one analysis root (the target or one
/// invariant constraint).
#[derive(Clone, Debug)]
pub struct CoiRoot {
    /// Root label (`target` or `constraint[i]`).
    pub name: String,
    /// Latches in this root's transitive cone of influence (computed
    /// with swept constants substituted).
    pub coi_latches: usize,
}

/// The diagnostics report of one static-analysis run.
#[derive(Clone, Debug)]
pub struct ModelAnalysis {
    /// Name of the analysed model.
    pub model: String,
    /// Original latch count.
    pub latches: usize,
    /// Original free-input count.
    pub inputs: usize,
    /// Latches kept (in the cone of influence of target+constraints).
    pub coi_latches: usize,
    /// Swept constant latches as `(original index, constant value)`.
    pub swept: Vec<(usize, bool)>,
    /// Latches removed as out-of-cone (original indices; disjoint
    /// from [`ModelAnalysis::swept`]).
    pub removed: Vec<usize>,
    /// Free inputs dropped as unused (original indices).
    pub unused_inputs: Vec<usize>,
    /// Per-root cone-of-influence sizes (target first, then each
    /// constraint).
    pub coi_roots: Vec<CoiRoot>,
    /// Histogram of latch fan-in: `(fan-in, latch count)`, ascending,
    /// where fan-in counts the distinct state variables and free
    /// inputs a latch's next function reads (before reduction).
    pub fanin_histogram: Vec<(usize, usize)>,
    /// AND gates in the transition-relation cone before reduction.
    pub tr_cone_before: usize,
    /// AND gates in the transition-relation cone after reduction
    /// (equals `tr_cone_before` when the reduction is trivial).
    pub tr_cone_after: usize,
}

impl ModelAnalysis {
    /// Whether the analysis found nothing to remove.
    pub fn is_trivial(&self) -> bool {
        self.swept.is_empty() && self.removed.is_empty() && self.unused_inputs.is_empty()
    }

    /// Latches swept as constants.
    pub fn latches_swept(&self) -> usize {
        self.swept.len()
    }

    /// Free inputs removed as unused.
    pub fn inputs_removed(&self) -> usize {
        self.unused_inputs.len()
    }

    /// The human-readable diagnostics report (the `sebmc analyze`
    /// output).
    pub fn render(&self, original: &Model) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "model {}", self.model);
        let _ = writeln!(
            out,
            "  latches {}  inputs {}  tr-cone {} ANDs",
            self.latches, self.inputs, self.tr_cone_before
        );
        for root in &self.coi_roots {
            let _ = writeln!(out, "  coi[{}] = {} latches", root.name, root.coi_latches);
        }
        let _ = writeln!(
            out,
            "  kept {} / {} latches in cone of influence",
            self.coi_latches, self.latches
        );
        for &(i, v) in &self.swept {
            let _ = writeln!(
                out,
                "  constant latch {} = {}",
                original.state_name(i),
                if v { 1 } else { 0 }
            );
        }
        for &i in &self.removed {
            let _ = writeln!(out, "  out-of-cone latch {}", original.state_name(i));
        }
        for &j in &self.unused_inputs {
            let _ = writeln!(out, "  unused input {}", original.input_name(j));
        }
        let hist: Vec<String> = self
            .fanin_histogram
            .iter()
            .map(|&(fanin, count)| format!("{fanin}:{count}"))
            .collect();
        let _ = writeln!(out, "  fan-in histogram {}", hist.join(" "));
        let _ = writeln!(
            out,
            "  tr-cone {} -> {} ANDs ({})",
            self.tr_cone_before,
            self.tr_cone_after,
            if self.is_trivial() {
                "no reduction"
            } else {
                "reduced"
            }
        );
        out
    }

    /// The report as a JSON object (for `sebmc analyze --json`).
    pub fn to_json(&self) -> String {
        let swept: Vec<String> = self
            .swept
            .iter()
            .map(|&(i, v)| format!("[{},{}]", i, if v { "true" } else { "false" }))
            .collect();
        let roots: Vec<String> = self
            .coi_roots
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"coi_latches\":{}}}",
                    r.name, r.coi_latches
                )
            })
            .collect();
        let hist: Vec<String> = self
            .fanin_histogram
            .iter()
            .map(|&(f, c)| format!("[{f},{c}]"))
            .collect();
        let removed: Vec<String> = self.removed.iter().map(usize::to_string).collect();
        let unused: Vec<String> = self.unused_inputs.iter().map(usize::to_string).collect();
        format!(
            "{{\"model\":\"{}\",\"latches\":{},\"inputs\":{},\"coi_latches\":{},\
             \"latches_swept\":{},\"inputs_removed\":{},\"swept\":[{}],\"removed\":[{}],\
             \"unused_inputs\":[{}],\"coi_roots\":[{}],\"fanin_histogram\":[{}],\
             \"tr_cone_before\":{},\"tr_cone_after\":{}}}",
            json_escape(&self.model),
            self.latches,
            self.inputs,
            self.coi_latches,
            self.swept.len(),
            self.unused_inputs.len(),
            swept.join(","),
            removed.join(","),
            unused.join(","),
            roots.join(","),
            hist.join(","),
            self.tr_cone_before,
            self.tr_cone_after,
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Lifts traces on the reduced model back to the original variable
/// order. Owns a clone of the original model so lifted traces can be
/// replayed (and validated) without the caller keeping one around.
#[derive(Clone, Debug)]
pub struct Reconstruction {
    original: Model,
    latches: Vec<LatchFate>,
    inputs: Vec<InputFate>,
}

impl Reconstruction {
    /// The original (unreduced) model.
    pub fn original(&self) -> &Model {
        &self.original
    }

    /// Per-latch fate, indexed by original latch.
    pub fn latch_fates(&self) -> &[LatchFate] {
        &self.latches
    }

    /// Per-input fate, indexed by original free input.
    pub fn input_fates(&self) -> &[InputFate] {
        &self.inputs
    }

    /// Lifts a trace of the reduced model to the original variable
    /// order.
    ///
    /// Kept latches and inputs copy from the reduced trace; swept
    /// latches replay their constants; removed latches start from
    /// their forced init value (`false` when init does not mention
    /// them) and are replayed through the original next functions, so
    /// the result is a genuine original-model execution. Dropped
    /// inputs are filled with `false`.
    ///
    /// Fails (with a description) when the reduced trace has the
    /// wrong shape for the reduced model — the caller should treat
    /// that as a reduction bug and degrade the verdict rather than
    /// trust the trace.
    pub fn lift_trace(&self, reduced: &Trace) -> Result<Trace, String> {
        if reduced.states.len() != reduced.inputs.len() + 1 {
            return Err(format!(
                "reduced trace malformed: {} states, {} inputs",
                reduced.states.len(),
                reduced.inputs.len()
            ));
        }
        let n = self.latches.len();
        let m = self.inputs.len();
        let reduced_n = self
            .latches
            .iter()
            .filter(|f| matches!(f, LatchFate::Kept(_)))
            .count();
        let reduced_m = self
            .inputs
            .iter()
            .filter(|f| matches!(f, InputFate::Kept(_)))
            .count();
        for (t, s) in reduced.states.iter().enumerate() {
            if s.len() != reduced_n {
                return Err(format!(
                    "reduced state {t} has width {} (expected {reduced_n})",
                    s.len()
                ));
            }
        }
        for (t, iv) in reduced.inputs.iter().enumerate() {
            if iv.len() != reduced_m {
                return Err(format!(
                    "reduced input vector {t} has width {} (expected {reduced_m})",
                    iv.len()
                ));
            }
        }

        let inputs: Vec<Vec<bool>> = reduced
            .inputs
            .iter()
            .map(|riv| {
                let mut full = vec![false; m];
                for (j, fate) in self.inputs.iter().enumerate() {
                    if let InputFate::Kept(rj) = fate {
                        full[j] = riv[*rj];
                    }
                }
                full
            })
            .collect();

        let mut first = vec![false; n];
        for (i, fate) in self.latches.iter().enumerate() {
            first[i] = match fate {
                LatchFate::Kept(ri) => reduced.states[0][*ri],
                LatchFate::Swept(v) => *v,
                LatchFate::Removed { forced } => forced.unwrap_or(false),
            };
        }
        let mut states = vec![first];
        for (t, full_inputs) in inputs.iter().enumerate() {
            let prev = states.last().expect("states is non-empty");
            let mut next = self.original.step(prev, full_inputs);
            for (i, fate) in self.latches.iter().enumerate() {
                if let LatchFate::Kept(ri) = fate {
                    debug_assert_eq!(
                        next[i],
                        reduced.states[t + 1][*ri],
                        "kept latch {i} diverged from the reduced trace at step {t}"
                    );
                    next[i] = reduced.states[t + 1][*ri];
                }
            }
            states.push(next);
        }
        Ok(Trace { states, inputs })
    }
}

/// A successful reduction: the analysis report, the smaller model,
/// and the lifting map back to the original.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The diagnostics report.
    pub analysis: ModelAnalysis,
    /// The reduced model (strictly fewer latches and/or inputs than
    /// the original).
    pub model: Model,
    /// The lifting map (owns a clone of the original model).
    pub recon: Reconstruction,
}

/// Runs the full analysis pipeline and returns the diagnostics
/// report, without building a reduced model.
pub fn analyze(model: &Model) -> ModelAnalysis {
    run(model).0
}

/// Runs the full analysis pipeline and builds the reduced model.
///
/// Returns `None` when there is nothing to remove (the reduced model
/// would equal the original), when the cone of influence is empty
/// (a degenerate model no engine needs help with), or when the init
/// predicate was found contradictory during forced-literal extraction
/// (reduction stays out of the way of an empty state space).
pub fn reduce(model: &Model) -> Option<Reduction> {
    let (analysis, built) = run(model);
    let (reduced, recon) = built?;
    Some(Reduction {
        analysis,
        model: reduced,
        recon,
    })
}

/// AIG-input classification for one model: which primary input backs
/// which latch / free input.
struct InputRoles {
    /// AIG input index -> latch index.
    latch_of: Vec<Option<usize>>,
    /// AIG input index -> free-input index.
    free_of: Vec<Option<usize>>,
}

impl InputRoles {
    fn of(model: &Model) -> Self {
        let total = model.aig().num_inputs();
        let mut latch_of = vec![None; total];
        let mut free_of = vec![None; total];
        for (i, &p) in model.state_input_indices().iter().enumerate() {
            latch_of[p] = Some(i);
        }
        for (j, &p) in model.free_input_indices().iter().enumerate() {
            free_of[p] = Some(j);
        }
        InputRoles { latch_of, free_of }
    }
}

fn const_ref(v: bool) -> AigRef {
    if v {
        AigRef::TRUE
    } else {
        AigRef::FALSE
    }
}

/// Extracts init-forced latch values by decomposing the init
/// predicate as a top-level AND tree and reading state literals off
/// its leaves. Returns `None` when the decomposition proves init
/// contradictory (conjoined `x` and `!x`, or a `false` leaf).
fn forced_init_values(model: &Model, roles: &InputRoles) -> Option<Vec<Option<bool>>> {
    let aig = model.aig();
    let mut forced = vec![None; model.num_state_vars()];
    let init = model.init_ref();
    if init == AigRef::FALSE {
        return None;
    }
    let mut stack = vec![init];
    while let Some(r) = stack.pop() {
        if r == AigRef::TRUE {
            continue;
        }
        if r == AigRef::FALSE {
            return None;
        }
        let node = r.node();
        if let Some((a, b)) = aig.and_fanins(node) {
            // Only a *non-complemented* AND is a conjunction we can
            // decompose; a negated AND is an opaque leaf.
            if !r.is_complement() {
                stack.push(a);
                stack.push(b);
            }
            continue;
        }
        if let Some(p) = aig.input_index(node) {
            if let Some(latch) = roles.latch_of[p] {
                let v = !r.is_complement();
                match forced[latch] {
                    None => forced[latch] = Some(v),
                    Some(old) if old != v => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(forced)
}

/// The primary-input indices (of `aig`) that `root` transitively
/// reads.
fn support(aig: &Aig, root: AigRef) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    for node in aig.cone_topo(&[root]) {
        if let Some(i) = aig.input_index(node) {
            out.insert(i);
        }
    }
    out
}

/// A scratch import of a set of roots with swept latches substituted
/// by constants: maps every surviving AIG input to a fresh scratch
/// input and records the origin of each, so supports computed in the
/// scratch graph (where constant folding has run) map back to
/// original latch/input indices.
struct SweptView {
    scratch: Aig,
    /// Translated roots, in the order given to [`SweptView::import`].
    roots: Vec<AigRef>,
    /// Scratch input index -> original AIG input index.
    origin: Vec<usize>,
}

impl SweptView {
    fn import(model: &Model, swept: &[Option<bool>], roles: &InputRoles, roots: &[AigRef]) -> Self {
        let aig = model.aig();
        let mut scratch = Aig::new();
        let mut origin = Vec::new();
        let mut map = Vec::with_capacity(aig.num_inputs());
        for p in 0..aig.num_inputs() {
            let subst = roles.latch_of[p]
                .and_then(|latch| swept[latch])
                .map(const_ref);
            map.push(subst.unwrap_or_else(|| {
                origin.push(p);
                scratch.input()
            }));
        }
        let roots = scratch.import(aig, roots, &map);
        SweptView {
            scratch,
            roots,
            origin,
        }
    }

    /// The original latches the `idx`-th imported root depends on.
    fn latch_support(&self, idx: usize, roles: &InputRoles) -> BTreeSet<usize> {
        support(&self.scratch, self.roots[idx])
            .into_iter()
            .filter_map(|si| roles.latch_of[self.origin[si]])
            .collect()
    }

    /// The original free inputs the `idx`-th imported root depends on.
    fn free_support(&self, idx: usize, roles: &InputRoles) -> BTreeSet<usize> {
        support(&self.scratch, self.roots[idx])
            .into_iter()
            .filter_map(|si| roles.free_of[self.origin[si]])
            .collect()
    }
}

fn run(model: &Model) -> (ModelAnalysis, Option<(Model, Reconstruction)>) {
    let n = model.num_state_vars();
    let m = model.num_inputs();
    let aig = model.aig();
    let roles = InputRoles::of(model);

    // Fan-in histogram over the raw (unswept) next functions.
    let mut fanin_counts: Vec<usize> = Vec::with_capacity(n);
    for &next in model.next_refs() {
        fanin_counts.push(support(aig, next).len());
    }
    let mut histogram: Vec<(usize, usize)> = Vec::new();
    let mut sorted = fanin_counts.clone();
    sorted.sort_unstable();
    for fanin in sorted {
        match histogram.last_mut() {
            Some((f, c)) if *f == fanin => *c += 1,
            _ => histogram.push((fanin, 1)),
        }
    }

    let trivial_analysis = |tr_before: usize| ModelAnalysis {
        model: model.name().to_string(),
        latches: n,
        inputs: m,
        coi_latches: n,
        swept: Vec::new(),
        removed: Vec::new(),
        unused_inputs: Vec::new(),
        coi_roots: Vec::new(),
        fanin_histogram: histogram.clone(),
        tr_cone_before: tr_before,
        tr_cone_after: tr_before,
    };
    let tr_before = model.tr_cone_size();

    // 1. Init-forced values; a contradictory init means an empty
    // state space — leave the model alone.
    let Some(forced) = forced_init_values(model, &roles) else {
        return (trivial_analysis(tr_before), None);
    };

    // 2. Constant sweep, downward to a greatest fixpoint: candidates
    // start as every forced latch and shrink until each surviving
    // candidate's next function folds to its constant under all
    // surviving candidates.
    let mut swept: Vec<Option<bool>> = forced.clone();
    loop {
        let candidates: Vec<usize> = (0..n).filter(|&i| swept[i].is_some()).collect();
        if candidates.is_empty() {
            break;
        }
        let roots: Vec<AigRef> = candidates.iter().map(|&i| model.next_refs()[i]).collect();
        let view = SweptView::import(model, &swept, &roles, &roots);
        let mut changed = false;
        for (k, &i) in candidates.iter().enumerate() {
            let want = const_ref(swept[i].expect("candidate has a value"));
            if view.roots[k] != want {
                swept[i] = None;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // 3. Dependencies (swept constants substituted) and the cone of
    // influence of target + constraints.
    let mut dep_roots: Vec<AigRef> = model.next_refs().to_vec();
    dep_roots.push(model.target_ref());
    dep_roots.extend_from_slice(model.constraint_refs());
    let view = SweptView::import(model, &swept, &roles, &dep_roots);
    let latch_deps: Vec<BTreeSet<usize>> = (0..n).map(|i| view.latch_support(i, &roles)).collect();
    let closure = |seed: BTreeSet<usize>| -> BTreeSet<usize> {
        let mut kept = BTreeSet::new();
        let mut stack: Vec<usize> = seed.into_iter().collect();
        while let Some(i) = stack.pop() {
            if !kept.insert(i) {
                continue;
            }
            for &d in &latch_deps[i] {
                if !kept.contains(&d) {
                    stack.push(d);
                }
            }
        }
        kept
    };

    let mut coi_roots = Vec::new();
    let mut seed = BTreeSet::new();
    for (k, root) in dep_roots.iter().enumerate().skip(n) {
        let _ = root;
        let root_deps = view.latch_support(k, &roles);
        let root_coi = closure(root_deps.clone());
        coi_roots.push(CoiRoot {
            name: if k == n {
                "target".to_string()
            } else {
                format!("constraint[{}]", k - n - 1)
            },
            coi_latches: root_coi.len(),
        });
        seed.extend(root_deps);
    }
    let mut kept = closure(seed);
    // A swept latch can never be in the cone (it was substituted out
    // of every support).
    debug_assert!(kept.iter().all(|&i| swept[i].is_none()));

    // 4. Init-residual fixpoint: a removed latch must not constrain
    // the kept set through the init predicate. Substitute swept and
    // forced-removed latches in init; any *other* removed latch that
    // still occurs is promoted back into the cone.
    loop {
        let mut init_map = Vec::with_capacity(aig.num_inputs());
        let mut scratch = Aig::new();
        let mut origin = Vec::new();
        for p in 0..aig.num_inputs() {
            let subst = match roles.latch_of[p] {
                Some(i) if swept[i].is_some() => Some(const_ref(swept[i].expect("swept"))),
                Some(i) if !kept.contains(&i) => forced[i].map(const_ref),
                _ => None,
            };
            init_map.push(subst.unwrap_or_else(|| {
                origin.push(p);
                scratch.input()
            }));
        }
        let residual = scratch.import(aig, &[model.init_ref()], &init_map)[0];
        let promote: Vec<usize> = support(&scratch, residual)
            .into_iter()
            .filter_map(|si| roles.latch_of[origin[si]])
            .filter(|i| swept[*i].is_none() && !kept.contains(i))
            .collect();
        if promote.is_empty() {
            break;
        }
        let mut seed = kept.clone();
        seed.extend(promote);
        kept = closure(seed);
    }

    // 5. Unused free inputs: not read by any kept next function or
    // any constraint (after sweeping).
    let mut used_inputs: BTreeSet<usize> = BTreeSet::new();
    for &i in &kept {
        used_inputs.extend(view.free_support(i, &roles));
    }
    for k in (n + 1)..dep_roots.len() {
        used_inputs.extend(view.free_support(k, &roles));
    }
    let unused_inputs: Vec<usize> = (0..m).filter(|j| !used_inputs.contains(j)).collect();

    let swept_list: Vec<(usize, bool)> = (0..n).filter_map(|i| swept[i].map(|v| (i, v))).collect();
    let removed_list: Vec<usize> = (0..n)
        .filter(|i| swept[*i].is_none() && !kept.contains(i))
        .collect();

    let mut analysis = ModelAnalysis {
        model: model.name().to_string(),
        latches: n,
        inputs: m,
        coi_latches: kept.len(),
        swept: swept_list.clone(),
        removed: removed_list.clone(),
        unused_inputs: unused_inputs.clone(),
        coi_roots,
        fanin_histogram: histogram,
        tr_cone_before: tr_before,
        tr_cone_after: tr_before,
    };

    if analysis.is_trivial() || kept.is_empty() {
        // Nothing to remove, or a degenerate cone (a constant target
        // needs no engine help and a zero-latch model would only
        // invite edge cases downstream).
        return (analysis, None);
    }

    // 6. Build the reduced model.
    let kept_vec: Vec<usize> = kept.iter().copied().collect();
    let mut reduced_idx = vec![usize::MAX; n];
    for (ri, &i) in kept_vec.iter().enumerate() {
        reduced_idx[i] = ri;
    }
    let used_vec: Vec<usize> = used_inputs.iter().copied().collect();
    let mut reduced_input_idx = vec![usize::MAX; m];
    for (rj, &j) in used_vec.iter().enumerate() {
        reduced_input_idx[j] = rj;
    }

    let mut b = ModelBuilder::new(model.name());
    let state_refs: Vec<AigRef> = kept_vec
        .iter()
        .map(|&i| b.state_var(model.state_name(i)))
        .collect();
    let input_refs: Vec<AigRef> = used_vec
        .iter()
        .map(|&j| b.input(model.input_name(j)))
        .collect();

    // The general substitution: kept latches to reduced state vars,
    // swept latches to their constants, removed latches to `false`
    // (they cannot occur in any imported cone — the COI closure and
    // the unused-input computation guarantee it), used inputs to
    // reduced inputs, unused inputs to `false`.
    let mut general_map = Vec::with_capacity(aig.num_inputs());
    // Init keeps kept latches symbolic but substitutes swept and
    // forced-removed latches; unforced removed latches cannot occur
    // (the init-residual fixpoint promoted any that did).
    let mut init_map = Vec::with_capacity(aig.num_inputs());
    for p in 0..aig.num_inputs() {
        let (g, ini) = if let Some(i) = roles.latch_of[p] {
            if let Some(v) = swept[i] {
                (const_ref(v), const_ref(v))
            } else if kept.contains(&i) {
                (state_refs[reduced_idx[i]], state_refs[reduced_idx[i]])
            } else {
                (AigRef::FALSE, const_ref(forced[i].unwrap_or(false)))
            }
        } else if let Some(j) = roles.free_of[p] {
            if reduced_input_idx[j] != usize::MAX {
                (input_refs[reduced_input_idx[j]], AigRef::FALSE)
            } else {
                (AigRef::FALSE, AigRef::FALSE)
            }
        } else {
            // An AIG input backing neither a latch nor a free input
            // cannot occur in any model cone.
            (AigRef::FALSE, AigRef::FALSE)
        };
        general_map.push(g);
        init_map.push(ini);
    }

    let mut general_roots: Vec<AigRef> = kept_vec.iter().map(|&i| model.next_refs()[i]).collect();
    general_roots.push(model.target_ref());
    general_roots.extend_from_slice(model.constraint_refs());
    let imported = b.aig_mut().import(aig, &general_roots, &general_map);
    let imported_init = b.aig_mut().import(aig, &[model.init_ref()], &init_map)[0];

    for (ri, &f) in imported.iter().take(kept_vec.len()).enumerate() {
        b.set_next(ri, f);
    }
    b.set_target(imported[kept_vec.len()]);
    for &c in &imported[kept_vec.len() + 1..] {
        b.add_constraint(c);
    }
    b.set_init(imported_init);

    // A build error here would be a reduction bug (e.g. a cone that
    // still reads a dropped input); degrade to "no reduction" rather
    // than poison the run.
    let Ok(reduced) = b.build() else {
        analysis.swept.clear();
        analysis.removed.clear();
        analysis.unused_inputs.clear();
        analysis.coi_latches = n;
        return (analysis, None);
    };
    analysis.tr_cone_after = reduced.tr_cone_size();

    let latch_fates: Vec<LatchFate> = (0..n)
        .map(|i| {
            if let Some(v) = swept[i] {
                LatchFate::Swept(v)
            } else if kept.contains(&i) {
                LatchFate::Kept(reduced_idx[i])
            } else {
                LatchFate::Removed { forced: forced[i] }
            }
        })
        .collect();
    let input_fates: Vec<InputFate> = (0..m)
        .map(|j| {
            if reduced_input_idx[j] != usize::MAX {
                InputFate::Kept(reduced_input_idx[j])
            } else {
                InputFate::Filled
            }
        })
        .collect();
    let recon = Reconstruction {
        original: model.clone(),
        latches: latch_fates,
        inputs: input_fates,
    };
    (analysis, Some((reduced, recon)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_model::builders;

    /// A model with an observer latch chain hanging off the side: the
    /// target reads only a 3-bit counter, while `obs`-latches track
    /// the counter but feed nothing.
    fn counter_with_observers() -> Model {
        let mut b = ModelBuilder::new("counter_obs");
        let bits = b.state_vars(3, "c");
        let obs = b.state_vars(2, "obs");
        let aig = b.aig_mut();
        // 3-bit increment.
        let mut carry = AigRef::TRUE;
        let mut next = Vec::new();
        for &bit in &bits {
            next.push(aig.xor(bit, carry));
            carry = aig.and(bit, carry);
        }
        // Observers copy counter bits; nothing reads them. obs1
        // reads obs0, so its gate cannot strash-share with the
        // counter cone and the transition cone genuinely shrinks.
        let next_obs0 = bits[0];
        let next_obs1 = aig.and(obs[0], bits[1]);
        let target = aig.and_many(&bits.clone());
        for (i, f) in next.into_iter().enumerate() {
            b.set_next(i, f);
        }
        b.set_next(3, next_obs0);
        b.set_next(4, next_obs1);
        b.set_target(target);
        b.build().expect("valid model")
    }

    /// A model with a stuck-at-constant latch feeding the target: the
    /// enable latch starts 1 and its next function is itself, so it
    /// sweeps to constant true and the gate folds away.
    fn counter_with_constant_enable() -> Model {
        let mut b = ModelBuilder::new("counter_const_en");
        let bits = b.state_vars(3, "c");
        let en = b.state_var("en");
        let aig = b.aig_mut();
        let mut carry = en;
        let mut next = Vec::new();
        for &bit in &bits {
            next.push(aig.xor(bit, carry));
            carry = aig.and(bit, carry);
        }
        let target = aig.and_many(&bits.clone());
        // init: counter zero, enable one.
        let mut init = aig.eq_const(&bits, 0);
        init = aig.and(init, en);
        for (i, f) in next.into_iter().enumerate() {
            b.set_next(i, f);
        }
        b.set_next(3, en); // en' = en: constant-preserving
        b.set_init(init);
        b.set_target(target);
        b.build().expect("valid model")
    }

    #[test]
    fn observers_are_removed_and_traces_lift() {
        let model = counter_with_observers();
        let red = reduce(&model).expect("observers must be removable");
        assert_eq!(red.analysis.coi_latches, 3);
        assert_eq!(red.analysis.removed.len(), 2);
        assert!(red.analysis.swept.is_empty());
        assert_eq!(red.model.num_state_vars(), 3);
        assert!(red.analysis.tr_cone_after < red.analysis.tr_cone_before);

        // Drive the reduced model to its target and lift the trace.
        let mut state = vec![false; 3];
        let mut trace = Trace {
            states: vec![state.clone()],
            inputs: Vec::new(),
        };
        for _ in 0..7 {
            state = red.model.step(&state, &[]);
            trace.states.push(state.clone());
            trace.inputs.push(Vec::new());
        }
        red.model
            .check_trace(&trace)
            .expect("reduced trace replays");
        let lifted = red.recon.lift_trace(&trace).expect("lift succeeds");
        model
            .check_trace(&lifted)
            .expect("lifted trace validates against the original model");
    }

    #[test]
    fn constant_enable_is_swept() {
        let model = counter_with_constant_enable();
        let red = reduce(&model).expect("enable must sweep");
        assert_eq!(red.analysis.swept, vec![(3, true)]);
        assert_eq!(red.model.num_state_vars(), 3);
        assert!(red.analysis.tr_cone_after < red.analysis.tr_cone_before);
        // The reduced counter reaches 7 in exactly 7 steps, like the
        // original with the enable held high.
        let mut state = vec![false; 3];
        let mut trace = Trace {
            states: vec![state.clone()],
            inputs: Vec::new(),
        };
        for _ in 0..7 {
            state = red.model.step(&state, &[]);
            trace.states.push(state.clone());
            trace.inputs.push(Vec::new());
        }
        assert!(red.model.eval_target(trace.states.last().unwrap()));
        let lifted = red.recon.lift_trace(&trace).expect("lift succeeds");
        model.check_trace(&lifted).expect("lifted trace validates");
        // The swept latch replays its constant on every lifted state.
        assert!(lifted.states.iter().all(|s| s[3]));
    }

    #[test]
    fn arbiter_grants_leave_the_cone() {
        // round_robin_arbiter(n): only grant[n-1] is the target; the
        // other grant latches feed nothing and their request inputs
        // become unused.
        let model = builders::round_robin_arbiter(4);
        let red = reduce(&model).expect("arbiter reduces");
        assert!(
            red.analysis.removed.len() >= 3,
            "grants 0..2 leave the cone: {:?}",
            red.analysis
        );
        assert!(
            !red.analysis.unused_inputs.is_empty(),
            "their request inputs become unused"
        );
        assert!(red.model.num_state_vars() < model.num_state_vars());
    }

    #[test]
    fn fifo_head_pointer_leaves_the_cone() {
        let model = builders::fifo(3);
        let red = reduce(&model).expect("fifo reduces");
        assert!(
            red.model.num_state_vars() < model.num_state_vars(),
            "head pointer latches leave the cone: {:?}",
            red.analysis
        );
    }

    #[test]
    fn tight_models_do_not_reduce() {
        for model in [
            builders::counter_with_reset(4),
            builders::shift_register(6),
            builders::traffic_light(),
        ] {
            assert!(
                reduce(&model).is_none(),
                "{} has nothing to remove",
                model.name()
            );
            let a = analyze(&model);
            assert!(a.is_trivial(), "{}: {a:?}", model.name());
            assert_eq!(a.tr_cone_before, a.tr_cone_after);
        }
    }

    #[test]
    fn analysis_report_renders() {
        let model = builders::round_robin_arbiter(4);
        let a = analyze(&model);
        let text = a.render(&model);
        assert!(text.contains("cone of influence"));
        assert!(text.contains("fan-in histogram"));
        let json = a.to_json();
        assert!(json.contains("\"coi_latches\""));
        assert!(json.contains("\"tr_cone_before\""));
    }

    #[test]
    fn lift_rejects_malformed_reduced_traces() {
        let model = counter_with_observers();
        let red = reduce(&model).expect("reduces");
        let bad = Trace {
            states: vec![vec![false; 99]],
            inputs: Vec::new(),
        };
        assert!(red.recon.lift_trace(&bad).is_err());
        let shapeless = Trace {
            states: Vec::new(),
            inputs: vec![Vec::new()],
        };
        assert!(red.recon.lift_trace(&shapeless).is_err());
    }

    /// Reduced and original models agree on bounded reachability,
    /// checked exhaustively with the explicit-state oracle where
    /// feasible (small models).
    #[test]
    fn reduction_preserves_step_semantics_on_kept_latches() {
        let model = builders::round_robin_arbiter(4);
        let red = reduce(&model).expect("arbiter reduces");
        let kept: Vec<usize> = red
            .recon
            .latch_fates()
            .iter()
            .enumerate()
            .filter_map(|(i, f)| matches!(f, LatchFate::Kept(_)).then_some(i))
            .collect();
        let kept_inputs: Vec<usize> = red
            .recon
            .input_fates()
            .iter()
            .enumerate()
            .filter_map(|(j, f)| matches!(f, InputFate::Kept(_)).then_some(j))
            .collect();
        // Walk a few steps from the all-zero-ish init under varying
        // inputs; the kept-latch projection must evolve identically.
        let mut full = vec![false; model.num_state_vars()];
        for (i, f) in red.recon.latch_fates().iter().enumerate() {
            if let LatchFate::Swept(v) = f {
                full[i] = *v;
            }
        }
        let mut small: Vec<bool> = kept.iter().map(|&i| full[i]).collect();
        for step in 0..12u32 {
            let full_inputs: Vec<bool> = (0..model.num_inputs())
                .map(|j| (step.wrapping_mul(7).wrapping_add(j as u32)) % 3 == 0)
                .collect();
            let small_inputs: Vec<bool> = kept_inputs.iter().map(|&j| full_inputs[j]).collect();
            full = model.step(&full, &full_inputs);
            small = red.model.step(&small, &small_inputs);
            let projected: Vec<bool> = kept.iter().map(|&i| full[i]).collect();
            assert_eq!(small, projected, "divergence at step {step}");
        }
    }
}
