//! The CDCL SAT solver.
//!
//! A from-scratch conflict-driven clause-learning solver in the
//! MiniSat/zChaff tradition — the same algorithm family as the
//! "state-of-the-art DPLL-based SAT solvers" the paper evaluated in
//! 2005, and the substrate its jSAT procedure was built on:
//!
//! * two-watched-literal propagation with blocker literals and an
//!   inline binary-clause fast path,
//! * first-UIP conflict analysis with basic clause minimization,
//! * VSIDS variable activities with phase saving,
//! * Luby-sequence restarts,
//! * activity-based learnt-clause database reduction,
//! * MiniSat-style assumptions with failed-assumption cores,
//! * conflict/propagation/wall-clock budgets (the paper's 300 s limit),
//! * `simplify()` — level-0 garbage collection that physically removes
//!   satisfied clauses, which is what lets jSAT retract blocking
//!   clauses and keep its memory proportional to the path length.
//!
//! # Clause storage: the arena and the flat watch lists
//!
//! All clauses live in a single flat [`ClauseArena`] (see
//! [`crate::arena`] for the record layout) and are referred to by
//! [`CRef`] word offsets. Learnt records carry two extra header words:
//! an activity (VSIDS-style) and an **LBD** ("glue") word — the number
//! of distinct decision levels among the clause's literals at learn
//! time, refreshed downwards whenever the clause re-appears as a
//! conflict. Watchers live in a second flat structure, the
//! [`OccLists`](crate::occlists): one `Vec` of watchers segmented by
//! per-literal `(start, len)` ranges, so a propagation cascade walks
//! contiguous memory instead of chasing one heap `Vec` per literal,
//! and watch storage is byte-accounted and compactable exactly like
//! the arena.
//!
//! Three kinds of root references exist, and the solver maintains
//! these invariants for each:
//!
//! * **clause lists** (`clauses` for problem clauses, `learnt_refs`
//!   for learnt ones) hold every live clause exactly once and *never*
//!   hold a freed clause — `free` is always paired with removal from
//!   the owning list;
//! * **watch lists** hold exactly two watchers per live clause of
//!   length ≥ 2 (for clauses of length 2 the watcher carries the other
//!   literal inline and is tagged binary, so propagation never touches
//!   the arena for them). Deletion is **lazy**: freeing a clause
//!   outside `simplify()` smudges its two watch lists (a dirty bit)
//!   instead of scanning them, and a dirty list may contain watchers
//!   of freed clauses until its next `clean()` — which runs when
//!   propagation next looks the list up, and unconditionally for all
//!   dirty lists before arena compaction. `simplify()` still rebuilds
//!   every list from scratch;
//! * **reason references** (`VarData::reason`) exist only for
//!   currently-assigned non-decision variables on the trail; clauses
//!   locked as reasons are never freed (`reduce_db` checks
//!   `is_locked` — on *both* watched slots, since the binary fast
//!   path implies the watcher's blocker, which may sit at slot 0 or
//!   1 — `free_clause` debug-asserts it, and `simplify` runs at
//!   level 0 where reasons have been cleared).
//!
//! # Learnt-clause management
//!
//! `reduce_db` drops the weaker (activity-ordered) half of the learnt
//! database, sparing binary clauses, clauses locked as reasons, and
//! **glue clauses** (LBD ≤ [`GLUE_PROTECT`]), which empirically encode
//! the search's backbone. `simplify()` additionally runs one bounded
//! pass of on-the-fly subsumption over flat occurrence ranges: a
//! clause C deletes any clause it subsumes (a learnt C only deletes
//! learnt clauses, so the problem formula never depends on a clause
//! that reduction may later remove) and self-subsuming resolution
//! strips single literals (strengthening), which can cascade into new
//! units.
//!
//! # Compacting garbage collection
//!
//! `free`/`shrink` only *book* garbage; the words are reclaimed by
//! [`Solver::garbage_collect`], which first cleans every dirty watch
//! list (so no freed record's forwarding pointer is ever requested),
//! then copies live records into a fresh arena (in clause-list order,
//! restoring allocation locality) and rewrites all three
//! root-reference kinds through the arena's forwarding pointers.
//! Collection triggers automatically whenever the wasted share of the
//! arena exceeds [`GC_WASTE_FRACTION`] at a safe point: after
//! `simplify()` (jSAT's blocking-clause retirement) and after
//! `reduce_db()` (learnt-clause pruning). The watch storage compacts
//! at the same safe points once enough segments have been abandoned
//! by list growth. This is what turns the seed's tombstone leak into
//! physically-flat memory: retired clauses now shrink the resident
//! clause database, not just a counter.
//!
//! # Proof logging
//!
//! With a [`ProofSink`] installed ([`Solver::set_proof_sink`], before
//! the first clause), the solver narrates every change to its
//! *logical* clause database as a binary-DRAT event stream:
//!
//! * `add_clause` logs the caller's clause as an **original**; when
//!   level-0 filtering strips falsified literals, the filtered clause
//!   is logged as a derived **add** (RUP via the top-level units)
//!   followed by a **delete** of the original;
//! * every clause learnt by `analyze` is logged as an **add** (the
//!   first-UIP clause with minimization is RUP by construction);
//! * `reduce_db`, `simplify` and the subsumption pass log a **delete**
//!   for every clause they free; in-place rewrites (literal stripping,
//!   self-subsuming strengthening) log the new clause *before*
//!   deleting the old one, so the RUP check can still lean on it;
//! * an Unsat verdict is **finalized**: a top-level conflict logs the
//!   empty clause, an assumption failure logs the negated
//!   failed-assumption core from `analyze_final` (itself RUP — the
//!   core's reason cone replays under unit propagation).
//!
//! The deletion log is keyed by clause *content*, never by [`CRef`] —
//! which is the invariant that makes the delicate parts of this
//! solver (lazy watch deletion leaves stale watchers in smudged lists;
//! arena compaction rewrites every `CRef`) invisible to the proof:
//! deletions are logged exactly once, at the `free_clause` call sites
//! where the clause leaves its owning list, and GC/watch hygiene
//! never touches the stream. A clause that is *rewritten to a unit*
//! is freed by the solver (the fact lives on as a trail assignment)
//! but **not** deleted from the proof, because the checker's unit is
//! that clause.
//!
//! [`Stats::peak_proof_bytes`] carries the exact encoded size of the
//! emitted stream, alongside the arena and watch byte accounting.

use std::time::Instant;

use sebmc_logic::{Cnf, Lit, Var};
use sebmc_proof::{Certificate, ProofSink};

use crate::arena::{CRef, ClauseArena};
use crate::heap::ActivityHeap;
use crate::occlists::{OccLists, Watcher};

/// Result of a [`Solver::solve`] call.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (see [`Solver::value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// A resource budget was exhausted before a verdict.
    Unknown,
}

impl SolveResult {
    /// `true` for [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == SolveResult::Sat
    }

    /// `true` for [`SolveResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SolveResult::Unsat
    }
}

/// Resource budgets for a single `solve` call.
///
/// All fields default to "unlimited". The deadline is a wall-clock
/// instant, checked periodically during search.
#[derive(Clone, Debug, Default)]
pub struct Limits {
    /// Maximum number of conflicts before giving up.
    pub max_conflicts: Option<u64>,
    /// Maximum number of propagations before giving up.
    pub max_propagations: Option<u64>,
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Maximum live clause-database bytes (exact arena accounting,
    /// clause headers included); exceeding it aborts the solve with
    /// `Unknown`, reproducing the paper's 1 GB memory limit. (The
    /// legacy `max_live_lits` literal-count proxy is gone: bytes are
    /// the one memory cap, so two limits can never silently disagree.)
    pub max_live_bytes: Option<usize>,
    /// Cooperative cancellation flag, polled at the same safe points as
    /// the deadline (every 64 conflicts and before each decision). When
    /// another thread stores `true`, the solve aborts with `Unknown`.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Fault-injection plan, consulted at the same safe points as the
    /// cancel flag. Inert by default; see [`sebmc_logic::fault`].
    pub fault: sebmc_logic::fault::FaultPlan,
    /// Progress sink, polled at the per-64-conflicts safe point and
    /// once at solve exit. Inert by default: an uninstalled handle
    /// costs one `Option` branch per poll, same contract as the proof
    /// hooks.
    pub progress: sebmc_telemetry::ProgressHandle,
}

impl Limits {
    /// No limits at all.
    pub fn none() -> Self {
        Limits::default()
    }
}

/// Search and memory statistics, exposed for the paper's experiments.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnts: u64,
    /// Clauses removed by reduction or simplification.
    pub removed_clauses: u64,
    /// Clauses deleted because another clause subsumes them
    /// (on-the-fly subsumption during `simplify`).
    pub subsumed_clauses: u64,
    /// Literals removed by self-subsuming strengthening during
    /// `simplify`.
    pub strengthened_lits: u64,
    /// Arena compactions performed.
    pub gc_runs: u64,
    /// Current live literal count across all clauses (memory proxy).
    pub live_lits: usize,
    /// Peak live literal count ever observed (memory proxy; E4).
    pub peak_live_lits: usize,
    /// Current live clause-database size in arena words, clause
    /// headers included (exact memory measure).
    pub live_words: usize,
    /// Peak of [`Stats::live_words`] ever observed.
    pub peak_live_words: usize,
    /// Current resident bytes of the watch structures: the flat
    /// watcher storage (live, spare, and not-yet-compacted slots) plus
    /// the per-literal range table.
    pub watch_resident_bytes: usize,
    /// Peak of [`Stats::watch_resident_bytes`] ever observed.
    pub peak_watch_bytes: usize,
    /// Exact bytes of binary-DRAT proof stream emitted so far (0 when
    /// no [`ProofSink`] is installed). Monotone — the stream only
    /// grows — so its peak *is* its current value.
    pub peak_proof_bytes: usize,
}

impl Stats {
    /// Exact peak clause-database size in bytes: every live arena word
    /// at the high-water mark, clause headers and activity words
    /// included — not the seed's `peak_live_lits * 4` approximation.
    pub fn peak_bytes(&self) -> usize {
        self.peak_live_words * std::mem::size_of::<u32>()
    }

    /// Exact current live clause-database size in bytes.
    pub fn live_bytes(&self) -> usize {
        self.live_words * std::mem::size_of::<u32>()
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Value {
    True,
    False,
    Unassigned,
}

#[derive(Copy, Clone, Debug)]
struct VarData {
    reason: Option<CRef>,
    level: u32,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f32 = 0.999;
const RESTART_FIRST: u64 = 100;
const RESCALE_LIMIT: f64 = 1e100;
const CLA_RESCALE_LIMIT: f32 = 1e20;
/// Fraction of the arena that may be garbage before a safe point
/// triggers compaction.
const GC_WASTE_FRACTION: f64 = 0.20;
/// Learnt clauses with LBD at or below this are never removed by
/// `reduce_db` ("glue clauses").
const GLUE_PROTECT: u32 = 2;
/// Longest clause considered as a *subsumer* during the `simplify`
/// subsumption pass (longer clauses rarely subsume anything and make
/// the pass quadratic).
const SUBSUME_MAX_CLAUSE: usize = 30;
/// Occurrence lists longer than this are not scanned for subsumption
/// candidates (keeps the pass near-linear on pathological formulae).
const SUBSUME_OCC_LIMIT: usize = 400;

/// An incremental CDCL SAT solver.
///
/// ```
/// use sebmc_sat::{SolveResult, Solver};
/// use sebmc_logic::Lit;
///
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause([a, b]);
/// s.add_clause([!a]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.value(b.var()), Some(true));
/// ```
#[derive(Debug)]
pub struct Solver {
    arena: ClauseArena,
    clauses: Vec<CRef>,
    learnt_refs: Vec<CRef>,
    watches: OccLists,
    /// Assignment table indexed by *literal code* (two entries per
    /// variable): `lit_value` is a single load with no polarity
    /// fixup, which is what the propagation loop does most.
    assigns: Vec<Value>,
    vardata: Vec<VarData>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    heap: ActivityHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    model: Vec<Option<bool>>,
    conflict_core: Vec<Lit>,
    limits: Limits,
    stats: Stats,
    max_learnts: f64,
    /// Stamp array indexed by decision level, used to count distinct
    /// levels (LBD) without clearing between clauses.
    lbd_stamp: Vec<u64>,
    lbd_counter: u64,
    /// Proof-event receiver; `None` (the default) costs one branch at
    /// the logging sites and nothing else.
    proof: Option<Box<dyn ProofSink>>,
    /// Reusable literal buffer for content-keyed deletion logging
    /// (`reduce_db`/`simplify` delete clauses in bulk; one fresh `Vec`
    /// per deletion would be needless churn).
    proof_scratch: Vec<Lit>,
    /// `(conflicts, propagations, restarts)` at the previous progress
    /// poll: samples carry deltas, so a sink can derive rates.
    progress_marks: (u64, u64, u64),
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            arena: ClauseArena::new(),
            clauses: Vec::new(),
            learnt_refs: Vec::new(),
            watches: OccLists::new(),
            assigns: Vec::new(),
            vardata: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: ActivityHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            model: Vec::new(),
            conflict_core: Vec::new(),
            limits: Limits::none(),
            stats: Stats::default(),
            max_learnts: 4000.0,
            lbd_stamp: vec![0],
            lbd_counter: 0,
            proof: None,
            proof_scratch: Vec::new(),
            progress_marks: (0, 0, 0),
        }
    }

    /// Creates a fresh solver variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new((self.assigns.len() / 2) as u32);
        self.assigns.push(Value::Unassigned);
        self.assigns.push(Value::Unassigned);
        self.vardata.push(VarData {
            reason: None,
            level: 0,
        });
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push_lit();
        self.watches.push_lit();
        self.lbd_stamp.push(0);
        self.heap.insert(v, &self.activity);
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len() / 2
    }

    /// Number of live problem clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the solver is still consistent (no top-level conflict).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Sets the resource budgets for subsequent `solve` calls.
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Search statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resident clause-database size in bytes: live records *plus*
    /// garbage not yet compacted away. This is what the process
    /// actually holds; it shrinks when [`Solver::garbage_collect`]
    /// runs.
    pub fn clause_db_resident_bytes(&self) -> usize {
        self.arena.resident_bytes()
    }

    /// Live clause-database size in bytes (headers included).
    pub fn clause_db_live_bytes(&self) -> usize {
        self.arena.live_bytes()
    }

    /// Resident bytes of the watch structures: the flat watcher
    /// storage plus the per-literal range table. The access-structure
    /// counterpart of [`Solver::clause_db_resident_bytes`].
    pub fn watch_db_resident_bytes(&self) -> usize {
        self.watches.resident_bytes()
    }

    /// Sets the learnt-clause count that triggers the next database
    /// reduction (default 4000; the threshold grows 15% per
    /// reduction). Exposed for tests and tuning — reduction always
    /// spares binary clauses, glue clauses (LBD ≤ 2), and clauses
    /// locked as reasons.
    pub fn set_max_learnts(&mut self, cap: f64) {
        self.max_learnts = cap;
    }

    /// Installs a proof-event receiver. Must be called on a pristine
    /// solver (no clauses, no assignments) — the proof stream has to
    /// witness every original clause from the very first one.
    ///
    /// # Panics
    /// Panics if the solver already holds clauses or assignments.
    pub fn set_proof_sink(&mut self, sink: Box<dyn ProofSink>) {
        assert!(
            self.arena.is_empty() && self.trail.is_empty() && self.ok,
            "install the proof sink before the first clause"
        );
        self.proof = Some(sink);
    }

    /// Whether a proof sink is installed.
    pub fn has_proof(&self) -> bool {
        self.proof.is_some()
    }

    /// Exact bytes of proof stream emitted so far (0 without a sink).
    pub fn proof_bytes(&self) -> usize {
        self.proof.as_ref().map_or(0, |p| p.bytes_emitted())
    }

    /// The sink's cumulative certification counters, if it checks what
    /// it receives (`None` without a sink, or for write-only sinks).
    pub fn proof_summary(&mut self) -> Option<Certificate> {
        self.proof.as_mut().and_then(|p| p.summary())
    }

    /// Whether the proof certifies unsatisfiability under
    /// `assumptions` (see [`ProofSink::certifies`]). Always `false`
    /// without a checking sink.
    pub fn proof_certifies(&mut self, assumptions: &[Lit]) -> bool {
        self.proof
            .as_mut()
            .is_some_and(|p| p.certifies(assumptions))
    }

    // ----- proof-logging helpers (each a no-op without a sink) -----------

    fn proof_original(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.original(lits);
            self.stats.peak_proof_bytes = p.bytes_emitted();
        }
    }

    fn proof_add(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.add(lits);
            self.stats.peak_proof_bytes = p.bytes_emitted();
        }
    }

    fn proof_delete(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.delete(lits);
            self.stats.peak_proof_bytes = p.bytes_emitted();
        }
    }

    /// Logs the deletion of a clause by its *current* arena content
    /// (through the reusable scratch buffer — no allocation per
    /// deletion).
    fn proof_delete_cref(&mut self, cref: CRef) {
        if self.proof.is_some() {
            let mut scratch = std::mem::take(&mut self.proof_scratch);
            scratch.clear();
            scratch.extend(self.arena.lits(cref));
            self.proof_delete(&scratch);
            self.proof_scratch = scratch;
        }
    }

    /// Logs the finalization lemma of an Unsat verdict: the negated
    /// failed-assumption core, or the empty clause for a top-level
    /// conflict.
    fn proof_finalize(&mut self, neg_core: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.finalize_unsat(neg_core);
            self.stats.peak_proof_bytes = p.bytes_emitted();
        }
    }

    /// Adds a clause; returns `false` if the solver became inconsistent
    /// (the empty clause was derived).
    ///
    /// Tautologies are silently dropped and duplicate literals merged.
    /// May be called between `solve` calls for incremental use.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        for l in &ls {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l:?} references an unallocated variable"
            );
        }
        ls.sort_unstable();
        ls.dedup();
        // Tautology?
        if ls.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true;
        }
        // Remove literals already false at level 0; drop satisfied
        // clauses (silently — a missing axiom only *strengthens* what
        // the proof certifies).
        let mut filtered = Vec::with_capacity(ls.len());
        for &l in &ls {
            match lit_value(&self.assigns, l) {
                Value::True => return true,
                Value::False => {}
                Value::Unassigned => filtered.push(l),
            }
        }
        // Proof: the caller's clause is the axiom; the filtered
        // version, when different, is a derived add (RUP via the
        // top-level units) that replaces it.
        self.proof_original(&ls);
        if filtered.len() != ls.len() {
            self.proof_add(&filtered);
            self.proof_delete(&ls);
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], None);
                self.ok = self.propagate().is_none();
                if !self.ok {
                    // Top-level conflict: the empty clause follows by
                    // unit propagation alone.
                    self.proof_add(&[]);
                }
                self.ok
            }
            _ => {
                self.alloc_clause(&filtered, false);
                true
            }
        }
    }

    /// Adds every clause of a [`Cnf`], creating variables as needed.
    ///
    /// Returns `false` if the solver became inconsistent.
    pub fn add_cnf(&mut self, cnf: &Cnf) -> bool {
        self.ensure_vars(cnf.num_vars());
        for clause in cnf.iter() {
            if !self.add_clause(clause.iter().copied()) {
                return false;
            }
        }
        true
    }

    /// Solves the current formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On [`SolveResult::Unsat`], [`Solver::failed_assumptions`] holds a
    /// subset of the assumptions sufficient for the conflict.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.model.clear();
        self.conflict_core.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        for a in assumptions {
            assert!(
                a.var().index() < self.num_vars(),
                "assumption {a:?} references an unallocated variable"
            );
        }
        self.cancel_until(0);
        // Solve entry is a safe point: reclaim watch segments
        // abandoned by list growth (cleans dirty lists first) so the
        // search starts on tightly-packed storage.
        let arena = &self.arena;
        self.watches.clean_all(|w| arena.is_freed(w.cref()));
        self.watches.maybe_compact();
        let mut curr_restarts = 0u64;
        let result = loop {
            let budget = luby(2.0, curr_restarts) * RESTART_FIRST as f64;
            match self.search(budget as u64, assumptions) {
                SearchOutcome::Sat => break SolveResult::Sat,
                SearchOutcome::Unsat => break SolveResult::Unsat,
                SearchOutcome::Unknown => break SolveResult::Unknown,
                SearchOutcome::Restart => {
                    curr_restarts += 1;
                    self.stats.restarts += 1;
                }
            }
        };
        self.cancel_until(0);
        // Tail sample: flush whatever accumulated since the last
        // 64-conflict poll, so short solves (or the final stretch of a
        // long one) still reach the sink.
        self.poll_progress();
        result
    }

    /// Model value of a variable after [`SolveResult::Sat`].
    ///
    /// Returns `None` if no model is available or the variable was
    /// created after the last solve.
    pub fn value(&self, v: Var) -> Option<bool> {
        self.model.get(v.index()).copied().flatten()
    }

    /// Model value of a literal after [`SolveResult::Sat`].
    pub fn lit_value_model(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| l.apply(b))
    }

    /// After an `Unsat` result of [`Solver::solve_with`], the subset of
    /// assumptions involved in the conflict.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Level-0 simplification: removes clauses satisfied at the top
    /// level, strips falsified literals, and runs one bounded pass of
    /// on-the-fly subsumption/strengthening over flat occurrence
    /// ranges, physically reclaiming memory (the arena is compacted
    /// when enough garbage has accumulated). Returns `false` if the
    /// formula became inconsistent.
    ///
    /// Even when an empty clause is derived mid-pass, every clause
    /// list still owns exactly its live clauses and the statistics
    /// stay synced with the arena — the solver is dead (`!ok`) but
    /// internally consistent.
    ///
    /// This is the operation jSAT uses to retract deactivated blocking
    /// clauses (see crate `sebmc`, module `jsat`).
    pub fn simplify(&mut self) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        if self.propagate().is_some() {
            self.ok = false;
            self.proof_add(&[]);
            return false;
        }
        // Top-level assignments never need reasons again.
        for &l in &self.trail {
            self.vardata[l.var().index()].reason = None;
        }
        let proof_on = self.proof.is_some();
        // Every watch list is rebuilt from scratch at the end; until
        // then the kept clauses are detached.
        self.watches.clear_all();
        let mut enqueue: Vec<Lit> = Vec::new();
        let mut kept_problem: Vec<CRef> = Vec::new();
        let mut kept_learnt: Vec<CRef> = Vec::new();
        for which in [false, true] {
            let refs = std::mem::take(if which {
                &mut self.learnt_refs
            } else {
                &mut self.clauses
            });
            let kept = if which {
                &mut kept_learnt
            } else {
                &mut kept_problem
            };
            for &cref in &refs {
                let satisfied = self
                    .arena
                    .lits(cref)
                    .any(|l| lit_value(&self.assigns, l) == Value::True);
                if satisfied {
                    self.proof_delete_cref(cref);
                    self.free_clause(cref);
                    continue;
                }
                // Strip level-0-falsified literals in place. The
                // pre-strip copy feeds the proof's add-then-delete
                // pair, so it is only taken when a literal will
                // actually be stripped (most clauses lose nothing —
                // copying them all would be O(live lits) of allocation
                // churn per simplify pass).
                let old_lits: Option<Vec<Lit>> = (proof_on
                    && self
                        .arena
                        .lits(cref)
                        .any(|l| lit_value(&self.assigns, l) == Value::False))
                .then(|| self.arena.lits(cref).collect());
                let len = self.arena.len(cref);
                let mut kept_lits = 0;
                for i in 0..len {
                    let l = self.arena.lit(cref, i);
                    if lit_value(&self.assigns, l) != Value::False {
                        if i != kept_lits {
                            self.arena.set_lit(cref, kept_lits, l);
                        }
                        kept_lits += 1;
                    }
                }
                if kept_lits < len {
                    self.arena.shrink(cref, kept_lits.max(1));
                    self.stats.live_lits -= len - kept_lits.max(1);
                    // Proof: the stripped clause replaces the original
                    // (add first, so the RUP check can use the old
                    // clause; an empty result is the proof's end).
                    if let Some(old) = old_lits {
                        let new: Vec<Lit> = self.arena.lits(cref).take(kept_lits).collect();
                        self.proof_add(&new);
                        self.proof_delete(&old);
                    }
                }
                match kept_lits {
                    0 => {
                        // The formula is unsatisfiable at level 0.
                        // Keep processing so both clause lists end up
                        // owning exactly their live clauses and the
                        // stats stay synced with the arena (the old
                        // early return leaked every already-kept and
                        // not-yet-visited clause from its list).
                        self.ok = false;
                        self.free_clause(cref);
                    }
                    1 => {
                        enqueue.push(self.arena.lit(cref, 0));
                        self.free_clause(cref);
                    }
                    _ => kept.push(cref),
                }
            }
        }
        if self.ok {
            self.subsume_pass(&mut kept_problem, &mut kept_learnt, &mut enqueue);
        }
        // Re-attach the survivors and restore list ownership (also on
        // the `!ok` path, so invariants hold for the dead solver).
        for &cref in kept_problem.iter().chain(&kept_learnt) {
            self.attach_clause(cref);
        }
        self.clauses = kept_problem;
        self.learnt_refs = kept_learnt;
        self.sync_word_stats();
        if !self.ok {
            return false;
        }
        for l in enqueue {
            match lit_value(&self.assigns, l) {
                Value::True => {}
                Value::False => {
                    self.ok = false;
                    self.proof_add(&[]);
                    return false;
                }
                Value::Unassigned => self.unchecked_enqueue(l, None),
            }
        }
        self.qhead = 0;
        if self.propagate().is_some() {
            self.ok = false;
            self.proof_add(&[]);
            return false;
        }
        self.maybe_garbage_collect();
        self.ok
    }

    /// One bounded pass of subsumption and self-subsuming resolution
    /// over the detached survivors of `simplify`, driven by flat
    /// `(start, len)` occurrence ranges over every literal.
    ///
    /// For each subsumer candidate C (problem clauses first, so a
    /// problem clause wins ties against a learnt duplicate) the pass
    /// scans the occurrence range of C's rarest literal. A candidate D
    /// with all of C's literals is subsumed and freed — unless C is
    /// learnt and D is not: the problem formula must never depend on a
    /// clause that `reduce_db` may later drop. A candidate matching
    /// all but one literal, with that literal flipped, is strengthened
    /// by resolving on it (always sound: the resolvent both implies
    /// and is implied by the formula). Strengthening down to one
    /// literal turns into a pending unit.
    fn subsume_pass(
        &mut self,
        problem: &mut Vec<CRef>,
        learnt: &mut Vec<CRef>,
        enqueue: &mut Vec<Lit>,
    ) {
        let num_codes = 2 * self.num_vars();
        let all: Vec<(CRef, bool)> = problem
            .iter()
            .map(|&c| (c, false))
            .chain(learnt.iter().map(|&c| (c, true)))
            .collect();
        // Counting pass, then (start, len) ranges into one flat CRef
        // vector — the same layout discipline as the watch lists.
        let mut counts = vec![0u32; num_codes];
        for &(c, _) in &all {
            for l in self.arena.lits(c) {
                counts[l.code()] += 1;
            }
        }
        let mut starts = vec![0u32; num_codes + 1];
        for i in 0..num_codes {
            starts[i + 1] = starts[i] + counts[i];
        }
        let mut occ = vec![CRef(0); starts[num_codes] as usize];
        let mut fill: Vec<u32> = starts[..num_codes].to_vec();
        for &(c, _) in &all {
            for l in self.arena.lits(c) {
                occ[fill[l.code()] as usize] = c;
                fill[l.code()] += 1;
            }
        }
        // Literal-code marks, stamped per subsumer so the array never
        // needs clearing.
        let mut mark = vec![0u32; num_codes];
        let mut stamp = 0u32;
        for &(c, c_is_learnt) in &all {
            if self.arena.is_freed(c) {
                continue;
            }
            let clen = self.arena.len(c);
            if clen > SUBSUME_MAX_CLAUSE {
                continue;
            }
            let min_lit = self
                .arena
                .lits(c)
                .min_by_key(|l| counts[l.code()])
                .expect("kept clauses are non-empty");
            if counts[min_lit.code()] as usize > SUBSUME_OCC_LIMIT {
                continue;
            }
            stamp += 1;
            for l in self.arena.lits(c) {
                mark[l.code()] = stamp;
            }
            // Subsumption candidates all contain C's rarest literal;
            // strengthening candidates instead contain the *negation*
            // of the literal being resolved away, so each of C's
            // literals contributes one flipped occurrence range.
            let occ_range = |l: Lit| starts[l.code()] as usize..starts[l.code() + 1] as usize;
            let scans = std::iter::once(occ_range(min_lit)).chain(
                self.arena
                    .lits(c)
                    .map(|l| occ_range(!l))
                    .collect::<Vec<_>>(),
            );
            for range in scans {
                if range.len() > SUBSUME_OCC_LIMIT {
                    continue;
                }
                for k in range {
                    let d = occ[k];
                    if d == c || self.arena.is_freed(d) || self.arena.is_freed(c) {
                        continue;
                    }
                    let dlen = self.arena.len(d);
                    if dlen < clen {
                        continue;
                    }
                    // Count D's literals against C's marks: `matched`
                    // hits and at most one flipped hit decide the
                    // outcome.
                    let mut matched = 0usize;
                    let mut flipped = 0usize;
                    let mut flipped_idx = 0usize;
                    for idx in 0..dlen {
                        let dl = self.arena.lit(d, idx);
                        if mark[dl.code()] == stamp {
                            matched += 1;
                        } else if mark[(!dl).code()] == stamp {
                            flipped += 1;
                            flipped_idx = idx;
                        }
                    }
                    if matched == clen {
                        if c_is_learnt && !self.arena.is_learnt(d) {
                            continue;
                        }
                        self.proof_delete_cref(d);
                        self.free_clause(d);
                        self.stats.subsumed_clauses += 1;
                    } else if matched + 1 == clen && flipped == 1 {
                        // Self-subsuming resolution: drop the flipped
                        // literal from D. The resolvent is RUP against
                        // {C, D}, so the proof logs it before deleting
                        // the old D (add-then-delete).
                        let old_lits: Option<Vec<Lit>> =
                            self.proof.is_some().then(|| self.arena.lits(d).collect());
                        self.arena.swap_lits(d, flipped_idx, dlen - 1);
                        self.arena.shrink(d, dlen - 1);
                        self.stats.live_lits -= 1;
                        self.stats.strengthened_lits += 1;
                        if let Some(old) = old_lits {
                            let new: Vec<Lit> = self.arena.lits(d).collect();
                            self.proof_add(&new);
                            self.proof_delete(&old);
                        }
                        if dlen - 1 == 1 {
                            enqueue.push(self.arena.lit(d, 0));
                            self.free_clause(d);
                        }
                    }
                }
            }
        }
        problem.retain(|&c| !self.arena.is_freed(c));
        learnt.retain(|&c| !self.arena.is_freed(c));
    }

    /// Compacts the clause arena now: cleans every dirty watch list
    /// (freed records have no forwarding pointer to follow), then
    /// copies every live clause into a fresh arena and rewrites clause
    /// lists, watch lists, and reason references. Resident memory
    /// drops by exactly the booked garbage.
    pub fn garbage_collect(&mut self) {
        let arena = &self.arena;
        self.watches.clean_all(|w| arena.is_freed(w.cref()));
        if self.arena.wasted_words() == 0 {
            self.check_invariants();
            return;
        }
        let mut to = ClauseArena::with_capacity(self.arena.live_words());
        for c in &mut self.clauses {
            *c = self.arena.reloc(*c, &mut to);
        }
        for c in &mut self.learnt_refs {
            *c = self.arena.reloc(*c, &mut to);
        }
        let arena = &mut self.arena;
        self.watches.for_each_watcher_mut(|w| {
            let new = arena.reloc(w.cref(), &mut to);
            *w = if w.is_binary() {
                Watcher::binary(new, w.blocker)
            } else {
                Watcher::long(new, w.blocker)
            };
        });
        for i in 0..self.trail.len() {
            let v = self.trail[i].var();
            if let Some(r) = self.vardata[v.index()].reason {
                self.vardata[v.index()].reason = Some(self.arena.reloc(r, &mut to));
            }
        }
        self.arena = to;
        self.stats.gc_runs += 1;
        self.sync_word_stats();
        self.check_invariants();
    }

    /// Debug-build self-audit of the solver's cross-structure
    /// invariants, in the spirit of MiniSat's `checkWatches`.
    ///
    /// Verifies that the clause lists own exactly the live arena
    /// clauses (each once, learnt flag matching its list) and that the
    /// memory statistics agree with the arena; that every live clause
    /// is watched exactly once on the negation of each of its first
    /// two literals, tagged binary iff it has two, with a blocker
    /// drawn from the clause; that stale watchers (referencing freed
    /// clauses) only survive in lists marked dirty; that the trail,
    /// assignment table, decision-level stack and per-variable level
    /// bookkeeping are mutually consistent; that every reason clause
    /// is live and still implies exactly its trail literal; and that
    /// every unassigned variable is available to the decision heap.
    ///
    /// Compiled to a no-op in release builds (the body is behind a
    /// constant branch, so it never bit-rots). Called from the
    /// `simplify`/GC safe points and from the randomized sweep tests;
    /// any violation panics naming the broken invariant.
    pub fn check_invariants(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        // 1. Clause lists own exactly the live clauses, and the
        //    clause-database statistics agree with the arena.
        let mut live_lits = 0usize;
        let mut listed: std::collections::HashSet<CRef> = std::collections::HashSet::new();
        for (&cref, learnt) in self
            .clauses
            .iter()
            .map(|c| (c, false))
            .chain(self.learnt_refs.iter().map(|c| (c, true)))
        {
            assert!(
                !self.arena.is_freed(cref),
                "clause list holds a freed clause"
            );
            assert_eq!(
                self.arena.is_learnt(cref),
                learnt,
                "clause sits in the wrong owning list"
            );
            assert!(listed.insert(cref), "clause listed twice");
            let len = self.arena.len(cref);
            assert!(len >= 2, "live clause shorter than two literals");
            live_lits += len;
        }
        assert_eq!(
            self.stats.learnts as usize,
            self.learnt_refs.len(),
            "learnt-clause statistic disagrees with the learnt list"
        );
        assert_eq!(
            self.stats.live_lits, live_lits,
            "live-literal statistic disagrees with the clause lists"
        );
        assert_eq!(
            self.stats.live_words,
            self.arena.live_words(),
            "live-word statistic disagrees with the arena"
        );
        // 2. Watch lists, forward direction: every watcher in a clean
        //    list references a live clause that is watched on this
        //    list's literal, with the right binary tag and a blocker
        //    from the clause; stale watchers only survive in dirty
        //    lists. Live watchers are tallied for the backward check.
        let mut watched: std::collections::HashMap<CRef, Vec<usize>> =
            std::collections::HashMap::new();
        for code in 0..self.watches.num_codes() {
            let dirty = self.watches.is_dirty(code);
            for w in self.watches.watchers(code) {
                let cref = w.cref();
                if self.arena.is_freed(cref) {
                    assert!(dirty, "stale watcher survives in a clean watch list");
                    continue;
                }
                assert!(
                    listed.contains(&cref),
                    "watcher references a live clause missing from its list"
                );
                let len = self.arena.len(cref);
                assert_eq!(
                    w.is_binary(),
                    len == 2,
                    "watcher's binary tag disagrees with the clause length"
                );
                assert!(
                    (0..2).any(|i| (!self.arena.lit(cref, i)).code() == code),
                    "watcher sits in a list its clause does not watch"
                );
                assert!(
                    self.arena.lits(cref).any(|l| l == w.blocker),
                    "watcher's blocker is not a literal of its clause"
                );
                watched.entry(cref).or_default().push(code);
            }
        }
        // 2b. Backward direction: each live clause is watched exactly
        //     once on each of `(!lit0, !lit1)`.
        for &cref in &listed {
            let mut codes = watched.remove(&cref).unwrap_or_default();
            codes.sort_unstable();
            let mut expect = vec![
                (!self.arena.lit(cref, 0)).code(),
                (!self.arena.lit(cref, 1)).code(),
            ];
            expect.sort_unstable();
            assert_eq!(
                codes, expect,
                "live clause is not watched exactly on its first two literals"
            );
        }
        // 3. Trail and assignment table. Every trail literal is
        //    assigned true (and its negation false), appears once, and
        //    its recorded level matches its position relative to the
        //    decision-level stack; every assigned variable is on the
        //    trail; the level stack is monotone within the trail.
        let num_vars = self.num_vars();
        let mut on_trail = vec![false; num_vars];
        for (i, &l) in self.trail.iter().enumerate() {
            assert_eq!(
                lit_value(&self.assigns, l),
                Value::True,
                "trail literal is not assigned true"
            );
            assert_eq!(
                lit_value(&self.assigns, !l),
                Value::False,
                "negation of a trail literal is not assigned false"
            );
            let v = l.var().index();
            assert!(!on_trail[v], "variable appears twice on the trail");
            on_trail[v] = true;
            let level = self.trail_lim.iter().filter(|&&lim| lim <= i).count();
            assert_eq!(
                self.vardata[v].level as usize, level,
                "trail literal's recorded level disagrees with its position"
            );
        }
        for (j, &lim) in self.trail_lim.iter().enumerate() {
            assert!(
                lim <= self.trail.len(),
                "decision-level mark points past the trail"
            );
            if j > 0 {
                assert!(
                    self.trail_lim[j - 1] <= lim,
                    "decision-level marks are not monotone"
                );
            }
        }
        assert!(
            self.qhead <= self.trail.len(),
            "propagation head points past the trail"
        );
        for (v, &trailed) in on_trail.iter().enumerate() {
            let pos = Var::new(v as u32).positive();
            let assigned = lit_value(&self.assigns, pos) != Value::Unassigned;
            assert_eq!(
                assigned, trailed,
                "assignment table disagrees with trail membership"
            );
            // 5. Decision heap: every unassigned variable must be
            //    available for branching (`pick_branch_var` assigns
            //    what it pops; `cancel_until` and `new_var` insert).
            if !assigned {
                assert!(
                    self.heap.contains(pos.var()),
                    "unassigned variable missing from the decision heap"
                );
            }
        }
        // 4. Reasons: a trail literal's reason clause must be live,
        //    contain the literal itself (true), and have every other
        //    literal false — i.e. it still propagates the literal.
        for &l in &self.trail {
            let Some(r) = self.vardata[l.var().index()].reason else {
                continue;
            };
            assert!(!self.arena.is_freed(r), "reason clause has been freed");
            let mut implied = 0usize;
            for cl in self.arena.lits(r) {
                if cl.var() == l.var() {
                    assert_eq!(cl, l, "reason clause contains the trail literal negated");
                    implied += 1;
                } else {
                    assert_eq!(
                        lit_value(&self.assigns, cl),
                        Value::False,
                        "non-implied literal of a reason clause is not false"
                    );
                }
            }
            assert_eq!(
                implied, 1,
                "reason clause does not mention its literal once"
            );
        }
    }

    // ----- internal machinery -------------------------------------------------

    /// Arena GC plus watch-storage compaction, each behind its own
    /// waste threshold. This is the shared safe point of `simplify`
    /// and `reduce_db`.
    fn maybe_garbage_collect(&mut self) {
        let resident = self.arena.resident_words();
        if resident > 0 && self.arena.wasted_words() as f64 >= resident as f64 * GC_WASTE_FRACTION {
            self.garbage_collect();
        }
        let arena = &self.arena;
        self.watches.clean_all(|w| arena.is_freed(w.cref()));
        self.watches.maybe_compact();
        self.sync_word_stats();
        self.check_invariants();
    }

    /// Refreshes the word-level memory statistics from the arena and
    /// the watch storage.
    fn sync_word_stats(&mut self) {
        self.stats.live_words = self.arena.live_words();
        self.stats.peak_live_words = self.stats.peak_live_words.max(self.stats.live_words);
        self.stats.watch_resident_bytes = self.watches.resident_bytes();
        self.stats.peak_watch_bytes = self
            .stats
            .peak_watch_bytes
            .max(self.stats.watch_resident_bytes);
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn alloc_clause(&mut self, lits: &[Lit], learnt: bool) -> CRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.alloc(lits, learnt);
        self.stats.live_lits += lits.len();
        self.stats.peak_live_lits = self.stats.peak_live_lits.max(self.stats.live_lits);
        if learnt {
            self.learnt_refs.push(cref);
            self.stats.learnts += 1;
        } else {
            self.clauses.push(cref);
        }
        self.attach_clause(cref);
        self.sync_word_stats();
        cref
    }

    fn attach_clause(&mut self, cref: CRef) {
        let w0 = self.arena.lit(cref, 0);
        let w1 = self.arena.lit(cref, 1);
        if self.arena.len(cref) == 2 {
            self.watches.push((!w0).code(), Watcher::binary(cref, w1));
            self.watches.push((!w1).code(), Watcher::binary(cref, w0));
        } else {
            self.watches.push((!w0).code(), Watcher::long(cref, w1));
            self.watches.push((!w1).code(), Watcher::long(cref, w0));
        }
    }

    /// Lazy detach: marks the clause's two watch lists dirty instead
    /// of scanning them. The stale watchers are dropped by the next
    /// `clean()` of each list — triggered by propagation's lookup or
    /// by the GC safe points — keyed on the arena's freed bit, so this
    /// must be followed by `free_clause` before the lists are next
    /// used.
    fn detach_clause_lazy(&mut self, cref: CRef) {
        let w0 = self.arena.lit(cref, 0);
        let w1 = self.arena.lit(cref, 1);
        self.watches.smudge((!w0).code());
        self.watches.smudge((!w1).code());
    }

    /// Books the clause as garbage and updates the statistics. The
    /// caller is responsible for the watch lists (either
    /// `detach_clause_lazy` first, or a wholesale rebuild as in
    /// `simplify`) and for removing the reference from its owning
    /// clause list.
    fn free_clause(&mut self, cref: CRef) {
        debug_assert!(
            !self.is_locked(cref),
            "freeing a clause that is the reason of a trail literal"
        );
        self.stats.live_lits -= self.arena.len(cref);
        self.stats.removed_clauses += 1;
        if self.arena.is_learnt(cref) {
            self.stats.learnts -= 1;
        }
        self.arena.free(cref);
        self.stats.live_words = self.arena.live_words();
    }

    #[inline]
    fn unchecked_enqueue(&mut self, p: Lit, reason: Option<CRef>) {
        enqueue_raw(
            &mut self.assigns,
            &mut self.vardata,
            &mut self.trail,
            self.trail_lim.len() as u32,
            p,
            reason,
        );
    }

    /// Unit propagation; returns the conflicting clause reference, if
    /// any.
    ///
    /// Binary watchers complete without touching the arena: the
    /// watcher's blocker *is* the other literal, so satisfied/unit/
    /// conflict are decided from the assignment table alone. Long
    /// clauses take the classic MiniSat path over the flat arena.
    ///
    /// The watched list is one contiguous segment of the flat
    /// [`OccLists`] storage, looked up through `lookup_clean` so a
    /// dirty list sheds its freed-clause watchers before the walk
    /// (nothing stale is ever enqueued as a reason). The walk borrows
    /// the segment as a plain slice and runs in two stages: while no
    /// watch has left the list, the scan performs no survivor copies
    /// at all (in the attach order binary watchers cluster at the
    /// segment front and never move, so clean lists finish without a
    /// single watcher store or length write-back); the first moved
    /// watch pushes into its new list — briefly unpinning the segment
    /// borrow, a bounds check and nothing more — and drops into the
    /// classic compacting walk. Long clauses are handled through one
    /// raw-literal slice per clause, so the record header is decoded
    /// once, not per literal visited.
    fn propagate(&mut self) -> Option<CRef> {
        let mut conflict = None;
        'queue: while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_code = (!p).code() as u32;
            let arena = &self.arena;
            let (start, len) = self
                .watches
                .lookup_clean(p.code(), |w| arena.is_freed(w.cref()));
            // Disjoint field borrows: the segment slice pins `watches`
            // during each walk stretch, enqueues go through the raw
            // parts.
            let Solver {
                arena,
                watches,
                assigns,
                vardata,
                trail,
                trail_lim,
                ..
            } = self;
            let level = trail_lim.len() as u32;
            let mut i = 0;
            // Stage A: the list is still intact — no compaction, no
            // stores except in-place blocker refreshes.
            let first_move = {
                let ws = watches.segment_mut(start, len);
                let mut first_move = None;
                while i < len {
                    let w = ws[i];
                    let blocker_val = lit_value(assigns, w.blocker);
                    // Cheapest exit: the blocker is already true.
                    if blocker_val == Value::True {
                        i += 1;
                        continue;
                    }
                    if w.is_binary() {
                        // The blocker is the whole rest of the clause.
                        if blocker_val == Value::Unassigned {
                            enqueue_raw(assigns, vardata, trail, level, w.blocker, Some(w.cref()));
                            i += 1;
                            continue;
                        }
                        self.qhead = trail.len();
                        conflict = Some(w.cref());
                        break 'queue;
                    }
                    let cref = w.cref();
                    // One raw slice per clause: the header is decoded
                    // here and never re-read during the scan.
                    let lits = arena.lits_raw_mut(cref);
                    // Make sure the false literal is at slot 1.
                    if lits[0] == false_code {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_code);
                    let first = Lit::from_code(lits[0] as usize);
                    let keep = Watcher::long(cref, first);
                    if first != w.blocker && lit_value(assigns, first) == Value::True {
                        ws[i] = keep;
                        i += 1;
                        continue;
                    }
                    // Look for a replacement watch.
                    let mut found = None;
                    for k in 2..lits.len() {
                        let lk = Lit::from_code(lits[k] as usize);
                        if lit_value(assigns, lk) != Value::False {
                            lits.swap(1, k);
                            found = Some((!lk).code());
                            break;
                        }
                    }
                    if let Some(code) = found {
                        first_move = Some((code, keep));
                        break;
                    }
                    // No replacement: the clause is unit or conflicting.
                    ws[i] = keep;
                    i += 1;
                    if lit_value(assigns, first) == Value::False {
                        self.qhead = trail.len();
                        conflict = Some(cref);
                        break 'queue;
                    }
                    enqueue_raw(assigns, vardata, trail, level, first, Some(cref));
                }
                first_move
            };
            let Some((code, keep)) = first_move else {
                continue; // clean walk: the list is untouched
            };
            watches.push(code, keep);
            // Stage B: slot `i` just vacated — compact as we go. Every
            // further move unpins, pushes, and re-pins the segment.
            let mut j = i;
            i += 1;
            'moves: loop {
                let ws = watches.segment_mut(start, len);
                let pending;
                'watchers: loop {
                    if i >= len {
                        break 'moves;
                    }
                    let w = ws[i];
                    i += 1;
                    let blocker_val = lit_value(assigns, w.blocker);
                    if blocker_val == Value::True {
                        ws[j] = w;
                        j += 1;
                        continue;
                    }
                    if w.is_binary() {
                        ws[j] = w;
                        j += 1;
                        if blocker_val == Value::Unassigned {
                            enqueue_raw(assigns, vardata, trail, level, w.blocker, Some(w.cref()));
                        } else {
                            conflict = Some(w.cref());
                            ws.copy_within(i..len, j);
                            j += len - i;
                            break 'moves;
                        }
                        continue;
                    }
                    let cref = w.cref();
                    let lits = arena.lits_raw_mut(cref);
                    if lits[0] == false_code {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_code);
                    let first = Lit::from_code(lits[0] as usize);
                    let keep = Watcher::long(cref, first);
                    if first != w.blocker && lit_value(assigns, first) == Value::True {
                        ws[j] = keep;
                        j += 1;
                        continue;
                    }
                    let mut found = None;
                    for k in 2..lits.len() {
                        let lk = Lit::from_code(lits[k] as usize);
                        if lit_value(assigns, lk) != Value::False {
                            lits.swap(1, k);
                            found = Some((!lk).code());
                            break;
                        }
                    }
                    if let Some(code) = found {
                        pending = (code, keep);
                        break 'watchers;
                    }
                    ws[j] = keep;
                    j += 1;
                    if lit_value(assigns, first) == Value::False {
                        conflict = Some(cref);
                        ws.copy_within(i..len, j);
                        j += len - i;
                        break 'moves;
                    }
                    enqueue_raw(assigns, vardata, trail, level, first, Some(cref));
                }
                let (code, keep) = pending;
                watches.push(code, keep);
            }
            self.watches.truncate(p.code(), j);
            if conflict.is_some() {
                self.qhead = self.trail.len();
                break;
            }
        }
        // Moving watches may have grown the flat storage.
        self.stats.watch_resident_bytes = self.watches.resident_bytes();
        self.stats.peak_watch_bytes = self
            .stats
            .peak_watch_bytes
            .max(self.stats.watch_resident_bytes);
        conflict
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    ///
    /// Reason clauses are iterated by value with the resolved variable
    /// skipped, so binary reasons work regardless of which arena slot
    /// the implied literal occupies.
    fn analyze(&mut self, mut confl: CRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot 0 = UIP
        let mut path_c = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        loop {
            if self.arena.is_learnt(confl) {
                self.bump_clause(confl);
                // A learnt clause back in a conflict: refresh its LBD
                // downwards (Glucose-style) so `reduce_db`'s glue
                // protection tracks how the clause behaves *now*.
                let glue = self.clause_lbd(confl);
                if glue > 0 && glue < self.arena.lbd(confl) {
                    self.arena.set_lbd(confl, glue);
                }
            }
            for idx in 0..self.arena.len(confl) {
                let q = self.arena.lit(confl, idx);
                if let Some(pl) = p {
                    if q.var() == pl.var() {
                        continue; // the resolved literal itself
                    }
                }
                let v = q.var();
                if !self.seen[v.index()] && self.vardata[v.index()].level > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.vardata[v.index()].level as usize >= self.decision_level() {
                        path_c += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_c -= 1;
            p = Some(pl);
            if path_c == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.vardata[pl.var().index()]
                .reason
                .expect("non-decision literal on conflict path has a reason");
        }

        // Basic (non-recursive) clause minimization.
        let to_clear: Vec<Var> = learnt.iter().map(|l| l.var()).collect();
        let mut j = 1;
        for i in 1..learnt.len() {
            let x = learnt[i].var();
            let redundant = match self.vardata[x.index()].reason {
                None => false,
                Some(r) => self.arena.lits(r).all(|q| {
                    q.var() == x
                        || self.seen[q.var().index()]
                        || self.vardata[q.var().index()].level == 0
                }),
            };
            if !redundant {
                learnt[j] = learnt[i];
                j += 1;
            }
        }
        learnt.truncate(j);
        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // Find the backjump level and move its literal to slot 1 so the
        // clause watches stay correct after the backjump.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.vardata[learnt[i].var().index()].level
                    > self.vardata[learnt[max_i].var().index()].level
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.vardata[learnt[1].var().index()].level as usize
        };
        (learnt, bt_level)
    }

    /// Number of distinct non-zero decision levels among `lits` — the
    /// LBD ("glue") of a clause about to be learnt. Uses a stamped
    /// level array, so no clearing between calls.
    fn lits_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        let mut glue = 0u32;
        for l in lits {
            let lvl = self.vardata[l.var().index()].level as usize;
            if lvl > 0 && self.lbd_stamp[lvl] != stamp {
                self.lbd_stamp[lvl] = stamp;
                glue += 1;
            }
        }
        glue
    }

    /// Recomputes the LBD of a (fully assigned) clause in the arena.
    fn clause_lbd(&mut self, cref: CRef) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        let mut glue = 0u32;
        for idx in 0..self.arena.len(cref) {
            let lvl = self.vardata[self.arena.lit(cref, idx).var().index()].level as usize;
            if lvl > 0 && self.lbd_stamp[lvl] != stamp {
                self.lbd_stamp[lvl] = stamp;
                glue += 1;
            }
        }
        glue
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
            self.heap.rescaled();
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: CRef) {
        let act = self.arena.activity(cref) + self.cla_inc;
        self.arena.set_activity(cref, act);
        if act > CLA_RESCALE_LIMIT {
            for i in 0..self.learnt_refs.len() {
                let c = self.learnt_refs[i];
                let a = self.arena.activity(c);
                self.arena.set_activity(c, a / CLA_RESCALE_LIMIT);
            }
            self.cla_inc /= CLA_RESCALE_LIMIT;
        }
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level];
        for i in (target..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.assigns[l.code()] = Value::Unassigned;
            self.assigns[(!l).code()] = Value::Unassigned;
            self.phase[v.index()] = l.is_positive();
            if !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[v.positive().code()] == Value::Unassigned {
                return Some(v);
            }
        }
        None
    }

    fn extract_model(&mut self) {
        self.model = self
            .assigns
            .chunks_exact(2)
            .map(|pair| match pair[0] {
                Value::True => Some(true),
                Value::False => Some(false),
                Value::Unassigned => None,
            })
            .collect();
    }

    fn analyze_final(&mut self, failing: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(failing);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[failing.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i].var();
            if !self.seen[x.index()] {
                continue;
            }
            match self.vardata[x.index()].reason {
                None => {
                    debug_assert!(self.vardata[x.index()].level > 0);
                    self.conflict_core.push(self.trail[i]);
                }
                Some(r) => {
                    for idx in 0..self.arena.len(r) {
                        let q = self.arena.lit(r, idx);
                        if q.var() != x && self.vardata[q.var().index()].level > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[x.index()] = false;
        }
        self.seen[failing.var().index()] = false;
    }

    fn reduce_db(&mut self) {
        // Sort learnt clauses by activity, ascending; drop the weaker
        // half, sparing binary clauses, glue clauses (LBD ≤
        // GLUE_PROTECT), and locked clauses. Removal is lazy: the
        // freed clauses' watchers linger in smudged lists until the
        // next clean.
        let mut refs = std::mem::take(&mut self.learnt_refs);
        refs.sort_by(|&a, &b| {
            let ca = self.arena.activity(a);
            let cb = self.arena.activity(b);
            ca.partial_cmp(&cb).expect("activities are finite")
        });
        let half = refs.len() / 2;
        let mut kept = Vec::with_capacity(refs.len());
        for (i, &r) in refs.iter().enumerate() {
            let removable =
                self.arena.len(r) > 2 && self.arena.lbd(r) > GLUE_PROTECT && !self.is_locked(r);
            if i < half && removable {
                self.proof_delete_cref(r);
                self.detach_clause_lazy(r);
                self.free_clause(r);
            } else {
                kept.push(r);
            }
        }
        self.learnt_refs = kept;
        self.max_learnts *= 1.15;
        self.maybe_garbage_collect();
    }

    /// Whether the clause is the reason of a literal on the trail.
    ///
    /// The implied literal of a long reason clause always sits at slot
    /// 0 (`propagate` swaps it there before enqueueing), but the
    /// binary fast path enqueues the *watcher's blocker* without ever
    /// touching the arena — and the blocker may be either arena slot.
    /// Checking only slot 0 therefore missed locked binary reasons, a
    /// latent use-after-free for any reduction policy that can touch
    /// binary clauses.
    fn is_locked(&self, cref: CRef) -> bool {
        let slots = self.arena.len(cref).min(2);
        (0..slots).any(|i| {
            let l = self.arena.lit(cref, i);
            self.vardata[l.var().index()].reason == Some(cref)
                && lit_value(&self.assigns, l) == Value::True
        })
    }

    /// Reports a progress sample to the installed sink, if any.
    ///
    /// Shares the per-64-conflicts safe point with `budget_exhausted`
    /// (plus one call at solve exit to flush the tail), so the
    /// uninstalled cost is exactly one `Option` branch — no extra
    /// polling cadence, no timestamping.
    fn poll_progress(&mut self) {
        // Clone the sink out first: reporting borrows solver state
        // immutably while the marks update needs `&mut self`.
        let Some(sink) = self.limits.progress.sink() else {
            return;
        };
        let now = (
            self.stats.conflicts,
            self.stats.propagations,
            self.stats.restarts,
        );
        let marks = self.progress_marks;
        self.progress_marks = now;
        sink.progress(&sebmc_telemetry::Progress {
            conflicts: now.0 - marks.0,
            propagations: now.1 - marks.1,
            restarts: now.2 - marks.2,
            trail_depth: self.trail.len(),
            learnts: self.learnt_refs.len(),
            live_bytes: self.stats.live_bytes(),
        });
    }

    fn budget_exhausted(&self) -> bool {
        if !self.limits.fault.is_none() {
            use sebmc_logic::fault::{FaultSite, FaultVerdict};
            // The injected cancel lands on the same flag a supervisor
            // watches, so a spurious cancellation is indistinguishable
            // from a real one downstream — exactly what the fault
            // harness wants to exercise.
            let flag = self.limits.cancel.as_deref();
            if self.limits.fault.hit(FaultSite::Solver, flag) == FaultVerdict::Oom {
                return true;
            }
        }
        if let Some(mc) = self.limits.max_conflicts {
            if self.stats.conflicts >= mc {
                return true;
            }
        }
        if let Some(mp) = self.limits.max_propagations {
            if self.stats.propagations >= mp {
                return true;
            }
        }
        if let Some(mb) = self.limits.max_live_bytes {
            if self.stats.live_bytes() >= mb {
                return true;
            }
        }
        if let Some(ref c) = self.limits.cancel {
            if c.load(std::sync::atomic::Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.limits.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    fn search(&mut self, restart_budget: u64, assumptions: &[Lit]) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    // Conflict by top-level propagation alone: the
                    // empty clause is RUP and concludes the proof.
                    self.proof_finalize(&[]);
                    return SearchOutcome::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.proof_add(&learnt);
                // Glue is a property of the pre-backjump assignment:
                // compute it before `cancel_until` resets the levels.
                let glue = self.lits_lbd(&learnt);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.alloc_clause(&learnt, true);
                    self.arena.set_lbd(cref, glue);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                if self.stats.conflicts.is_multiple_of(64) {
                    self.poll_progress();
                    if self.budget_exhausted() {
                        self.cancel_until(0);
                        return SearchOutcome::Unknown;
                    }
                }
            } else {
                if conflicts_here >= restart_budget {
                    self.cancel_until(0);
                    return SearchOutcome::Restart;
                }
                if self.budget_exhausted() {
                    self.cancel_until(0);
                    return SearchOutcome::Unknown;
                }
                if self.learnt_refs.len() as f64 >= self.max_learnts + (self.trail.len() as f64) {
                    self.reduce_db();
                }
                let dl = self.decision_level();
                if dl < assumptions.len() {
                    let p = assumptions[dl];
                    match lit_value(&self.assigns, p) {
                        Value::True => {
                            self.new_decision_level();
                        }
                        Value::False => {
                            self.analyze_final(p);
                            // Finalize with the negated core: assuming
                            // the core literals replays the conflict's
                            // reason cone under unit propagation.
                            if self.proof.is_some() {
                                let neg: Vec<Lit> =
                                    self.conflict_core.iter().map(|&a| !a).collect();
                                self.proof_finalize(&neg);
                            }
                            return SearchOutcome::Unsat;
                        }
                        Value::Unassigned => {
                            self.new_decision_level();
                            self.unchecked_enqueue(p, None);
                        }
                    }
                    continue;
                }
                self.stats.decisions += 1;
                match self.pick_branch_var() {
                    None => {
                        self.extract_model();
                        return SearchOutcome::Sat;
                    }
                    Some(v) => {
                        let phase = self.phase[v.index()];
                        self.new_decision_level();
                        self.unchecked_enqueue(v.lit(phase), None);
                    }
                }
            }
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Unknown,
    Restart,
}

/// Assigns `p` and records its reason/level — the raw parts of
/// `unchecked_enqueue`, usable while other solver fields are borrowed
/// (propagation walks a watch segment as a slice).
#[inline]
fn enqueue_raw(
    assigns: &mut [Value],
    vardata: &mut [VarData],
    trail: &mut Vec<Lit>,
    level: u32,
    p: Lit,
    reason: Option<CRef>,
) {
    debug_assert_eq!(lit_value(assigns, p), Value::Unassigned);
    assigns[p.code()] = Value::True;
    assigns[(!p).code()] = Value::False;
    vardata[p.var().index()] = VarData { reason, level };
    trail.push(p);
}

#[inline]
fn lit_value(assigns: &[Value], l: Lit) -> Value {
    assigns[l.code()]
}

/// The Luby restart sequence: `luby(y, i)` is `y^k` where `k` follows
/// the classic 1,1,2,1,1,2,4,… pattern.
fn luby(y: f64, mut x: u64) -> f64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_logic::dimacs;

    fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<f64> = (0..15).map(|i| luby(2.0, i)).collect();
        let expect = [
            1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 8.0,
        ];
        assert_eq!(got, expect);
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0].var()), Some(false));
        assert_eq!(s.value(v[1].var()), Some(true));
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause([v[0]]));
        assert!(!s.add_clause([!v[0]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_and_duplicates_are_harmless() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause([v[0], !v[0]]));
        assert!(s.add_clause([v[1], v[1], v[1]]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[1].var()), Some(true));
    }

    /// All binary clauses of an XOR chain: forces real search, and —
    /// post-arena — exercises the binary fast path exclusively.
    #[test]
    fn xor_chain_sat() {
        let mut s = Solver::new();
        let n = 20;
        let v = vars(&mut s, n);
        // v[i] xor v[i+1] = true  ⇔  (v[i] ∨ v[i+1]) ∧ (¬v[i] ∨ ¬v[i+1])
        for i in 0..n - 1 {
            s.add_clause([v[i], v[i + 1]]);
            s.add_clause([!v[i], !v[i + 1]]);
        }
        s.add_clause([v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for (i, l) in v.iter().enumerate() {
            assert_eq!(s.value(l.var()), Some(i % 2 == 0), "position {i}");
        }
    }

    /// Pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes is
    /// UNSAT and requires clause learning to finish quickly.
    fn pigeonhole(pigeons: usize, holes: usize) -> (Solver, Vec<Vec<Lit>>) {
        let mut s = Solver::new();
        let mut p = Vec::new();
        for _ in 0..pigeons {
            p.push(vars(&mut s, holes));
        }
        // Every pigeon in some hole.
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        // No two pigeons share a hole.
        #[allow(clippy::needless_range_loop)]
        for h in 0..holes {
            for i in 0..pigeons {
                for j in i + 1..pigeons {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        (s, p)
    }

    #[test]
    fn pigeonhole_unsat() {
        let (mut s, _) = pigeonhole(5, 4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let (mut s, p) = pigeonhole(4, 4);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Verify the model is a valid assignment of pigeons to holes.
        for (i, row) in p.iter().enumerate() {
            let hole = row.iter().position(|&l| s.lit_value_model(l) == Some(true));
            assert!(hole.is_some(), "pigeon {i} unplaced");
        }
    }

    #[test]
    fn assumptions_flip_results() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        assert_eq!(s.solve_with(&[v[0], !v[2]]), SolveResult::Unsat);
        // Without the contradictory assumption pair it is satisfiable.
        assert_eq!(s.solve_with(&[v[0]]), SolveResult::Sat);
        assert_eq!(s.value(v[2].var()), Some(true));
        // The solver remains reusable after an assumption failure.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn failed_assumptions_form_a_core() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([!v[0], !v[1]]);
        // v[2], v[3] are irrelevant.
        let r = s.solve_with(&[v[2], v[0], v[3], v[1]]);
        assert_eq!(r, SolveResult::Unsat);
        let core = s.failed_assumptions().to_vec();
        assert!(core.contains(&v[0]) || core.contains(&v[1]));
        assert!(!core.contains(&v[2]));
        assert!(!core.contains(&v[3]));
        // The core itself must be sufficient for UNSAT.
        assert_eq!(s.solve_with(&core), SolveResult::Unsat);
    }

    #[test]
    fn assumption_false_at_level_zero() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([!v[0]]);
        assert_eq!(s.solve_with(&[v[0]]), SolveResult::Unsat);
        assert_eq!(s.failed_assumptions(), &[v[0]]);
        assert_eq!(s.solve_with(&[v[1]]), SolveResult::Sat);
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        // A hard pigeonhole instance with a 1-conflict budget.
        let (mut s, _) = pigeonhole(8, 7);
        s.set_limits(Limits {
            max_conflicts: Some(1),
            ..Limits::none()
        });
        assert_eq!(s.solve(), SolveResult::Unknown);
        // Removing the budget lets it finish.
        s.set_limits(Limits::none());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn deadline_in_past_yields_unknown() {
        let (mut s, _) = pigeonhole(9, 8);
        s.set_limits(Limits {
            deadline: Some(Instant::now()),
            ..Limits::none()
        });
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    #[test]
    fn simplify_removes_satisfied_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[2]]);
        s.add_clause([v[1], v[2]]);
        let before = s.stats().live_lits;
        s.add_clause([v[0]]); // unit: satisfies two clauses
        assert!(s.simplify());
        assert!(s.stats().live_lits < before, "memory must shrink");
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn activation_literal_group_retraction() {
        // The jSAT blocking-clause pattern: clauses guarded by an
        // activation literal, retracted by asserting its negation.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let act = s.new_var().positive();
        // Guarded constraint: act → (v0 ∧ v1 ∧ v2 each false)
        s.add_clause([!act, !v[0]]);
        s.add_clause([!act, !v[1]]);
        s.add_clause([!act, !v[2]]);
        s.add_clause([v[0], v[1], v[2]]);
        // Active: the guarded units contradict the ternary clause.
        assert_eq!(s.solve_with(&[act]), SolveResult::Unsat);
        // Inactive: satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
        // Retract permanently and reclaim memory.
        let lits_before = s.stats().live_lits;
        s.add_clause([!act]);
        assert!(s.simplify());
        assert!(s.stats().live_lits < lits_before);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    /// The acceptance check of the arena refactor: retracting guarded
    /// clauses must shrink the *resident* clause database, not just a
    /// live-size counter — i.e. the compactor physically frees what the
    /// seed solver only tombstoned.
    #[test]
    fn gc_physically_reclaims_retired_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 64);
        let act = s.new_var().positive();
        // A permanent base formula.
        for w in v.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        // Many wide guarded "blocking" clauses, jSAT style.
        for chunk in v.chunks(8) {
            let mut c = vec![!act];
            c.extend(chunk.iter().map(|&l| !l));
            s.add_clause(c);
        }
        let resident_full = s.clause_db_resident_bytes();
        let live_full = s.clause_db_live_bytes();
        assert_eq!(resident_full, live_full, "no garbage yet");
        // Retract the guard: every blocking clause dies.
        s.add_clause([!act]);
        assert!(s.simplify());
        let resident_after = s.clause_db_resident_bytes();
        assert!(
            resident_after < resident_full,
            "GC must shrink resident bytes ({resident_full} -> {resident_after})"
        );
        assert_eq!(
            s.clause_db_live_bytes(),
            resident_after,
            "post-GC arena is garbage-free"
        );
        assert!(s.stats().gc_runs > 0, "the compactor actually ran");
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    /// A solver that has just compacted must keep solving correctly
    /// (watchers, reasons, and clause lists were all rewritten).
    #[test]
    fn solving_continues_after_explicit_gc() {
        let (mut s, _) = pigeonhole(6, 5);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let (mut s, p) = pigeonhole(4, 4);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Force garbage + compaction, then keep using the solver.
        s.add_clause([p[0][0]]);
        assert!(s.simplify());
        s.garbage_collect();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.lit_value_model(p[0][0]), Some(true));
    }

    #[test]
    fn model_satisfies_formula() {
        // Deterministic random 3-SAT at ratio ~4, checked against the
        // model evaluator.
        let mut state = 0xdead_beefu64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..30 {
            let n = 12 + (round % 5);
            let m = n * 4;
            let mut s = Solver::new();
            let v = vars(&mut s, n);
            let mut cnf = Cnf::new();
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let var = (rnd() % n as u64) as usize;
                    let pos = rnd() % 2 == 0;
                    c.push(if pos { v[var] } else { !v[var] });
                }
                cnf.add_clause(c.iter().copied());
                s.add_clause(c);
            }
            if s.solve() == SolveResult::Sat {
                let assignment: Vec<bool> = (0..n)
                    .map(|i| s.value(Var::new(i as u32)).unwrap_or(false))
                    .collect();
                assert!(cnf.eval(&assignment), "model must satisfy the formula");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_on_small_random_instances() {
        let mut state = 0x0bad_cafeu64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..120 {
            let n = 4 + (rnd() % 5) as usize; // 4..8 vars
            let m = (rnd() % (3 * n as u64 + 1)) as usize + 1;
            let mut cnf = Cnf::new();
            for _ in 0..m {
                let len = 1 + (rnd() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..len {
                    let var = Var::new((rnd() % n as u64) as u32);
                    c.push(var.lit(rnd() % 2 == 0));
                }
                cnf.add_clause(c);
            }
            cnf.ensure_vars(n);
            let mut s = Solver::new();
            assert!(s.num_vars() == 0);
            let consistent = s.add_cnf(&cnf);
            let got = if consistent {
                s.solve()
            } else {
                SolveResult::Unsat
            };
            let expect = cnf.brute_force_satisfiable();
            assert_eq!(
                got.is_sat(),
                expect,
                "disagreement on {}",
                dimacs::to_string(&cnf)
            );
        }
    }

    #[test]
    fn incremental_clause_addition_after_solve() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([v[0], v[1], v[2], v[3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Progressive strengthening eventually makes it UNSAT.
        s.add_clause([!v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([!v[1]]);
        s.add_clause([!v[2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[3].var()), Some(true));
        s.add_clause([!v[3]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Once UNSAT without assumptions, always UNSAT.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn learnt_db_reduction_keeps_soundness() {
        // A formula large enough to trigger reductions with a small cap.
        let (mut s, _) = pigeonhole(7, 6);
        s.max_learnts = 10.0;
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().removed_clauses > 0, "reduction should trigger");
    }

    #[test]
    fn peak_memory_is_tracked() {
        let (mut s, _) = pigeonhole(6, 5);
        let initial = s.stats().live_lits;
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().peak_live_lits >= initial);
        // Exact bytes include headers, so they exceed 4 bytes/literal.
        assert!(s.stats().peak_bytes() > s.stats().peak_live_lits * 4);
        assert!(s.stats().peak_live_words >= s.stats().live_words);
    }

    #[test]
    fn byte_limit_yields_unknown() {
        let (mut s, _) = pigeonhole(8, 7);
        let base = s.stats().live_bytes();
        s.set_limits(Limits {
            max_live_bytes: Some(base + 32),
            ..Limits::none()
        });
        // Learnt clauses quickly exceed the byte cap.
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_limits(Limits::none());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn cancel_flag_aborts_solve() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let (mut s, _) = pigeonhole(8, 7);
        let flag = Arc::new(AtomicBool::new(false));
        s.set_limits(Limits {
            cancel: Some(Arc::clone(&flag)),
            ..Limits::none()
        });
        // Un-fired flag: the solve completes normally.
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Fired flag: a fresh (hard) solve aborts with Unknown.
        let (mut s2, _) = pigeonhole(9, 8);
        flag.store(true, Ordering::Relaxed);
        s2.set_limits(Limits {
            cancel: Some(flag),
            ..Limits::none()
        });
        assert_eq!(s2.solve(), SolveResult::Unknown);
    }

    #[test]
    fn ensure_vars_and_add_cnf() {
        let mut s = Solver::new();
        let cnf = dimacs::parse("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert!(s.add_cnf(&cnf));
        assert_eq!(s.num_vars(), 3);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    /// Regression (ISSUE 3): the binary fast path enqueues the
    /// watcher's *blocker*, which may live at arena slot 1, but
    /// `is_locked` used to inspect slot 0 only — so a binary reason
    /// clause looked free and could be deleted under any reduction
    /// policy that touches binaries (LBD-aware reduction,
    /// subsumption). This test fails on the pre-PR solver.
    #[test]
    fn binary_reason_locked_via_fast_path() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause([a, b]);
        let cref = s.clauses[0];
        assert_eq!(s.arena.lit(cref, 0), a, "sorted: a sits at slot 0");
        // Decide ¬a; the fast path implies b with the clause as
        // reason, leaving the implied literal at slot 1.
        s.new_decision_level();
        s.unchecked_enqueue(!a, None);
        assert!(s.propagate().is_none());
        assert_eq!(s.arena.lit(cref, 1), b, "implied literal is at slot 1");
        assert_eq!(s.vardata[b.var().index()].reason, Some(cref));
        assert!(
            s.is_locked(cref),
            "a binary clause implying via the fast path is locked"
        );
        s.cancel_until(0);
        assert!(!s.is_locked(cref), "unlocked once the trail is undone");
    }

    /// Regression (ISSUE 3): deriving the empty clause mid-`simplify`
    /// used to clear the taken refs vector and return, leaking every
    /// already-kept and not-yet-visited clause from its owning list
    /// and desyncing `Stats` from the arena. The solver must end up
    /// `!ok` but internally consistent.
    #[test]
    fn simplify_empty_clause_mid_pass_keeps_lists_consistent() {
        let mut s = Solver::new();
        let v = vars(&mut s, 6);
        s.add_clause([v[2], v[3], v[4]]); // kept before the empty one
        s.add_clause([v[0], v[1]]); // will become empty
        s.alloc_clause(&[v[4], v[5]], true); // learnt list processed after
                                             // Falsify v0 and v1 directly, behind propagation's back — the
                                             // only way a fully-falsified clause can survive to `simplify`
                                             // with intact watch invariants.
        s.assigns[v[0].code()] = Value::False;
        s.assigns[(!v[0]).code()] = Value::True;
        s.assigns[v[1].code()] = Value::False;
        s.assigns[(!v[1]).code()] = Value::True;
        assert!(!s.simplify());
        assert!(!s.is_ok());
        // Both lists still own exactly their live clauses...
        assert_eq!(s.clauses.len(), 1);
        assert_eq!(s.learnt_refs.len(), 1);
        for &c in s.clauses.iter().chain(&s.learnt_refs) {
            assert!(!s.arena.is_freed(c), "lists never hold freed clauses");
        }
        // ...and the stats agree with the arena.
        assert_eq!(s.stats.learnts as usize, s.learnt_refs.len());
        assert_eq!(s.stats.live_words, s.arena.live_words());
        let total_lits: usize = s
            .clauses
            .iter()
            .chain(&s.learnt_refs)
            .map(|&c| s.arena.len(c))
            .sum();
        assert_eq!(s.stats.live_lits, total_lits);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn learnt_clauses_record_their_glue() {
        let (mut s, _) = pigeonhole(6, 5);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().learnts > 0 || !s.learnt_refs.is_empty());
        for &c in &s.learnt_refs {
            assert!(s.arena.lbd(c) >= 1, "every learnt clause has a glue");
        }
    }

    #[test]
    fn reduce_db_protects_glue_and_spares_locked() {
        let mut s = Solver::new();
        let v = vars(&mut s, 12);
        // Arena ballast so the reduction's safe point stays below the
        // GC threshold and the CRefs below remain stable.
        for w in v.windows(4).take(8) {
            s.add_clause(w.iter().copied());
        }
        // Three wide, high-LBD learnts with rising activity and one
        // zero-activity glue clause (LBD 2): the glue clause sorts
        // weakest but must survive the reduction.
        let mut wide = Vec::new();
        for (i, chunk) in v.chunks(3).take(3).enumerate() {
            let c = s.alloc_clause(chunk, true);
            s.arena.set_lbd(c, 5);
            s.arena.set_activity(c, 1.0 + i as f32);
            wide.push(c);
        }
        let glue = s.alloc_clause(&[v[9], v[10], v[11]], true);
        s.arena.set_lbd(glue, 2);
        s.reduce_db();
        assert!(s.learnt_refs.contains(&glue), "glue clause survives");
        assert!(!s.arena.is_freed(glue));
        assert!(
            s.arena.is_freed(wide[0]),
            "the weakest high-LBD clause is dropped"
        );
        assert_eq!(s.stats().removed_clauses, 1);
        // The lazily-detached watchers must not disturb later solving.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn simplify_subsumes_superset_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[1], v[2]]); // subsumed
        s.add_clause([v[2], v[3]]);
        assert!(s.simplify());
        assert_eq!(s.num_clauses(), 2);
        assert_eq!(s.stats().subsumed_clauses, 1);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn simplify_strengthens_by_self_subsumption() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[1], v[2]]); // resolves to (v1 ∨ v2)
        let lits_before = s.stats().live_lits;
        assert!(s.simplify());
        assert_eq!(s.stats().strengthened_lits, 1);
        assert_eq!(s.stats().live_lits, lits_before - 1);
        assert_eq!(s.num_clauses(), 2);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn strengthening_to_unit_propagates() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[1]]); // resolves to the unit (v1)
        s.add_clause([!v[1], v[2]]);
        assert!(s.simplify());
        // The strengthened unit fired and propagated through the
        // implication: v1 and v2 are now top-level facts.
        assert_eq!(lit_value(&s.assigns, v[1]), Value::True);
        assert_eq!(lit_value(&s.assigns, v[2]), Value::True);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn learnt_subsumer_never_deletes_problem_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        // A learnt clause subsuming the problem clause must not delete
        // it (reduce_db may drop the learnt witness later).
        s.alloc_clause(&[v[0], v[1]], true);
        assert!(s.simplify());
        assert_eq!(s.num_clauses(), 1, "problem clause survives");
        assert_eq!(s.stats().subsumed_clauses, 0);
    }

    #[test]
    fn watch_storage_bytes_are_tracked() {
        let (mut s, _) = pigeonhole(6, 5);
        assert!(s.stats().watch_resident_bytes > 0);
        assert_eq!(
            s.stats().watch_resident_bytes,
            s.watch_db_resident_bytes(),
            "stats mirror the live structure"
        );
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().peak_watch_bytes >= s.stats().watch_resident_bytes);
        assert!(s.stats().peak_watch_bytes > 0);
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, _) = pigeonhole(5, 4);
        s.solve();
        let st = s.stats().clone();
        assert!(st.decisions > 0);
        assert!(st.conflicts > 0);
        assert!(st.propagations > 0);
    }

    // ----- proof logging ------------------------------------------------

    use sebmc_proof::{DratWriter, StreamingChecker};

    /// Pigeonhole with a streaming checker: the Unsat verdict must be
    /// fully machine-checked, and the byte accounting must be exact.
    #[test]
    fn unsat_proof_is_checked_on_the_fly() {
        let mut s = Solver::new();
        s.set_proof_sink(Box::new(StreamingChecker::new()));
        let mut p = Vec::new();
        for _ in 0..5 {
            p.push(vars(&mut s, 4));
        }
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        #[allow(clippy::needless_range_loop)]
        for h in 0..4 {
            for i in 0..5 {
                for j in i + 1..5 {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.proof_certifies(&[]), "empty-assumption Unsat certified");
        let cert = s.proof_summary().expect("checking sink");
        assert_eq!(cert.failed_checks, 0, "every lemma RUP");
        assert_eq!(cert.missing_deletes, 0, "deletion log in sync");
        assert!(cert.lemmas_checked > 0, "conflicts produced lemmas");
        assert!(cert.originals > 0);
        assert_eq!(cert.proof_bytes as usize, s.proof_bytes());
        assert_eq!(s.stats().peak_proof_bytes, s.proof_bytes());
        assert!(s.proof_bytes() > 0);
    }

    /// Unsat under assumptions finalizes with the failed-assumption
    /// core; the certificate matches the assumption set (and supersets)
    /// while the solver stays incrementally usable.
    #[test]
    fn assumption_core_is_finalized_and_certified() {
        let mut s = Solver::new();
        s.set_proof_sink(Box::new(StreamingChecker::new()));
        let v = vars(&mut s, 4);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        assert_eq!(s.solve_with(&[v[0], !v[2]]), SolveResult::Unsat);
        assert!(
            s.proof_certifies(&[v[0], !v[2]]),
            "core clause covers the assumptions"
        );
        assert!(
            s.proof_certifies(&[v[0], !v[2], v[3]]),
            "supersets certified too"
        );
        assert!(
            !s.proof_certifies(&[v[3]]),
            "unrelated assumptions are not covered"
        );
        // Still usable, and the next Unsat re-finalizes.
        assert_eq!(s.solve_with(&[v[0]]), SolveResult::Sat);
        assert_eq!(s.solve_with(&[v[1], !v[2]]), SolveResult::Unsat);
        assert!(s.proof_certifies(&[v[1], !v[2]]));
        let cert = s.proof_summary().unwrap();
        assert_eq!(cert.failed_checks, 0);
        assert!(cert.unsat_proofs >= 2, "one finalization per Unsat solve");
    }

    /// The delicate interactions — lazy watch deletion (`reduce_db`),
    /// wholesale simplify rebuilds, subsumption/strengthening rewrites
    /// and compacting GC — must leave the deletion log keyed purely by
    /// content, with nothing missing and nothing failing.
    #[test]
    fn churny_solving_keeps_the_proof_stream_in_sync() {
        let mut s = Solver::new();
        s.set_proof_sink(Box::new(StreamingChecker::new()));
        let v = vars(&mut s, 12);
        // Subsumption + strengthening food.
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[1], v[2]]); // subsumed
        s.add_clause([!v[0], v[1], v[3]]); // strengthened on v0
        for w in v.windows(4).take(8) {
            s.add_clause(w.iter().copied());
        }
        assert!(s.simplify());
        assert!(s.stats().subsumed_clauses > 0, "subsumption fired");
        assert!(s.stats().strengthened_lits > 0, "strengthening fired");
        // Learnt churn + reductions, then a unit that guts the formula
        // and forces GC.
        s.set_max_learnts(4.0);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([v[1]]);
        assert!(s.simplify());
        s.garbage_collect();
        assert_eq!(s.solve(), SolveResult::Sat);
        let cert = s.proof_summary().unwrap();
        assert_eq!(cert.failed_checks, 0, "all rewrites RUP");
        assert_eq!(
            cert.missing_deletes, 0,
            "content-keyed deletions survive lazy watches and GC"
        );
        assert!(cert.deletions > 0, "the churn actually deleted clauses");
    }

    /// jSAT-style activation-literal retraction under proof logging:
    /// guarded clauses retired by `simplify` must be deleted from the
    /// proof exactly once, and later Unsat calls still certify.
    #[test]
    fn activation_retraction_is_proof_logged() {
        let mut s = Solver::new();
        s.set_proof_sink(Box::new(StreamingChecker::new()));
        let v = vars(&mut s, 3);
        let act = s.new_var().positive();
        s.add_clause([!act, !v[0]]);
        s.add_clause([!act, !v[1]]);
        s.add_clause([!act, !v[2]]);
        s.add_clause([v[0], v[1], v[2]]);
        assert_eq!(s.solve_with(&[act]), SolveResult::Unsat);
        assert!(s.proof_certifies(&[act]));
        s.add_clause([!act]);
        assert!(s.simplify());
        assert_eq!(s.solve(), SolveResult::Sat);
        let cert = s.proof_summary().unwrap();
        assert_eq!(cert.failed_checks, 0);
        assert_eq!(cert.missing_deletes, 0);
    }

    /// A write-only DRAT sink accounts bytes but certifies nothing.
    #[test]
    fn write_only_sink_accounts_but_never_certifies() {
        let mut s = Solver::new();
        s.set_proof_sink(Box::new(DratWriter::new(std::io::sink())));
        let v = vars(&mut s, 2);
        s.add_clause([v[0]]);
        s.add_clause([!v[0]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.proof_bytes() > 0);
        assert!(s.proof_summary().is_none());
        assert!(!s.proof_certifies(&[]));
    }

    #[test]
    #[should_panic(expected = "before the first clause")]
    fn proof_sink_must_be_installed_first() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.set_proof_sink(Box::new(StreamingChecker::new()));
    }
}
