//! The CDCL SAT solver.
//!
//! A from-scratch conflict-driven clause-learning solver in the
//! MiniSat/zChaff tradition — the same algorithm family as the
//! "state-of-the-art DPLL-based SAT solvers" the paper evaluated in
//! 2005, and the substrate its jSAT procedure was built on:
//!
//! * two-watched-literal propagation with blocker literals and an
//!   inline binary-clause fast path,
//! * first-UIP conflict analysis with basic clause minimization,
//! * VSIDS variable activities with phase saving,
//! * Luby-sequence restarts,
//! * activity-based learnt-clause database reduction,
//! * MiniSat-style assumptions with failed-assumption cores,
//! * conflict/propagation/wall-clock budgets (the paper's 300 s limit),
//! * `simplify()` — level-0 garbage collection that physically removes
//!   satisfied clauses, which is what lets jSAT retract blocking
//!   clauses and keep its memory proportional to the path length.
//!
//! # Clause storage: the arena
//!
//! All clauses live in a single flat [`ClauseArena`] (see
//! [`crate::arena`] for the record layout) and are referred to by
//! [`CRef`] word offsets. Three kinds of root references exist, and
//! the solver maintains these invariants for each:
//!
//! * **clause lists** (`clauses` for problem clauses, `learnt_refs`
//!   for learnt ones) hold every live clause exactly once and *never*
//!   hold a freed clause — `free` is always paired with removal from
//!   the owning list;
//! * **watcher lists** hold exactly two watchers per live clause of
//!   length ≥ 2 (for clauses of length 2 the watcher carries the other
//!   literal inline and is tagged binary, so propagation never touches
//!   the arena for them); a clause is detached before it is freed,
//!   except in `simplify()` which rebuilds every watcher list from
//!   scratch;
//! * **reason references** (`VarData::reason`) exist only for
//!   currently-assigned non-decision variables on the trail; clauses
//!   locked as reasons are never freed (`reduce_db` checks
//!   `is_locked`, and `simplify` runs at level 0 where reasons have
//!   been cleared).
//!
//! # Compacting garbage collection
//!
//! `free`/`shrink` only *book* garbage; the words are reclaimed by
//! [`Solver::garbage_collect`], which copies live records into a fresh
//! arena (in clause-list order, restoring allocation locality) and
//! rewrites all three root-reference kinds through the arena's
//! forwarding pointers. Collection triggers automatically whenever the
//! wasted share of the arena exceeds [`GC_WASTE_FRACTION`] at a safe
//! point: after `simplify()` (jSAT's blocking-clause retirement) and
//! after `reduce_db()` (learnt-clause pruning). This is what turns the
//! seed's tombstone leak into physically-flat memory: retired clauses
//! now shrink the resident clause database, not just a counter.

use std::time::Instant;

use sebmc_logic::{Cnf, Lit, Var};

use crate::arena::{CRef, ClauseArena};
use crate::heap::ActivityHeap;

/// Result of a [`Solver::solve`] call.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (see [`Solver::value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// A resource budget was exhausted before a verdict.
    Unknown,
}

impl SolveResult {
    /// `true` for [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == SolveResult::Sat
    }

    /// `true` for [`SolveResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SolveResult::Unsat
    }
}

/// Resource budgets for a single `solve` call.
///
/// All fields default to "unlimited". The deadline is a wall-clock
/// instant, checked periodically during search.
#[derive(Clone, Debug, Default)]
pub struct Limits {
    /// Maximum number of conflicts before giving up.
    pub max_conflicts: Option<u64>,
    /// Maximum number of propagations before giving up.
    pub max_propagations: Option<u64>,
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Maximum live literals in the clause database (memory proxy);
    /// exceeding it aborts the solve with `Unknown`, reproducing the
    /// paper's 1 GB memory limit.
    pub max_live_lits: Option<usize>,
    /// Maximum live clause-database bytes (exact arena accounting,
    /// clause headers included); exceeding it aborts the solve with
    /// `Unknown`. This is the byte-based successor of `max_live_lits`.
    pub max_live_bytes: Option<usize>,
    /// Cooperative cancellation flag, polled at the same safe points as
    /// the deadline (every 64 conflicts and before each decision). When
    /// another thread stores `true`, the solve aborts with `Unknown`.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Limits {
    /// No limits at all.
    pub fn none() -> Self {
        Limits::default()
    }
}

/// Search and memory statistics, exposed for the paper's experiments.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnts: u64,
    /// Clauses removed by reduction or simplification.
    pub removed_clauses: u64,
    /// Arena compactions performed.
    pub gc_runs: u64,
    /// Current live literal count across all clauses (memory proxy).
    pub live_lits: usize,
    /// Peak live literal count ever observed (memory proxy; E4).
    pub peak_live_lits: usize,
    /// Current live clause-database size in arena words, clause
    /// headers included (exact memory measure).
    pub live_words: usize,
    /// Peak of [`Stats::live_words`] ever observed.
    pub peak_live_words: usize,
}

impl Stats {
    /// Exact peak clause-database size in bytes: every live arena word
    /// at the high-water mark, clause headers and activity words
    /// included — not the seed's `peak_live_lits * 4` approximation.
    pub fn peak_bytes(&self) -> usize {
        self.peak_live_words * std::mem::size_of::<u32>()
    }

    /// Exact current live clause-database size in bytes.
    pub fn live_bytes(&self) -> usize {
        self.live_words * std::mem::size_of::<u32>()
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Value {
    True,
    False,
    Unassigned,
}

/// One entry of a watch list.
///
/// `cref_tag` is the clause's [`CRef`] with [`BIN_TAG`] set when the
/// clause is binary. For binary clauses `blocker` *is* the other
/// literal, so propagation decides keep/enqueue/conflict without ever
/// dereferencing the arena; for longer clauses `blocker` is a cached
/// literal whose truth lets the common already-satisfied case skip the
/// arena too.
#[derive(Copy, Clone, Debug)]
struct Watcher {
    cref_tag: u32,
    blocker: Lit,
}

const BIN_TAG: u32 = 1 << 31;

impl Watcher {
    #[inline]
    fn long(cref: CRef, blocker: Lit) -> Self {
        Watcher {
            cref_tag: cref.0,
            blocker,
        }
    }

    #[inline]
    fn binary(cref: CRef, other: Lit) -> Self {
        Watcher {
            cref_tag: cref.0 | BIN_TAG,
            blocker: other,
        }
    }

    #[inline]
    fn is_binary(self) -> bool {
        self.cref_tag & BIN_TAG != 0
    }

    #[inline]
    fn cref(self) -> CRef {
        CRef(self.cref_tag & !BIN_TAG)
    }
}

#[derive(Copy, Clone, Debug)]
struct VarData {
    reason: Option<CRef>,
    level: u32,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f32 = 0.999;
const RESTART_FIRST: u64 = 100;
const RESCALE_LIMIT: f64 = 1e100;
const CLA_RESCALE_LIMIT: f32 = 1e20;
/// Fraction of the arena that may be garbage before a safe point
/// triggers compaction.
const GC_WASTE_FRACTION: f64 = 0.20;

/// An incremental CDCL SAT solver.
///
/// ```
/// use sebmc_sat::{SolveResult, Solver};
/// use sebmc_logic::Lit;
///
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause([a, b]);
/// s.add_clause([!a]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.value(b.var()), Some(true));
/// ```
#[derive(Debug)]
pub struct Solver {
    arena: ClauseArena,
    clauses: Vec<CRef>,
    learnt_refs: Vec<CRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<Value>,
    vardata: Vec<VarData>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    heap: ActivityHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    model: Vec<Option<bool>>,
    conflict_core: Vec<Lit>,
    limits: Limits,
    stats: Stats,
    max_learnts: f64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            arena: ClauseArena::new(),
            clauses: Vec::new(),
            learnt_refs: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            vardata: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: ActivityHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            model: Vec::new(),
            conflict_core: Vec::new(),
            limits: Limits::none(),
            stats: Stats::default(),
            max_learnts: 4000.0,
        }
    }

    /// Creates a fresh solver variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len() as u32);
        self.assigns.push(Value::Unassigned);
        self.vardata.push(VarData {
            reason: None,
            level: 0,
        });
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live problem clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the solver is still consistent (no top-level conflict).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Sets the resource budgets for subsequent `solve` calls.
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Search statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resident clause-database size in bytes: live records *plus*
    /// garbage not yet compacted away. This is what the process
    /// actually holds; it shrinks when [`Solver::garbage_collect`]
    /// runs.
    pub fn clause_db_resident_bytes(&self) -> usize {
        self.arena.resident_bytes()
    }

    /// Live clause-database size in bytes (headers included).
    pub fn clause_db_live_bytes(&self) -> usize {
        self.arena.live_bytes()
    }

    /// Adds a clause; returns `false` if the solver became inconsistent
    /// (the empty clause was derived).
    ///
    /// Tautologies are silently dropped and duplicate literals merged.
    /// May be called between `solve` calls for incremental use.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        for l in &ls {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l:?} references an unallocated variable"
            );
        }
        ls.sort_unstable();
        ls.dedup();
        // Tautology?
        if ls.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true;
        }
        // Remove literals already false at level 0; drop satisfied clauses.
        let mut filtered = Vec::with_capacity(ls.len());
        for &l in &ls {
            match lit_value(&self.assigns, l) {
                Value::True => return true,
                Value::False => {}
                Value::Unassigned => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.alloc_clause(&filtered, false);
                true
            }
        }
    }

    /// Adds every clause of a [`Cnf`], creating variables as needed.
    ///
    /// Returns `false` if the solver became inconsistent.
    pub fn add_cnf(&mut self, cnf: &Cnf) -> bool {
        self.ensure_vars(cnf.num_vars());
        for clause in cnf.iter() {
            if !self.add_clause(clause.iter().copied()) {
                return false;
            }
        }
        true
    }

    /// Solves the current formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On [`SolveResult::Unsat`], [`Solver::failed_assumptions`] holds a
    /// subset of the assumptions sufficient for the conflict.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.model.clear();
        self.conflict_core.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        for a in assumptions {
            assert!(
                a.var().index() < self.num_vars(),
                "assumption {a:?} references an unallocated variable"
            );
        }
        self.cancel_until(0);
        let mut curr_restarts = 0u64;
        let result = loop {
            let budget = luby(2.0, curr_restarts) * RESTART_FIRST as f64;
            match self.search(budget as u64, assumptions) {
                SearchOutcome::Sat => break SolveResult::Sat,
                SearchOutcome::Unsat => break SolveResult::Unsat,
                SearchOutcome::Unknown => break SolveResult::Unknown,
                SearchOutcome::Restart => {
                    curr_restarts += 1;
                    self.stats.restarts += 1;
                }
            }
        };
        self.cancel_until(0);
        result
    }

    /// Model value of a variable after [`SolveResult::Sat`].
    ///
    /// Returns `None` if no model is available or the variable was
    /// created after the last solve.
    pub fn value(&self, v: Var) -> Option<bool> {
        self.model.get(v.index()).copied().flatten()
    }

    /// Model value of a literal after [`SolveResult::Sat`].
    pub fn lit_value_model(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| l.apply(b))
    }

    /// After an `Unsat` result of [`Solver::solve_with`], the subset of
    /// assumptions involved in the conflict.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Level-0 simplification: removes clauses satisfied at the top
    /// level and strips falsified literals, physically reclaiming
    /// memory (the arena is compacted when enough garbage has
    /// accumulated). Returns `false` if the formula became
    /// inconsistent.
    ///
    /// This is the operation jSAT uses to retract deactivated blocking
    /// clauses (see crate `sebmc`, module `jsat`).
    pub fn simplify(&mut self) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return false;
        }
        // Top-level assignments never need reasons again.
        for &l in &self.trail {
            self.vardata[l.var().index()].reason = None;
        }
        // Rebuild every watch list from scratch after filtering.
        for w in &mut self.watches {
            w.clear();
        }
        let mut enqueue: Vec<Lit> = Vec::new();
        for which in [false, true] {
            let mut refs = std::mem::take(if which {
                &mut self.learnt_refs
            } else {
                &mut self.clauses
            });
            let mut kept = Vec::with_capacity(refs.len());
            for &cref in &refs {
                let satisfied = self
                    .arena
                    .lits(cref)
                    .any(|l| lit_value(&self.assigns, l) == Value::True);
                if satisfied {
                    self.free_clause(cref);
                    continue;
                }
                // Strip level-0-falsified literals in place.
                let len = self.arena.len(cref);
                let mut kept_lits = 0;
                for i in 0..len {
                    let l = self.arena.lit(cref, i);
                    if lit_value(&self.assigns, l) != Value::False {
                        if i != kept_lits {
                            self.arena.set_lit(cref, kept_lits, l);
                        }
                        kept_lits += 1;
                    }
                }
                if kept_lits < len {
                    self.arena.shrink(cref, kept_lits.max(1));
                    self.stats.live_lits -= len - kept_lits.max(1);
                }
                match kept_lits {
                    0 => {
                        self.ok = false;
                        // Restore list ownership before bailing out.
                        refs.clear();
                        return false;
                    }
                    1 => {
                        enqueue.push(self.arena.lit(cref, 0));
                        self.free_clause(cref);
                    }
                    _ => {
                        self.attach_clause(cref);
                        kept.push(cref);
                    }
                }
            }
            refs.clear();
            if which {
                self.learnt_refs = kept;
            } else {
                self.clauses = kept;
            }
        }
        self.sync_word_stats();
        for l in enqueue {
            match lit_value(&self.assigns, l) {
                Value::True => {}
                Value::False => {
                    self.ok = false;
                    return false;
                }
                Value::Unassigned => self.unchecked_enqueue(l, None),
            }
        }
        self.qhead = 0;
        if self.propagate().is_some() {
            self.ok = false;
            return false;
        }
        self.maybe_garbage_collect();
        self.ok
    }

    /// Compacts the clause arena now: copies every live clause into a
    /// fresh arena and rewrites clause lists, watcher lists, and reason
    /// references. Resident memory drops by exactly the booked garbage.
    pub fn garbage_collect(&mut self) {
        if self.arena.wasted_words() == 0 {
            return;
        }
        let mut to = ClauseArena::with_capacity(self.arena.live_words());
        for c in self.clauses.iter_mut() {
            *c = self.arena.reloc(*c, &mut to);
        }
        for c in self.learnt_refs.iter_mut() {
            *c = self.arena.reloc(*c, &mut to);
        }
        for list in self.watches.iter_mut() {
            for w in list.iter_mut() {
                let new = self.arena.reloc(w.cref(), &mut to);
                *w = if w.is_binary() {
                    Watcher::binary(new, w.blocker)
                } else {
                    Watcher::long(new, w.blocker)
                };
            }
        }
        for i in 0..self.trail.len() {
            let v = self.trail[i].var();
            if let Some(r) = self.vardata[v.index()].reason {
                self.vardata[v.index()].reason = Some(self.arena.reloc(r, &mut to));
            }
        }
        self.arena = to;
        self.stats.gc_runs += 1;
        self.sync_word_stats();
    }

    // ----- internal machinery -------------------------------------------------

    fn maybe_garbage_collect(&mut self) {
        let resident = self.arena.resident_words();
        if resident > 0 && self.arena.wasted_words() as f64 >= resident as f64 * GC_WASTE_FRACTION {
            self.garbage_collect();
        }
    }

    /// Refreshes the word-level memory statistics from the arena.
    fn sync_word_stats(&mut self) {
        self.stats.live_words = self.arena.live_words();
        self.stats.peak_live_words = self.stats.peak_live_words.max(self.stats.live_words);
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn alloc_clause(&mut self, lits: &[Lit], learnt: bool) -> CRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.alloc(lits, learnt);
        self.stats.live_lits += lits.len();
        self.stats.peak_live_lits = self.stats.peak_live_lits.max(self.stats.live_lits);
        if learnt {
            self.learnt_refs.push(cref);
            self.stats.learnts += 1;
        } else {
            self.clauses.push(cref);
        }
        self.sync_word_stats();
        self.attach_clause(cref);
        cref
    }

    fn attach_clause(&mut self, cref: CRef) {
        let w0 = self.arena.lit(cref, 0);
        let w1 = self.arena.lit(cref, 1);
        if self.arena.len(cref) == 2 {
            self.watches[(!w0).code()].push(Watcher::binary(cref, w1));
            self.watches[(!w1).code()].push(Watcher::binary(cref, w0));
        } else {
            self.watches[(!w0).code()].push(Watcher::long(cref, w1));
            self.watches[(!w1).code()].push(Watcher::long(cref, w0));
        }
    }

    fn detach_clause(&mut self, cref: CRef) {
        let w0 = self.arena.lit(cref, 0);
        let w1 = self.arena.lit(cref, 1);
        for w in [w0, w1] {
            let list = &mut self.watches[(!w).code()];
            if let Some(pos) = list.iter().position(|x| x.cref() == cref) {
                list.swap_remove(pos);
            }
        }
    }

    /// Books the clause as garbage and updates the statistics. The
    /// caller is responsible for the watcher lists (either
    /// `detach_clause` first, or a wholesale rebuild as in `simplify`)
    /// and for removing the reference from its owning clause list.
    fn free_clause(&mut self, cref: CRef) {
        self.stats.live_lits -= self.arena.len(cref);
        self.stats.removed_clauses += 1;
        if self.arena.is_learnt(cref) {
            self.stats.learnts -= 1;
        }
        self.arena.free(cref);
        self.stats.live_words = self.arena.live_words();
    }

    #[inline]
    fn unchecked_enqueue(&mut self, p: Lit, reason: Option<CRef>) {
        debug_assert_eq!(lit_value(&self.assigns, p), Value::Unassigned);
        self.assigns[p.var().index()] = if p.is_positive() {
            Value::True
        } else {
            Value::False
        };
        self.vardata[p.var().index()] = VarData {
            reason,
            level: self.decision_level() as u32,
        };
        self.trail.push(p);
    }

    /// Unit propagation; returns the conflicting clause reference, if
    /// any.
    ///
    /// Binary watchers complete without touching the arena: the
    /// watcher's blocker *is* the other literal, so satisfied/unit/
    /// conflict are decided from the assignment table alone. Long
    /// clauses take the classic MiniSat path over the flat arena.
    fn propagate(&mut self) -> Option<CRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Take the list to sidestep aliasing with pushes into
            // *other* watch lists; the allocation survives and is
            // swapped back below, so there is no per-literal churn.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Cheapest exit: the cached blocker is already true.
                if lit_value(&self.assigns, w.blocker) == Value::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                if w.is_binary() {
                    // The blocker is the whole rest of the clause.
                    ws[j] = w;
                    j += 1;
                    match lit_value(&self.assigns, w.blocker) {
                        Value::Unassigned => {
                            self.unchecked_enqueue(w.blocker, Some(w.cref()));
                        }
                        Value::False => {
                            conflict = Some(w.cref());
                            while i < ws.len() {
                                ws[j] = ws[i];
                                j += 1;
                                i += 1;
                            }
                            self.qhead = self.trail.len();
                            break 'watchers;
                        }
                        Value::True => unreachable!("handled by the blocker test"),
                    }
                    continue;
                }
                let cref = w.cref();
                // Make sure the false literal is at slot 1.
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.arena.lit(cref, 1), false_lit);
                let first = self.arena.lit(cref, 0);
                let keep = Watcher::long(cref, first);
                if first != w.blocker && lit_value(&self.assigns, first) == Value::True {
                    ws[j] = keep;
                    j += 1;
                    continue;
                }
                // Look for a replacement watch.
                let len = self.arena.len(cref);
                let mut moved = false;
                for k in 2..len {
                    let lk = self.arena.lit(cref, k);
                    if lit_value(&self.assigns, lk) != Value::False {
                        self.arena.swap_lits(cref, 1, k);
                        self.watches[(!lk).code()].push(keep);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // No replacement: the clause is unit or conflicting.
                ws[j] = keep;
                j += 1;
                if lit_value(&self.assigns, first) == Value::False {
                    conflict = Some(cref);
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    break 'watchers;
                }
                self.unchecked_enqueue(first, Some(cref));
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    ///
    /// Reason clauses are iterated by value with the resolved variable
    /// skipped, so binary reasons work regardless of which arena slot
    /// the implied literal occupies.
    fn analyze(&mut self, mut confl: CRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot 0 = UIP
        let mut path_c = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        loop {
            if self.arena.is_learnt(confl) {
                self.bump_clause(confl);
            }
            for idx in 0..self.arena.len(confl) {
                let q = self.arena.lit(confl, idx);
                if let Some(pl) = p {
                    if q.var() == pl.var() {
                        continue; // the resolved literal itself
                    }
                }
                let v = q.var();
                if !self.seen[v.index()] && self.vardata[v.index()].level > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.vardata[v.index()].level as usize >= self.decision_level() {
                        path_c += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_c -= 1;
            p = Some(pl);
            if path_c == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.vardata[pl.var().index()]
                .reason
                .expect("non-decision literal on conflict path has a reason");
        }

        // Basic (non-recursive) clause minimization.
        let to_clear: Vec<Var> = learnt.iter().map(|l| l.var()).collect();
        let mut j = 1;
        for i in 1..learnt.len() {
            let x = learnt[i].var();
            let redundant = match self.vardata[x.index()].reason {
                None => false,
                Some(r) => self.arena.lits(r).all(|q| {
                    q.var() == x
                        || self.seen[q.var().index()]
                        || self.vardata[q.var().index()].level == 0
                }),
            };
            if !redundant {
                learnt[j] = learnt[i];
                j += 1;
            }
        }
        learnt.truncate(j);
        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // Find the backjump level and move its literal to slot 1 so the
        // clause watches stay correct after the backjump.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.vardata[learnt[i].var().index()].level
                    > self.vardata[learnt[max_i].var().index()].level
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.vardata[learnt[1].var().index()].level as usize
        };
        (learnt, bt_level)
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
            self.heap.rescaled();
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: CRef) {
        let act = self.arena.activity(cref) + self.cla_inc;
        self.arena.set_activity(cref, act);
        if act > CLA_RESCALE_LIMIT {
            for i in 0..self.learnt_refs.len() {
                let c = self.learnt_refs[i];
                let a = self.arena.activity(c);
                self.arena.set_activity(c, a / CLA_RESCALE_LIMIT);
            }
            self.cla_inc /= CLA_RESCALE_LIMIT;
        }
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level];
        for i in (target..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.assigns[v.index()] = Value::Unassigned;
            self.phase[v.index()] = l.is_positive();
            if !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[v.index()] == Value::Unassigned {
                return Some(v);
            }
        }
        None
    }

    fn extract_model(&mut self) {
        self.model = self
            .assigns
            .iter()
            .map(|&a| match a {
                Value::True => Some(true),
                Value::False => Some(false),
                Value::Unassigned => None,
            })
            .collect();
    }

    fn analyze_final(&mut self, failing: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(failing);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[failing.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i].var();
            if !self.seen[x.index()] {
                continue;
            }
            match self.vardata[x.index()].reason {
                None => {
                    debug_assert!(self.vardata[x.index()].level > 0);
                    self.conflict_core.push(self.trail[i]);
                }
                Some(r) => {
                    for idx in 0..self.arena.len(r) {
                        let q = self.arena.lit(r, idx);
                        if q.var() != x && self.vardata[q.var().index()].level > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[x.index()] = false;
        }
        self.seen[failing.var().index()] = false;
    }

    fn reduce_db(&mut self) {
        // Sort learnt clauses by activity, ascending; drop the weaker
        // half, sparing binary and locked clauses.
        let mut refs = std::mem::take(&mut self.learnt_refs);
        refs.sort_by(|&a, &b| {
            let ca = self.arena.activity(a);
            let cb = self.arena.activity(b);
            ca.partial_cmp(&cb).expect("activities are finite")
        });
        let half = refs.len() / 2;
        let mut kept = Vec::with_capacity(refs.len());
        for (i, &r) in refs.iter().enumerate() {
            let removable = self.arena.len(r) > 2 && !self.is_locked(r);
            if i < half && removable {
                self.detach_clause(r);
                self.free_clause(r);
            } else {
                kept.push(r);
            }
        }
        self.learnt_refs = kept;
        self.max_learnts *= 1.15;
        self.maybe_garbage_collect();
    }

    fn is_locked(&self, cref: CRef) -> bool {
        let l0 = self.arena.lit(cref, 0);
        self.vardata[l0.var().index()].reason == Some(cref)
            && lit_value(&self.assigns, l0) == Value::True
    }

    fn budget_exhausted(&self) -> bool {
        if let Some(mc) = self.limits.max_conflicts {
            if self.stats.conflicts >= mc {
                return true;
            }
        }
        if let Some(mp) = self.limits.max_propagations {
            if self.stats.propagations >= mp {
                return true;
            }
        }
        if let Some(ml) = self.limits.max_live_lits {
            if self.stats.live_lits >= ml {
                return true;
            }
        }
        if let Some(mb) = self.limits.max_live_bytes {
            if self.stats.live_bytes() >= mb {
                return true;
            }
        }
        if let Some(ref c) = self.limits.cancel {
            if c.load(std::sync::atomic::Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.limits.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    fn search(&mut self, restart_budget: u64, assumptions: &[Lit]) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.alloc_clause(&learnt, true);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                if self.stats.conflicts.is_multiple_of(64) && self.budget_exhausted() {
                    self.cancel_until(0);
                    return SearchOutcome::Unknown;
                }
            } else {
                if conflicts_here >= restart_budget {
                    self.cancel_until(0);
                    return SearchOutcome::Restart;
                }
                if self.budget_exhausted() {
                    self.cancel_until(0);
                    return SearchOutcome::Unknown;
                }
                if self.learnt_refs.len() as f64 >= self.max_learnts + (self.trail.len() as f64) {
                    self.reduce_db();
                }
                let dl = self.decision_level();
                if dl < assumptions.len() {
                    let p = assumptions[dl];
                    match lit_value(&self.assigns, p) {
                        Value::True => {
                            self.new_decision_level();
                        }
                        Value::False => {
                            self.analyze_final(p);
                            return SearchOutcome::Unsat;
                        }
                        Value::Unassigned => {
                            self.new_decision_level();
                            self.unchecked_enqueue(p, None);
                        }
                    }
                    continue;
                }
                self.stats.decisions += 1;
                match self.pick_branch_var() {
                    None => {
                        self.extract_model();
                        return SearchOutcome::Sat;
                    }
                    Some(v) => {
                        let phase = self.phase[v.index()];
                        self.new_decision_level();
                        self.unchecked_enqueue(v.lit(phase), None);
                    }
                }
            }
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Unknown,
    Restart,
}

#[inline]
fn lit_value(assigns: &[Value], l: Lit) -> Value {
    match assigns[l.var().index()] {
        Value::Unassigned => Value::Unassigned,
        Value::True => {
            if l.is_positive() {
                Value::True
            } else {
                Value::False
            }
        }
        Value::False => {
            if l.is_positive() {
                Value::False
            } else {
                Value::True
            }
        }
    }
}

/// The Luby restart sequence: `luby(y, i)` is `y^k` where `k` follows
/// the classic 1,1,2,1,1,2,4,… pattern.
fn luby(y: f64, mut x: u64) -> f64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc_logic::dimacs;

    fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<f64> = (0..15).map(|i| luby(2.0, i)).collect();
        let expect = [
            1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 8.0,
        ];
        assert_eq!(got, expect);
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0].var()), Some(false));
        assert_eq!(s.value(v[1].var()), Some(true));
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause([v[0]]));
        assert!(!s.add_clause([!v[0]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_and_duplicates_are_harmless() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause([v[0], !v[0]]));
        assert!(s.add_clause([v[1], v[1], v[1]]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[1].var()), Some(true));
    }

    /// All binary clauses of an XOR chain: forces real search, and —
    /// post-arena — exercises the binary fast path exclusively.
    #[test]
    fn xor_chain_sat() {
        let mut s = Solver::new();
        let n = 20;
        let v = vars(&mut s, n);
        // v[i] xor v[i+1] = true  ⇔  (v[i] ∨ v[i+1]) ∧ (¬v[i] ∨ ¬v[i+1])
        for i in 0..n - 1 {
            s.add_clause([v[i], v[i + 1]]);
            s.add_clause([!v[i], !v[i + 1]]);
        }
        s.add_clause([v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for (i, l) in v.iter().enumerate() {
            assert_eq!(s.value(l.var()), Some(i % 2 == 0), "position {i}");
        }
    }

    /// Pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes is
    /// UNSAT and requires clause learning to finish quickly.
    fn pigeonhole(pigeons: usize, holes: usize) -> (Solver, Vec<Vec<Lit>>) {
        let mut s = Solver::new();
        let mut p = Vec::new();
        for _ in 0..pigeons {
            p.push(vars(&mut s, holes));
        }
        // Every pigeon in some hole.
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        // No two pigeons share a hole.
        #[allow(clippy::needless_range_loop)]
        for h in 0..holes {
            for i in 0..pigeons {
                for j in i + 1..pigeons {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        (s, p)
    }

    #[test]
    fn pigeonhole_unsat() {
        let (mut s, _) = pigeonhole(5, 4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let (mut s, p) = pigeonhole(4, 4);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Verify the model is a valid assignment of pigeons to holes.
        for (i, row) in p.iter().enumerate() {
            let hole = row.iter().position(|&l| s.lit_value_model(l) == Some(true));
            assert!(hole.is_some(), "pigeon {i} unplaced");
        }
    }

    #[test]
    fn assumptions_flip_results() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        assert_eq!(s.solve_with(&[v[0], !v[2]]), SolveResult::Unsat);
        // Without the contradictory assumption pair it is satisfiable.
        assert_eq!(s.solve_with(&[v[0]]), SolveResult::Sat);
        assert_eq!(s.value(v[2].var()), Some(true));
        // The solver remains reusable after an assumption failure.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn failed_assumptions_form_a_core() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([!v[0], !v[1]]);
        // v[2], v[3] are irrelevant.
        let r = s.solve_with(&[v[2], v[0], v[3], v[1]]);
        assert_eq!(r, SolveResult::Unsat);
        let core = s.failed_assumptions().to_vec();
        assert!(core.contains(&v[0]) || core.contains(&v[1]));
        assert!(!core.contains(&v[2]));
        assert!(!core.contains(&v[3]));
        // The core itself must be sufficient for UNSAT.
        assert_eq!(s.solve_with(&core), SolveResult::Unsat);
    }

    #[test]
    fn assumption_false_at_level_zero() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([!v[0]]);
        assert_eq!(s.solve_with(&[v[0]]), SolveResult::Unsat);
        assert_eq!(s.failed_assumptions(), &[v[0]]);
        assert_eq!(s.solve_with(&[v[1]]), SolveResult::Sat);
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        // A hard pigeonhole instance with a 1-conflict budget.
        let (mut s, _) = pigeonhole(8, 7);
        s.set_limits(Limits {
            max_conflicts: Some(1),
            ..Limits::none()
        });
        assert_eq!(s.solve(), SolveResult::Unknown);
        // Removing the budget lets it finish.
        s.set_limits(Limits::none());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn deadline_in_past_yields_unknown() {
        let (mut s, _) = pigeonhole(9, 8);
        s.set_limits(Limits {
            deadline: Some(Instant::now()),
            ..Limits::none()
        });
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    #[test]
    fn simplify_removes_satisfied_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[2]]);
        s.add_clause([v[1], v[2]]);
        let before = s.stats().live_lits;
        s.add_clause([v[0]]); // unit: satisfies two clauses
        assert!(s.simplify());
        assert!(s.stats().live_lits < before, "memory must shrink");
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn activation_literal_group_retraction() {
        // The jSAT blocking-clause pattern: clauses guarded by an
        // activation literal, retracted by asserting its negation.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let act = s.new_var().positive();
        // Guarded constraint: act → (v0 ∧ v1 ∧ v2 each false)
        s.add_clause([!act, !v[0]]);
        s.add_clause([!act, !v[1]]);
        s.add_clause([!act, !v[2]]);
        s.add_clause([v[0], v[1], v[2]]);
        // Active: the guarded units contradict the ternary clause.
        assert_eq!(s.solve_with(&[act]), SolveResult::Unsat);
        // Inactive: satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
        // Retract permanently and reclaim memory.
        let lits_before = s.stats().live_lits;
        s.add_clause([!act]);
        assert!(s.simplify());
        assert!(s.stats().live_lits < lits_before);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    /// The acceptance check of the arena refactor: retracting guarded
    /// clauses must shrink the *resident* clause database, not just a
    /// live-size counter — i.e. the compactor physically frees what the
    /// seed solver only tombstoned.
    #[test]
    fn gc_physically_reclaims_retired_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 64);
        let act = s.new_var().positive();
        // A permanent base formula.
        for w in v.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        // Many wide guarded "blocking" clauses, jSAT style.
        for chunk in v.chunks(8) {
            let mut c = vec![!act];
            c.extend(chunk.iter().map(|&l| !l));
            s.add_clause(c);
        }
        let resident_full = s.clause_db_resident_bytes();
        let live_full = s.clause_db_live_bytes();
        assert_eq!(resident_full, live_full, "no garbage yet");
        // Retract the guard: every blocking clause dies.
        s.add_clause([!act]);
        assert!(s.simplify());
        let resident_after = s.clause_db_resident_bytes();
        assert!(
            resident_after < resident_full,
            "GC must shrink resident bytes ({resident_full} -> {resident_after})"
        );
        assert_eq!(
            s.clause_db_live_bytes(),
            resident_after,
            "post-GC arena is garbage-free"
        );
        assert!(s.stats().gc_runs > 0, "the compactor actually ran");
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    /// A solver that has just compacted must keep solving correctly
    /// (watchers, reasons, and clause lists were all rewritten).
    #[test]
    fn solving_continues_after_explicit_gc() {
        let (mut s, _) = pigeonhole(6, 5);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let (mut s, p) = pigeonhole(4, 4);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Force garbage + compaction, then keep using the solver.
        s.add_clause([p[0][0]]);
        assert!(s.simplify());
        s.garbage_collect();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.lit_value_model(p[0][0]), Some(true));
    }

    #[test]
    fn model_satisfies_formula() {
        // Deterministic random 3-SAT at ratio ~4, checked against the
        // model evaluator.
        let mut state = 0xdead_beefu64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..30 {
            let n = 12 + (round % 5);
            let m = n * 4;
            let mut s = Solver::new();
            let v = vars(&mut s, n);
            let mut cnf = Cnf::new();
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let var = (rnd() % n as u64) as usize;
                    let pos = rnd() % 2 == 0;
                    c.push(if pos { v[var] } else { !v[var] });
                }
                cnf.add_clause(c.iter().copied());
                s.add_clause(c);
            }
            if s.solve() == SolveResult::Sat {
                let assignment: Vec<bool> = (0..n)
                    .map(|i| s.value(Var::new(i as u32)).unwrap_or(false))
                    .collect();
                assert!(cnf.eval(&assignment), "model must satisfy the formula");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_on_small_random_instances() {
        let mut state = 0x0bad_cafeu64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..120 {
            let n = 4 + (rnd() % 5) as usize; // 4..8 vars
            let m = (rnd() % (3 * n as u64 + 1)) as usize + 1;
            let mut cnf = Cnf::new();
            for _ in 0..m {
                let len = 1 + (rnd() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..len {
                    let var = Var::new((rnd() % n as u64) as u32);
                    c.push(var.lit(rnd() % 2 == 0));
                }
                cnf.add_clause(c);
            }
            cnf.ensure_vars(n);
            let mut s = Solver::new();
            assert!(s.num_vars() == 0);
            let consistent = s.add_cnf(&cnf);
            let got = if consistent {
                s.solve()
            } else {
                SolveResult::Unsat
            };
            let expect = cnf.brute_force_satisfiable();
            assert_eq!(
                got.is_sat(),
                expect,
                "disagreement on {}",
                dimacs::to_string(&cnf)
            );
        }
    }

    #[test]
    fn incremental_clause_addition_after_solve() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([v[0], v[1], v[2], v[3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Progressive strengthening eventually makes it UNSAT.
        s.add_clause([!v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([!v[1]]);
        s.add_clause([!v[2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[3].var()), Some(true));
        s.add_clause([!v[3]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Once UNSAT without assumptions, always UNSAT.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn learnt_db_reduction_keeps_soundness() {
        // A formula large enough to trigger reductions with a small cap.
        let (mut s, _) = pigeonhole(7, 6);
        s.max_learnts = 10.0;
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().removed_clauses > 0, "reduction should trigger");
    }

    #[test]
    fn peak_memory_is_tracked() {
        let (mut s, _) = pigeonhole(6, 5);
        let initial = s.stats().live_lits;
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().peak_live_lits >= initial);
        // Exact bytes include headers, so they exceed 4 bytes/literal.
        assert!(s.stats().peak_bytes() > s.stats().peak_live_lits * 4);
        assert!(s.stats().peak_live_words >= s.stats().live_words);
    }

    #[test]
    fn memory_limit_yields_unknown() {
        let (mut s, _) = pigeonhole(8, 7);
        let base = s.stats().live_lits;
        s.set_limits(Limits {
            max_live_lits: Some(base + 8),
            ..Limits::none()
        });
        // Learning quickly exceeds the cap.
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    #[test]
    fn byte_limit_yields_unknown() {
        let (mut s, _) = pigeonhole(8, 7);
        let base = s.stats().live_bytes();
        s.set_limits(Limits {
            max_live_bytes: Some(base + 32),
            ..Limits::none()
        });
        // Learnt clauses quickly exceed the byte cap.
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_limits(Limits::none());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn cancel_flag_aborts_solve() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let (mut s, _) = pigeonhole(8, 7);
        let flag = Arc::new(AtomicBool::new(false));
        s.set_limits(Limits {
            cancel: Some(Arc::clone(&flag)),
            ..Limits::none()
        });
        // Un-fired flag: the solve completes normally.
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Fired flag: a fresh (hard) solve aborts with Unknown.
        let (mut s2, _) = pigeonhole(9, 8);
        flag.store(true, Ordering::Relaxed);
        s2.set_limits(Limits {
            cancel: Some(flag),
            ..Limits::none()
        });
        assert_eq!(s2.solve(), SolveResult::Unknown);
    }

    #[test]
    fn ensure_vars_and_add_cnf() {
        let mut s = Solver::new();
        let cnf = dimacs::parse("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert!(s.add_cnf(&cnf));
        assert_eq!(s.num_vars(), 3);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, _) = pigeonhole(5, 4);
        s.solve();
        let st = s.stats().clone();
        assert!(st.decisions > 0);
        assert!(st.conflicts > 0);
        assert!(st.propagations > 0);
    }
}
