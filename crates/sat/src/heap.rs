//! Indexed binary max-heap ordered by variable activity.
//!
//! The decision heuristic (VSIDS) needs a priority queue supporting
//! `increase-key` on arbitrary variables; this is the classic MiniSat
//! indexed heap. Activities live outside the heap (in the solver) and
//! are passed to every operation, which keeps the borrow checker happy
//! without `RefCell`s in the hot path.

use sebmc_logic::Var;

/// Max-heap over variables keyed by an external activity array.
#[derive(Debug, Clone, Default)]
pub struct ActivityHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        ActivityHeap::default()
    }

    /// Grows the position table to cover variable index `n - 1`.
    pub fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    /// Whether `v` is currently in the heap.
    pub fn contains(&self, v: Var) -> bool {
        self.pos.get(v.index()).is_some_and(|&p| p != ABSENT)
    }

    /// Number of queued variables.
    #[allow(dead_code)] // part of the heap API; exercised in tests
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    #[allow(dead_code)] // part of the heap API; exercised in tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts `v` (no-op if already present).
    pub fn insert(&mut self, v: Var, act: &[f64]) {
        self.grow(v.index() + 1);
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    /// Removes and returns the variable with maximal activity.
    pub fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    /// Restores the heap property after `v`'s activity increased.
    pub fn bumped(&mut self, v: Var, act: &[f64]) {
        if let Some(&p) = self.pos.get(v.index()) {
            if p != ABSENT {
                self.sift_up(p, act);
            }
        }
    }

    /// Rebuilds the heap after a global activity rescale (order is
    /// preserved by uniform scaling, so this is a no-op kept for
    /// symmetry and future heuristics).
    pub fn rescaled(&mut self) {}

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) >> 1;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i;
        self.pos[self.heap[j].index()] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        for i in 0..4 {
            h.insert(Var::new(i), &act);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_max(&act))
            .map(sebmc_logic::Var::index)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let act = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(Var::new(0), &act);
        h.insert(Var::new(0), &act);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn bumped_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for i in 0..3 {
            h.insert(Var::new(i), &act);
        }
        act[0] = 10.0;
        h.bumped(Var::new(0), &act);
        assert_eq!(h.pop_max(&act), Some(Var::new(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let act = vec![1.0; 4];
        let mut h = ActivityHeap::new();
        h.insert(Var::new(2), &act);
        assert!(h.contains(Var::new(2)));
        assert!(!h.contains(Var::new(1)));
        assert!(!h.contains(Var::new(99)));
        h.pop_max(&act);
        assert!(!h.contains(Var::new(2)));
        assert!(h.is_empty());
    }

    #[test]
    fn interleaved_operations_keep_invariant() {
        // Deterministic pseudo-random stress of insert/pop/bump.
        let n = 64usize;
        let mut act = vec![0.0f64; n];
        let mut h = ActivityHeap::new();
        let mut state = 0x1234_5678u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for step in 0..2000 {
            let v = Var::new((rnd() % n as u64) as u32);
            match step % 3 {
                0 => h.insert(v, &act),
                1 => {
                    act[v.index()] += (rnd() % 100) as f64;
                    h.bumped(v, &act);
                }
                _ => {
                    if let Some(top) = h.pop_max(&act) {
                        // Top must have max activity among queued vars.
                        for i in 0..n {
                            if h.contains(Var::new(i as u32)) {
                                assert!(act[top.index()] >= act[i]);
                            }
                        }
                    }
                }
            }
        }
    }
}
