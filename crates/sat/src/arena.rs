//! Flat arena storage for the clause database.
//!
//! Every clause lives in one shared `Vec<u32>` as a contiguous
//! `[header, (activity,) lit₀, lit₁, …]` record, and clauses are
//! referred to by their word offset ([`CRef`]). Compared to the
//! one-`Vec<Lit>`-per-clause layout this removes a pointer indirection
//! from the propagation loop, packs the whole database into one cache-
//! friendly allocation, and makes memory accounting *exact*: the arena
//! knows precisely how many words are live and how many are garbage.
//!
//! ## Record layout
//!
//! ```text
//! word 0          header: [ len : 29 | forwarded : 1 | freed : 1 | learnt : 1 ]
//! word 1          f32 activity bits        (learnt clauses only)
//! word 2          LBD ("glue"): distinct decision levels at learn time
//!                                          (learnt clauses only)
//! word 1(+2)..    literal codes, `len` of them
//! ```
//!
//! ## Garbage and compaction
//!
//! [`ClauseArena::free`] only flips the `freed` bit and books the
//! record's words as wasted — O(1), no memory moves. When the wasted
//! share grows past the solver's threshold, the solver builds a fresh
//! arena and calls [`ClauseArena::reloc`] on every root reference
//! (clause lists, watcher lists, reason pointers). The first relocation
//! of a record copies it and installs a forwarding pointer in the old
//! header; later relocations of the same record just follow the
//! pointer, so aliased references stay consistent. This is the
//! MiniSat `RegionAllocator::reloc` protocol, without `unsafe`.

use sebmc_logic::Lit;

/// A clause reference: word offset of the clause record in the arena.
///
/// `CRef`s are stable between collections and dense enough to tag (the
/// solver packs an is-binary bit into the top bit inside its watcher
/// lists; offsets stay below 2³¹ words = 8 GiB of clauses).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CRef(pub(crate) u32);

const LEARNT: u32 = 1;
const FREED: u32 = 1 << 1;
const FORWARDED: u32 = 1 << 2;
const LEN_SHIFT: u32 = 3;
/// Extra header words of a learnt record (activity + LBD).
const LEARNT_EXTRA: usize = 2;
/// Maximum literals per clause imposed by the 29-bit length field.
pub const MAX_CLAUSE_LEN: usize = (1 << (32 - LEN_SHIFT)) - 1;

/// The flat clause store. See the module docs for the record layout.
#[derive(Debug, Default, Clone)]
pub struct ClauseArena {
    data: Vec<u32>,
    wasted: usize,
}

impl ClauseArena {
    /// An empty arena.
    pub fn new() -> Self {
        ClauseArena::default()
    }

    /// An empty arena with `words` of pre-reserved capacity.
    pub fn with_capacity(words: usize) -> Self {
        ClauseArena {
            data: Vec::with_capacity(words),
            wasted: 0,
        }
    }

    /// Allocates a clause record; `lits` must have at least 2 entries.
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool) -> CRef {
        debug_assert!(lits.len() >= 2);
        assert!(lits.len() <= MAX_CLAUSE_LEN, "clause too long for arena");
        // Offsets must stay below 2³¹ so the solver's watcher lists can
        // tag bit 31: past this, a long-clause CRef would masquerade as
        // a binary watcher and corrupt propagation silently.
        assert!(
            self.data.len() < (1 << 31) as usize - lits.len() - 1 - LEARNT_EXTRA,
            "clause arena exceeds the 2^31-word CRef limit"
        );
        let cref = CRef(self.data.len() as u32);
        let header = ((lits.len() as u32) << LEN_SHIFT) | u32::from(learnt);
        self.data.push(header);
        if learnt {
            self.data.push(0f32.to_bits()); // activity
            self.data.push(0); // LBD, set by the solver right after learning
        }
        self.data.extend(lits.iter().map(|l| l.code() as u32));
        cref
    }

    #[inline]
    fn header(&self, c: CRef) -> u32 {
        self.data[c.0 as usize]
    }

    /// Number of literals in the clause.
    #[inline]
    pub fn len(&self, c: CRef) -> usize {
        (self.header(c) >> LEN_SHIFT) as usize
    }

    /// Whether the arena holds no clause records at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether the clause was allocated as a learnt clause.
    #[inline]
    pub fn is_learnt(&self, c: CRef) -> bool {
        self.header(c) & LEARNT != 0
    }

    /// Whether the clause has been [`free`](ClauseArena::free)d.
    #[inline]
    pub fn is_freed(&self, c: CRef) -> bool {
        self.header(c) & FREED != 0
    }

    /// Word index of the clause's first literal.
    #[inline]
    fn lit_base(&self, c: CRef) -> usize {
        c.0 as usize + 1 + (self.header(c) & LEARNT) as usize * LEARNT_EXTRA
    }

    /// The `i`-th literal of the clause.
    #[inline]
    pub fn lit(&self, c: CRef, i: usize) -> Lit {
        debug_assert!(i < self.len(c));
        Lit::from_code(self.data[self.lit_base(c) + i] as usize)
    }

    /// All literals of the clause, as an iterator (no allocation).
    #[inline]
    pub fn lits(&self, c: CRef) -> impl Iterator<Item = Lit> + '_ {
        let base = self.lit_base(c);
        self.data[base..base + self.len(c)]
            .iter()
            .map(|&w| Lit::from_code(w as usize))
    }

    /// The clause's literals as one mutable slice of raw literal
    /// codes — the propagation hot path decodes the record header once
    /// and then swaps/reads through this slice instead of re-deriving
    /// the literal base per access.
    #[inline]
    pub(crate) fn lits_raw_mut(&mut self, c: CRef) -> &mut [u32] {
        let base = self.lit_base(c);
        let len = self.len(c);
        &mut self.data[base..base + len]
    }

    /// Overwrites the `i`-th literal.
    #[inline]
    pub fn set_lit(&mut self, c: CRef, i: usize, l: Lit) {
        debug_assert!(i < self.len(c));
        let base = self.lit_base(c);
        self.data[base + i] = l.code() as u32;
    }

    /// Swaps two literals of the clause.
    #[inline]
    pub fn swap_lits(&mut self, c: CRef, i: usize, j: usize) {
        let base = self.lit_base(c);
        self.data.swap(base + i, base + j);
    }

    /// Clause activity (learnt clauses only; 0 for problem clauses).
    #[inline]
    pub fn activity(&self, c: CRef) -> f32 {
        if self.is_learnt(c) {
            f32::from_bits(self.data[c.0 as usize + 1])
        } else {
            0.0
        }
    }

    /// Sets the clause activity (must be learnt).
    #[inline]
    pub fn set_activity(&mut self, c: CRef, act: f32) {
        debug_assert!(self.is_learnt(c));
        self.data[c.0 as usize + 1] = act.to_bits();
    }

    /// LBD ("glue") of a learnt clause: the number of distinct decision
    /// levels among its literals when it was learnt (or last updated by
    /// the solver). 0 for problem clauses.
    #[inline]
    pub fn lbd(&self, c: CRef) -> u32 {
        if self.is_learnt(c) {
            self.data[c.0 as usize + 2]
        } else {
            0
        }
    }

    /// Sets the LBD of a learnt clause.
    #[inline]
    pub fn set_lbd(&mut self, c: CRef, lbd: u32) {
        debug_assert!(self.is_learnt(c));
        self.data[c.0 as usize + 2] = lbd;
    }

    /// Total words a record with `len` literals occupies.
    fn record_words(len: usize, learnt: bool) -> usize {
        1 + if learnt { LEARNT_EXTRA } else { 0 } + len
    }

    /// Words currently occupied by this clause's record.
    #[inline]
    pub fn clause_words(&self, c: CRef) -> usize {
        Self::record_words(self.len(c), self.is_learnt(c))
    }

    /// Shrinks the clause in place to its first `new_len` literals,
    /// booking the tail words as wasted. Used by `simplify()` when
    /// stripping level-0-falsified literals.
    pub fn shrink(&mut self, c: CRef, new_len: usize) {
        let old_len = self.len(c);
        debug_assert!(0 < new_len && new_len <= old_len);
        let flags = self.header(c) & (LEARNT | FREED | FORWARDED);
        self.data[c.0 as usize] = ((new_len as u32) << LEN_SHIFT) | flags;
        self.wasted += old_len - new_len;
    }

    /// Marks the clause as garbage. O(1): the words are reclaimed
    /// physically only by the next [`reloc`](ClauseArena::reloc)-based
    /// collection. The caller must ensure no watcher or reason still
    /// refers to the clause by the time that collection runs.
    pub fn free(&mut self, c: CRef) {
        debug_assert!(!self.is_freed(c));
        self.wasted += self.clause_words(c);
        self.data[c.0 as usize] |= FREED;
    }

    /// Moves the clause into `to` (or follows its forwarding pointer if
    /// it already moved) and returns its new reference.
    pub fn reloc(&mut self, c: CRef, to: &mut ClauseArena) -> CRef {
        let header = self.header(c);
        if header & FORWARDED != 0 {
            return CRef(self.data[c.0 as usize + 1]);
        }
        debug_assert!(header & FREED == 0, "relocating a freed clause");
        let len = (header >> LEN_SHIFT) as usize;
        let learnt = header & LEARNT != 0;
        let new = CRef(to.data.len() as u32);
        let start = c.0 as usize;
        to.data
            .extend_from_slice(&self.data[start..start + Self::record_words(len, learnt)]);
        self.data[start] = header | FORWARDED;
        self.data[start + 1] = new.0;
        new
    }

    /// Resident size of the arena in words (live + garbage).
    pub fn resident_words(&self) -> usize {
        self.data.len()
    }

    /// Words occupied by live (non-freed, non-stripped) records.
    pub fn live_words(&self) -> usize {
        self.data.len() - self.wasted
    }

    /// Words booked as garbage (freed records + stripped literals).
    pub fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// Resident size in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
    }

    /// Live bytes (what a perfectly compacted arena would occupy).
    pub fn live_bytes(&self) -> usize {
        self.live_words() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(codes: &[usize]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[0, 3, 5]), false);
        let c2 = a.alloc(&lits(&[2, 7]), true);
        assert_eq!(a.len(c1), 3);
        assert_eq!(a.len(c2), 2);
        assert!(!a.is_learnt(c1));
        assert!(a.is_learnt(c2));
        assert_eq!(a.lit(c1, 1), Lit::from_code(3));
        assert_eq!(a.lits(c2).collect::<Vec<_>>(), lits(&[2, 7]));
        // 1+3 words for c1, 1+2+2 for c2 (activity + LBD words).
        assert_eq!(a.resident_words(), 9);
        assert_eq!(a.live_words(), 9);
    }

    #[test]
    fn activity_round_trips_only_for_learnt() {
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[0, 2]), true);
        assert_eq!(a.activity(c), 0.0);
        a.set_activity(c, 3.25);
        assert_eq!(a.activity(c), 3.25);
        let p = a.alloc(&lits(&[4, 6]), false);
        assert_eq!(a.activity(p), 0.0);
    }

    #[test]
    fn lbd_round_trips_only_for_learnt() {
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[0, 2, 4]), true);
        assert_eq!(a.lbd(c), 0);
        a.set_lbd(c, 3);
        assert_eq!(a.lbd(c), 3);
        // The LBD word does not clobber the activity word or literals.
        a.set_activity(c, 1.5);
        assert_eq!(a.lbd(c), 3);
        assert_eq!(a.activity(c), 1.5);
        assert_eq!(a.lits(c).collect::<Vec<_>>(), lits(&[0, 2, 4]));
        let p = a.alloc(&lits(&[4, 6]), false);
        assert_eq!(a.lbd(p), 0);
    }

    #[test]
    fn swap_and_set_lits() {
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[0, 2, 4]), false);
        a.swap_lits(c, 0, 2);
        assert_eq!(a.lits(c).collect::<Vec<_>>(), lits(&[4, 2, 0]));
        a.set_lit(c, 1, Lit::from_code(9));
        assert_eq!(a.lit(c, 1), Lit::from_code(9));
    }

    #[test]
    fn free_and_shrink_book_waste() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[0, 2, 4, 6]), false);
        let c2 = a.alloc(&lits(&[1, 3]), false);
        assert_eq!(a.wasted_words(), 0);
        a.shrink(c1, 2);
        assert_eq!(a.len(c1), 2);
        assert_eq!(a.wasted_words(), 2);
        a.free(c2);
        assert!(a.is_freed(c2));
        assert_eq!(a.wasted_words(), 2 + 3);
        assert_eq!(a.live_words(), a.resident_words() - 5);
        // A freed learnt record books its extra header words too.
        let c3 = a.alloc(&lits(&[5, 7]), true);
        let before = a.wasted_words();
        a.free(c3);
        assert_eq!(a.wasted_words(), before + 1 + 2 + 2);
    }

    #[test]
    fn reloc_compacts_and_forwards() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[0, 2, 4]), false);
        let c2 = a.alloc(&lits(&[1, 3]), true);
        let c3 = a.alloc(&lits(&[5, 7]), false);
        a.free(c1);
        a.set_activity(c2, 1.5);
        a.set_lbd(c2, 2);

        let mut to = ClauseArena::with_capacity(a.live_words());
        let n2 = a.reloc(c2, &mut to);
        let n2_again = a.reloc(c2, &mut to);
        assert_eq!(n2, n2_again, "forwarding pointer must be followed");
        let n3 = a.reloc(c3, &mut to);

        assert_eq!(to.lits(n2).collect::<Vec<_>>(), lits(&[1, 3]));
        assert_eq!(to.activity(n2), 1.5);
        assert_eq!(to.lbd(n2), 2, "the LBD word survives relocation");
        assert!(to.is_learnt(n2));
        assert_eq!(to.lits(n3).collect::<Vec<_>>(), lits(&[5, 7]));
        // c1's 4 words are gone: only c2 (5) + c3 (3) words remain.
        assert_eq!(to.resident_words(), 8);
        assert_eq!(to.wasted_words(), 0);
    }

    #[test]
    fn byte_accounting_includes_headers() {
        let mut a = ClauseArena::new();
        a.alloc(&lits(&[0, 2]), false); // 3 words
        a.alloc(&lits(&[1, 3]), true); // 5 words (header + activity + LBD)
        assert_eq!(a.resident_bytes(), 8 * 4);
        assert_eq!(a.live_bytes(), 8 * 4);
    }
}
