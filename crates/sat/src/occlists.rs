//! Flat literal-indexed watch lists (MiniSat `OccLists`).
//!
//! The seed solver (and PR 1) kept `watches: Vec<Vec<Watcher>>` — one
//! heap allocation per literal, scattered across the allocator, with a
//! pointer chase at the top of every propagation step. This module
//! replaces that with a single flat `Vec<Watcher>` plus one
//! `(start, len, cap)` range per literal code:
//!
//! * every watch list is a contiguous segment of one allocation, so a
//!   BCP cascade that touches thousands of lists walks (mostly)
//!   contiguous memory;
//! * watch storage becomes *measurable* — [`OccLists::resident_bytes`]
//!   is exact, like the clause arena's accounting — and *compactable*:
//!   segments abandoned by growth are reclaimed by [`OccLists::compact`]
//!   the same way the arena reclaims freed clauses;
//! * deletion is **lazy**: detaching a clause marks its two watch lists
//!   dirty ([`OccLists::smudge`]) instead of running the old
//!   `detach_clause` O(len) `position()` scan, and stale watchers are
//!   filtered out in bulk by [`OccLists::clean`] the next time the list
//!   is looked up (or by [`OccLists::clean_all`] before compaction /
//!   arena GC).
//!
//! ## Growth and waste
//!
//! [`OccLists::push`] appends into the segment's spare capacity. A full
//! segment that sits at the tail of the flat vector grows in place;
//! anywhere else it relocates to the tail with doubled capacity,
//! abandoning its old slots. Abandoned slots are booked in `wasted`;
//! when they exceed [`COMPACT_WASTE_FRACTION`] of the storage at a safe
//! point, `compact` rewrites every live segment back-to-back in literal
//! order (also restoring scan locality). The solver calls
//! [`OccLists::maybe_compact`] from its GC safe points.
//!
//! ## The dirty-bit discipline
//!
//! A list may contain watchers of freed clauses only while its dirty
//! bit is set. Whoever frees a clause without rebuilding the lists
//! wholesale must `smudge` both watch lists first (while the clause
//! header is still readable); `clean` drops exactly the watchers whose
//! clause the predicate declares dead. Propagation calls
//! [`OccLists::lookup_clean`] so it never walks stale entries, and
//! `clean_all` runs before arena compaction so no forwarding pointer is
//! ever requested for a freed record.

use sebmc_logic::Lit;

use crate::arena::CRef;

/// One entry of a watch list.
///
/// `cref_tag` is the clause's [`CRef`] with [`BIN_TAG`] set when the
/// clause is binary. For binary clauses `blocker` *is* the other
/// literal, so propagation decides keep/enqueue/conflict without ever
/// dereferencing the arena; for longer clauses `blocker` is a cached
/// literal whose truth lets the common already-satisfied case skip the
/// arena too.
#[derive(Copy, Clone, Debug)]
pub(crate) struct Watcher {
    cref_tag: u32,
    pub(crate) blocker: Lit,
}

const BIN_TAG: u32 = 1 << 31;

impl Watcher {
    #[inline]
    pub(crate) fn long(cref: CRef, blocker: Lit) -> Self {
        Watcher {
            cref_tag: cref.0,
            blocker,
        }
    }

    #[inline]
    pub(crate) fn binary(cref: CRef, other: Lit) -> Self {
        Watcher {
            cref_tag: cref.0 | BIN_TAG,
            blocker: other,
        }
    }

    #[inline]
    pub(crate) fn is_binary(self) -> bool {
        self.cref_tag & BIN_TAG != 0
    }

    #[inline]
    pub(crate) fn cref(self) -> CRef {
        CRef(self.cref_tag & !BIN_TAG)
    }

    /// Filler for unused segment capacity; never read as a live entry.
    #[inline]
    fn dummy() -> Watcher {
        Watcher {
            cref_tag: 0,
            blocker: Lit::from_code(0),
        }
    }
}

/// Per-literal segment descriptor: `data[start..start + len]` is the
/// live list, `cap` slots are owned. The dirty bit lives in the top bit
/// of `cap` so the descriptor stays three words.
#[derive(Copy, Clone, Debug, Default)]
struct Range {
    start: u32,
    len: u32,
    cap_dirty: u32,
}

const DIRTY: u32 = 1 << 31;

impl Range {
    #[inline]
    fn cap(self) -> u32 {
        self.cap_dirty & !DIRTY
    }

    #[inline]
    fn is_dirty(self) -> bool {
        self.cap_dirty & DIRTY != 0
    }
}

/// Fraction of the flat storage that may be abandoned segments before
/// [`OccLists::maybe_compact`] rewrites it.
const COMPACT_WASTE_FRACTION: f64 = 0.25;
/// Initial capacity a list receives when it first relocates to the tail.
const MIN_SEGMENT_CAP: u32 = 4;

/// Flat literal-indexed watch storage. See the module docs.
#[derive(Debug, Default)]
pub(crate) struct OccLists {
    /// All segments, back to back (plus abandoned holes awaiting
    /// [`OccLists::compact`]).
    data: Vec<Watcher>,
    /// One segment descriptor per literal code.
    ranges: Vec<Range>,
    /// Literal codes whose dirty bit is set (each at most once).
    dirties: Vec<u32>,
    /// `data` slots belonging to no segment (abandoned by relocation).
    wasted: usize,
}

impl OccLists {
    pub(crate) fn new() -> Self {
        OccLists::default()
    }

    /// Registers one more literal code (two calls per fresh variable).
    pub(crate) fn push_lit(&mut self) {
        self.ranges.push(Range::default());
    }

    /// The live extent of `code`'s list as `(start, len)` indices into
    /// the flat storage. The caller must have cleaned the list first if
    /// it intends to dereference every entry's clause.
    #[inline]
    pub(crate) fn range(&self, code: usize) -> (usize, usize) {
        let r = self.ranges[code];
        (r.start as usize, r.len as usize)
    }

    /// The live segment `data[start..start + len]` as one mutable
    /// slice — propagation walks this directly (a fixed-length slice
    /// lets the optimiser keep the base pointer in a register, which
    /// indexed access through the growable flat vector cannot). While
    /// the borrow lives, no other list may be pushed to; propagation
    /// therefore collects moved watches in a scratch buffer and
    /// flushes them after the walk.
    #[inline]
    pub(crate) fn segment_mut(&mut self, start: usize, len: usize) -> &mut [Watcher] {
        &mut self.data[start..start + len]
    }

    /// Shrinks `code`'s list to its first `new_len` entries (the
    /// in-place compaction at the end of a propagation walk). The freed
    /// slots stay owned by the segment as spare capacity.
    #[inline]
    pub(crate) fn truncate(&mut self, code: usize, new_len: usize) {
        let r = &mut self.ranges[code];
        debug_assert!(new_len as u32 <= r.len);
        r.len = new_len as u32;
    }

    /// Appends a watcher to `code`'s list.
    ///
    /// Amortized O(1): the common case writes into spare capacity, a
    /// full tail segment grows in place, and a full interior segment
    /// relocates to the tail with doubled capacity (booking its old
    /// slots as waste). Pushing to one list never moves another, so
    /// propagation may hold `(start, len)` indices for the list it is
    /// walking while pushing moved watches elsewhere.
    pub(crate) fn push(&mut self, code: usize, w: Watcher) {
        let r = self.ranges[code];
        let (start, len, cap) = (r.start as usize, r.len as usize, r.cap() as usize);
        if len < cap {
            self.data[start + len] = w;
            self.ranges[code].len += 1;
            return;
        }
        if start + cap == self.data.len() {
            // Tail segment: grow in place.
            self.data.push(w);
            self.ranges[code].len += 1;
            self.ranges[code].cap_dirty += 1;
            return;
        }
        // Interior segment: relocate to the tail, doubling capacity.
        let new_start = self.data.len();
        let new_cap = ((cap as u32) * 2).max(MIN_SEGMENT_CAP);
        self.data.extend_from_within(start..start + len);
        self.data.push(w);
        self.data
            .resize(new_start + new_cap as usize, Watcher::dummy());
        self.wasted += cap;
        let r = &mut self.ranges[code];
        r.start = new_start as u32;
        r.len = len as u32 + 1;
        r.cap_dirty = new_cap | (r.cap_dirty & DIRTY);
    }

    /// Marks `code`'s list dirty: it may now contain watchers of freed
    /// clauses until the next [`OccLists::clean`]. Idempotent.
    pub(crate) fn smudge(&mut self, code: usize) {
        let r = &mut self.ranges[code];
        if r.cap_dirty & DIRTY == 0 {
            r.cap_dirty |= DIRTY;
            self.dirties.push(code as u32);
        }
    }

    /// Whether `code`'s list is dirty (it may then hold watchers of
    /// freed clauses until the next clean).
    pub(crate) fn is_dirty(&self, code: usize) -> bool {
        self.ranges[code].is_dirty()
    }

    /// The live watchers of `code`'s list, immutably — the read-only
    /// walk the debug-mode invariant audit uses. Entries of a *dirty*
    /// list may reference freed clauses; the caller must check
    /// [`OccLists::is_dirty`] before dereferencing.
    pub(crate) fn watchers(&self, code: usize) -> &[Watcher] {
        let r = self.ranges[code];
        &self.data[r.start as usize..(r.start + r.len) as usize]
    }

    /// Number of literal codes registered.
    pub(crate) fn num_codes(&self) -> usize {
        self.ranges.len()
    }

    /// Drops every watcher of `code`'s list whose clause `is_dead` and
    /// clears the dirty bit. The corresponding entry in `dirties` is
    /// left behind and skipped by [`OccLists::clean_all`].
    pub(crate) fn clean(&mut self, code: usize, mut is_dead: impl FnMut(Watcher) -> bool) {
        let r = self.ranges[code];
        let start = r.start as usize;
        let mut j = 0;
        for i in 0..r.len as usize {
            let w = self.data[start + i];
            if !is_dead(w) {
                self.data[start + j] = w;
                j += 1;
            }
        }
        let r = &mut self.ranges[code];
        r.len = j as u32;
        r.cap_dirty &= !DIRTY;
    }

    /// Returns `(start, len)` of `code`'s list, cleaning it first if it
    /// is dirty — the entry point propagation uses, so a walked list
    /// never contains a freed clause.
    #[inline]
    pub(crate) fn lookup_clean(
        &mut self,
        code: usize,
        is_dead: impl FnMut(Watcher) -> bool,
    ) -> (usize, usize) {
        if self.ranges[code].is_dirty() {
            self.clean(code, is_dead);
        }
        self.range(code)
    }

    /// Cleans every dirty list. Must run before arena compaction (a
    /// freed clause has no forwarding pointer to follow).
    pub(crate) fn clean_all(&mut self, mut is_dead: impl FnMut(Watcher) -> bool) {
        let dirties = std::mem::take(&mut self.dirties);
        for code in dirties {
            // A lookup may already have cleaned this list.
            if self.ranges[code as usize].is_dirty() {
                self.clean(code as usize, &mut is_dead);
            }
        }
    }

    /// Empties every list (the `simplify` wholesale-rebuild path),
    /// keeping the flat allocation for reuse.
    pub(crate) fn clear_all(&mut self) {
        self.data.clear();
        self.dirties.clear();
        self.wasted = 0;
        for r in &mut self.ranges {
            *r = Range::default();
        }
    }

    /// Visits every live watcher mutably (the arena-GC rewrite pass).
    /// Lists must be clean: call [`OccLists::clean_all`] first.
    pub(crate) fn for_each_watcher_mut(&mut self, mut f: impl FnMut(&mut Watcher)) {
        debug_assert!(self.dirties.is_empty() || !self.ranges.iter().any(|r| r.is_dirty()));
        for code in 0..self.ranges.len() {
            let r = self.ranges[code];
            let start = r.start as usize;
            for w in &mut self.data[start..start + r.len as usize] {
                f(w);
            }
        }
    }

    /// Rewrites the flat storage with every live segment back to back
    /// in literal order: reclaims abandoned slots *and* spare capacity,
    /// and restores scan locality. Lists must be clean.
    pub(crate) fn compact(&mut self) {
        let live: usize = self.ranges.iter().map(|r| r.len as usize).sum();
        let mut fresh: Vec<Watcher> = Vec::with_capacity(live);
        for r in &mut self.ranges {
            let start = r.start as usize;
            let len = r.len as usize;
            r.start = fresh.len() as u32;
            r.cap_dirty = (r.len) | (r.cap_dirty & DIRTY);
            fresh.extend_from_slice(&self.data[start..start + len]);
        }
        self.data = fresh;
        self.wasted = 0;
    }

    /// Runs [`OccLists::compact`] when abandoned slots exceed
    /// [`COMPACT_WASTE_FRACTION`] of the storage. Called from the
    /// solver's GC safe points (after `clean_all`).
    pub(crate) fn maybe_compact(&mut self) {
        if !self.data.is_empty()
            && self.wasted as f64 >= self.data.len() as f64 * COMPACT_WASTE_FRACTION
        {
            self.compact();
        }
    }

    /// Exact bytes resident in the watch structures: the flat watcher
    /// storage (live + spare + abandoned slots) plus the per-literal
    /// range table. The watch-side analogue of the arena's
    /// `resident_bytes`.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Watcher>()
            + self.ranges.len() * std::mem::size_of::<Range>()
            + self.dirties.len() * std::mem::size_of::<u32>()
    }

    /// `data` slots abandoned by segment relocation (reclaimed by the
    /// next [`OccLists::compact`]).
    #[cfg(test)]
    pub(crate) fn wasted_slots(&self) -> usize {
        self.wasted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(c: u32) -> Watcher {
        Watcher::long(CRef(c), Lit::from_code(0))
    }

    fn list(o: &OccLists, code: usize) -> Vec<u32> {
        let (start, len) = o.range(code);
        o.data[start..start + len]
            .iter()
            .map(|w| w.cref().0)
            .collect()
    }

    fn fresh(lits: usize) -> OccLists {
        let mut o = OccLists::new();
        for _ in 0..lits {
            o.push_lit();
        }
        o
    }

    #[test]
    fn push_and_read_back_preserves_order() {
        let mut o = fresh(4);
        for c in 0..6 {
            o.push(1, w(c));
        }
        o.push(3, w(100));
        assert_eq!(list(&o, 1), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(list(&o, 3), vec![100]);
        assert_eq!(list(&o, 0), Vec::<u32>::new());
    }

    #[test]
    fn interleaved_pushes_relocate_but_stay_correct() {
        let mut o = fresh(6);
        // Alternate pushes so every list keeps outgrowing its segment.
        for round in 0..50u32 {
            for code in 0..6 {
                o.push(code, w(round * 10 + code as u32));
            }
        }
        for code in 0..6 {
            let got = list(&o, code);
            let expect: Vec<u32> = (0..50).map(|r| r * 10 + code as u32).collect();
            assert_eq!(got, expect, "list {code}");
        }
        assert!(o.wasted_slots() > 0, "interior growth must book waste");
    }

    #[test]
    fn truncate_keeps_capacity() {
        let mut o = fresh(2);
        for c in 0..8 {
            o.push(0, w(c));
        }
        let bytes_before = o.resident_bytes();
        o.truncate(0, 3);
        assert_eq!(list(&o, 0), vec![0, 1, 2]);
        // The spare slots stay owned: pushing again reuses them.
        o.push(0, w(9));
        assert_eq!(list(&o, 0), vec![0, 1, 2, 9]);
        assert_eq!(o.resident_bytes(), bytes_before);
    }

    #[test]
    fn smudge_clean_filters_dead_watchers() {
        let mut o = fresh(2);
        for c in 0..5 {
            o.push(0, w(c));
        }
        assert!(!o.is_dirty(0));
        o.smudge(0);
        o.smudge(0); // idempotent
        assert!(o.is_dirty(0));
        o.clean(0, |x| x.cref().0 % 2 == 0);
        assert!(!o.is_dirty(0));
        assert_eq!(list(&o, 0), vec![1, 3]);
    }

    #[test]
    fn lookup_clean_only_cleans_dirty_lists() {
        let mut o = fresh(2);
        o.push(0, w(1));
        o.push(0, w(2));
        // Not dirty: the predicate must not run.
        let (_, len) = o.lookup_clean(0, |_| panic!("clean of a non-dirty list"));
        assert_eq!(len, 2);
        o.smudge(0);
        let (_, len) = o.lookup_clean(0, |x| x.cref().0 == 1);
        assert_eq!(len, 1);
        assert_eq!(list(&o, 0), vec![2]);
    }

    #[test]
    fn clean_all_visits_every_dirty_list_once() {
        let mut o = fresh(4);
        for code in 0..4 {
            o.push(code, w(code as u32));
            o.push(code, w(10 + code as u32));
        }
        o.smudge(0);
        o.smudge(2);
        o.clean_all(|x| x.cref().0 < 10);
        assert_eq!(list(&o, 0), vec![10]);
        assert_eq!(list(&o, 1), vec![1, 11], "clean list untouched");
        assert_eq!(list(&o, 2), vec![12]);
        assert!(!o.is_dirty(0) && !o.is_dirty(2));
    }

    #[test]
    fn compact_reclaims_waste_and_preserves_lists() {
        let mut o = fresh(8);
        for round in 0..20u32 {
            for code in 0..8 {
                o.push(code, w(round * 8 + code as u32));
            }
        }
        let before: Vec<Vec<u32>> = (0..8).map(|c| list(&o, c)).collect();
        assert!(o.wasted_slots() > 0);
        let bytes_loose = o.resident_bytes();
        o.compact();
        assert_eq!(o.wasted_slots(), 0);
        assert!(o.resident_bytes() < bytes_loose, "compaction shrinks");
        let after: Vec<Vec<u32>> = (0..8).map(|c| list(&o, c)).collect();
        assert_eq!(before, after);
        // Lists remain usable after compaction.
        o.push(5, w(999));
        assert_eq!(*list(&o, 5).last().unwrap(), 999);
    }

    #[test]
    fn clear_all_resets_everything() {
        let mut o = fresh(3);
        o.push(0, w(1));
        o.push(2, w(2));
        o.smudge(2);
        o.clear_all();
        for code in 0..3 {
            assert_eq!(list(&o, code), Vec::<u32>::new());
            assert!(!o.is_dirty(code));
        }
        o.push(1, w(7));
        assert_eq!(list(&o, 1), vec![7]);
    }

    #[test]
    fn binary_tag_round_trips() {
        let b = Watcher::binary(CRef(5), Lit::from_code(3));
        assert!(b.is_binary());
        assert_eq!(b.cref(), CRef(5));
        assert_eq!(b.blocker, Lit::from_code(3));
        let l = Watcher::long(CRef(5), Lit::from_code(3));
        assert!(!l.is_binary());
        assert_eq!(l.cref(), CRef(5));
    }

    #[test]
    fn resident_bytes_track_growth() {
        let mut o = fresh(2);
        let empty = o.resident_bytes();
        for c in 0..16 {
            o.push(0, w(c));
        }
        assert!(o.resident_bytes() > empty);
    }
}
