//! An incremental CDCL SAT solver, built from scratch for the
//! reproduction of *"Space-Efficient Bounded Model Checking"*
//! (DATE 2005).
//!
//! The paper's experiments need three things from a SAT solver:
//!
//! 1. a competitive DPLL/CDCL core to solve the classical unrolled BMC
//!    formulae (formulation (1) in the paper) — see [`Solver`];
//! 2. an *incremental* interface with assumptions, which the paper's
//!    special-purpose jSAT procedure drives frame by frame;
//! 3. accurate accounting of live formula memory, plus hard resource
//!    budgets ([`Limits`]), so the 300 s / 1 GB experiment protocol can
//!    be reproduced deterministically.
//!
//! # Example
//!
//! ```
//! use sebmc_sat::{SolveResult, Solver};
//!
//! let mut s = Solver::new();
//! let x = s.new_var();
//! let y = s.new_var();
//! s.add_clause([x.positive(), y.positive()]);
//! s.add_clause([x.negative(), y.positive()]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value(y), Some(true));
//!
//! // Incremental: the same solver, now with an extra constraint.
//! s.add_clause([y.negative()]);
//! assert_eq!(s.solve(), SolveResult::Unsat);
//! ```

#![forbid(unsafe_code)]

pub mod arena;
mod heap;
mod occlists;
mod solver;

pub use arena::{CRef, ClauseArena};
pub use solver::{Limits, SolveResult, Solver, Stats};
