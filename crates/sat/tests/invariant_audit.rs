//! Seeded sweep for the solver's debug-build self-audit (ISSUE 8).
//!
//! [`Solver::check_invariants`] already fires from the `simplify` and
//! garbage-collection safe points of every debug-build test run; this
//! sweep additionally invokes it *between* operations — right after
//! clause addition, mid-incremental solves under assumptions, after an
//! UNSAT verdict kills the solver — so the cross-structure invariants
//! (clause-list/arena/stats agreement, two-watcher discipline, trail
//! and reason consistency, heap completeness) are checked in states
//! the safe points never see.
//!
//! The workspace is dependency-free, so instead of proptest the sweep
//! runs over a deterministic [`SplitMix64`] stream — reproducible from
//! the case number on failure.

use sebmc_logic::rng::SplitMix64;
use sebmc_logic::{Lit, Var};
use sebmc_sat::{SolveResult, Solver};

fn random_clause(rng: &mut SplitMix64, n: usize) -> Vec<Lit> {
    let len = rng.range_inclusive(1, 4);
    (0..len)
        .map(|_| Var::new(rng.below(n) as u32).lit(rng.coin()))
        .collect()
}

#[test]
fn audit_passes_between_every_operation_of_a_random_sweep() {
    for case in 0..40u64 {
        let mut rng = SplitMix64::new(0x5eed_0008 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let n = rng.range_inclusive(6, 12);
        let mut s = Solver::new();
        s.ensure_vars(n);
        s.check_invariants();
        // An aggressive learnt cap keeps reduce_db (lazy watcher
        // deletion, locked/glue protection) constantly in play.
        s.set_max_learnts(1.0);
        for _round in 0..5 {
            for _ in 0..rng.range_inclusive(2, 8) {
                s.add_clause(random_clause(&mut rng, n));
                s.check_invariants();
            }
            if !s.is_ok() {
                break;
            }
            let _ = match rng.below(3) {
                0 => s.solve(),
                1 => {
                    let mut assumptions = Vec::new();
                    for _ in 0..rng.range_inclusive(1, 3) {
                        assumptions.push(Var::new(rng.below(n) as u32).lit(rng.coin()));
                    }
                    s.solve_with(&assumptions)
                }
                _ => {
                    s.simplify();
                    SolveResult::Unknown
                }
            };
            s.check_invariants();
            if rng.coin() {
                s.garbage_collect();
                s.check_invariants();
            }
        }
        // The audit must also hold for a dead (UNSAT-at-level-0)
        // solver: the clause lists still own exactly the live clauses.
        s.check_invariants();
    }
}

#[test]
fn audit_passes_on_a_fresh_and_on_a_trivially_unsat_solver() {
    let mut s = Solver::new();
    s.check_invariants();
    let a = s.new_var().positive();
    let b = s.new_var().positive();
    s.add_clause([a, b]);
    s.check_invariants();
    s.add_clause([!a]);
    s.add_clause([!b]);
    s.check_invariants();
    assert_eq!(s.solve(), SolveResult::Unsat);
    s.check_invariants();
}
