//! Property-based tests for the CDCL solver: agreement with brute
//! force, model validity, incremental-interface laws, and core
//! minimality properties on proptest-generated formulae.

use proptest::prelude::*;
use sebmc_logic::{Cnf, Var};
use sebmc_sat::{SolveResult, Solver};

fn cnf_strategy(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(
        prop::collection::vec((0..max_vars, any::<bool>()), 1..4),
        0..max_clauses,
    )
    .prop_map(move |clauses| {
        let mut cnf = Cnf::with_vars(max_vars as usize);
        for c in clauses {
            cnf.add_clause(c.into_iter().map(|(v, p)| Var::new(v).lit(p)));
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn agrees_with_brute_force(cnf in cnf_strategy(8, 24)) {
        let mut s = Solver::new();
        let consistent = s.add_cnf(&cnf);
        let got = if consistent { s.solve() } else { SolveResult::Unsat };
        prop_assert_eq!(got.is_sat(), cnf.brute_force_satisfiable());
    }

    #[test]
    fn models_satisfy_the_formula(cnf in cnf_strategy(10, 30)) {
        let mut s = Solver::new();
        if s.add_cnf(&cnf) && s.solve() == SolveResult::Sat {
            let assignment: Vec<bool> = (0..cnf.num_vars())
                .map(|i| s.value(Var::new(i as u32)).unwrap_or(false))
                .collect();
            prop_assert!(cnf.eval(&assignment));
        }
    }

    /// Assumptions behave like temporary unit clauses.
    #[test]
    fn assumptions_equal_units(cnf in cnf_strategy(7, 18), assum_bits in any::<u8>()) {
        let assumptions: Vec<_> = (0..cnf.num_vars().min(3))
            .map(|i| Var::new(i as u32).lit(assum_bits >> i & 1 == 1))
            .collect();
        // Via assumptions:
        let mut s1 = Solver::new();
        prop_assume!(s1.add_cnf(&cnf));
        let r1 = s1.solve_with(&assumptions);
        // Via added units:
        let mut s2 = Solver::new();
        s2.add_cnf(&cnf);
        let mut ok = true;
        for &a in &assumptions {
            ok &= s2.add_clause([a]);
        }
        let r2 = if ok { s2.solve() } else { SolveResult::Unsat };
        prop_assert_eq!(r1.is_sat(), r2.is_sat());
    }

    /// The failed-assumption set must itself be unsatisfiable with the
    /// formula (it is a real core).
    #[test]
    fn failed_assumptions_are_a_core(cnf in cnf_strategy(7, 18), assum_bits in any::<u8>()) {
        let assumptions: Vec<_> = (0..cnf.num_vars().min(4))
            .map(|i| Var::new(i as u32).lit(assum_bits >> i & 1 == 1))
            .collect();
        let mut s = Solver::new();
        prop_assume!(s.add_cnf(&cnf));
        if s.solve_with(&assumptions) == SolveResult::Unsat {
            let core = s.failed_assumptions().to_vec();
            for c in &core {
                prop_assert!(assumptions.contains(c), "core must be a subset");
            }
            prop_assert_eq!(s.solve_with(&core), SolveResult::Unsat);
        }
    }

    /// Solving twice gives the same verdict (the solver is stateless
    /// modulo learnt clauses, which must not change satisfiability).
    #[test]
    fn resolving_is_stable(cnf in cnf_strategy(8, 20)) {
        let mut s = Solver::new();
        prop_assume!(s.add_cnf(&cnf));
        let first = s.solve();
        let second = s.solve();
        prop_assert_eq!(first, second);
    }

    /// simplify() never changes satisfiability.
    #[test]
    fn simplify_preserves_satisfiability(cnf in cnf_strategy(8, 20)) {
        let mut s1 = Solver::new();
        let c1 = s1.add_cnf(&cnf);
        let mut s2 = Solver::new();
        let c2 = s2.add_cnf(&cnf);
        let r1 = if c1 { s1.solve() } else { SolveResult::Unsat };
        let r2 = if c2 && s2.simplify() {
            s2.solve()
        } else {
            SolveResult::Unsat
        };
        prop_assert_eq!(r1.is_sat(), r2.is_sat());
    }

    /// Adding a satisfied model as a blocking clause makes the old
    /// model infeasible (the enumeration pattern jSAT relies on).
    #[test]
    fn blocking_clauses_exclude_models(cnf in cnf_strategy(6, 14)) {
        let mut s = Solver::new();
        prop_assume!(s.add_cnf(&cnf));
        let mut models_seen = 0;
        while s.solve() == SolveResult::Sat && models_seen < 70 {
            models_seen += 1;
            let block: Vec<_> = (0..cnf.num_vars())
                .map(|i| {
                    let v = Var::new(i as u32);
                    v.lit(!s.value(v).unwrap_or(false))
                })
                .collect();
            if !s.add_clause(block) {
                break;
            }
        }
        // Full enumeration must terminate within 2^vars models.
        prop_assert!(models_seen <= 1 << cnf.num_vars());
    }
}
