//! Property-based tests for the CDCL solver: agreement with brute
//! force, model validity, incremental-interface laws, core minimality,
//! and clause-database GC transparency.
//!
//! The workspace is dependency-free, so instead of proptest these run
//! each property over a few hundred formulae drawn from a seeded
//! [`SplitMix64`] stream — fully deterministic and reproducible from
//! the case number printed on failure.

use sebmc_logic::rng::SplitMix64;
use sebmc_logic::{dimacs, Cnf, Var};
use sebmc_sat::{SolveResult, Solver};

/// A random CNF over at most `max_vars` variables with at most
/// `max_clauses` clauses of 1–3 literals.
fn random_cnf(rng: &mut SplitMix64, max_vars: usize, max_clauses: usize) -> Cnf {
    let mut cnf = Cnf::with_vars(max_vars);
    for _ in 0..rng.below(max_clauses + 1) {
        let len = rng.range_inclusive(1, 3);
        cnf.add_clause((0..len).map(|_| Var::new(rng.below(max_vars) as u32).lit(rng.coin())));
    }
    cnf
}

/// Runs `check` on `cases` seeded random CNFs, reporting the failing
/// formula in DIMACS on panic.
fn for_random_cnfs(
    seed: u64,
    cases: u64,
    max_vars: usize,
    max_clauses: usize,
    check: impl Fn(&Cnf, &mut SplitMix64),
) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(seed ^ (case.wrapping_mul(0x9e37_79b9)));
        let cnf = random_cnf(&mut rng, max_vars, max_clauses);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&cnf, &mut rng)));
        if let Err(e) = result {
            eprintln!(
                "property failed on case {case} (seed {seed}):\n{}",
                dimacs::to_string(&cnf)
            );
            std::panic::resume_unwind(e);
        }
    }
}

fn model_of(s: &Solver, num_vars: usize) -> Vec<bool> {
    (0..num_vars)
        .map(|i| s.value(Var::new(i as u32)).unwrap_or(false))
        .collect()
}

#[test]
fn agrees_with_brute_force() {
    for_random_cnfs(0xA11CE, 256, 8, 24, |cnf, _| {
        let mut s = Solver::new();
        let consistent = s.add_cnf(cnf);
        let got = if consistent {
            s.solve()
        } else {
            SolveResult::Unsat
        };
        assert_eq!(got.is_sat(), cnf.brute_force_satisfiable());
    });
}

#[test]
fn models_satisfy_the_formula() {
    for_random_cnfs(0xB0B, 256, 10, 30, |cnf, _| {
        let mut s = Solver::new();
        if s.add_cnf(cnf) && s.solve() == SolveResult::Sat {
            assert!(cnf.eval(&model_of(&s, cnf.num_vars())));
        }
    });
}

/// Assumptions behave like temporary unit clauses.
#[test]
fn assumptions_equal_units() {
    for_random_cnfs(0xCAFE, 192, 7, 18, |cnf, rng| {
        let assumptions: Vec<_> = (0..cnf.num_vars().min(3))
            .map(|i| Var::new(i as u32).lit(rng.coin()))
            .collect();
        // Via assumptions:
        let mut s1 = Solver::new();
        if !s1.add_cnf(cnf) {
            return;
        }
        let r1 = s1.solve_with(&assumptions);
        // Via added units:
        let mut s2 = Solver::new();
        s2.add_cnf(cnf);
        let mut ok = true;
        for &a in &assumptions {
            ok &= s2.add_clause([a]);
        }
        let r2 = if ok { s2.solve() } else { SolveResult::Unsat };
        assert_eq!(r1.is_sat(), r2.is_sat());
    });
}

/// The failed-assumption set must itself be unsatisfiable with the
/// formula (it is a real core).
#[test]
fn failed_assumptions_are_a_core() {
    for_random_cnfs(0xC04E, 192, 7, 18, |cnf, rng| {
        let assumptions: Vec<_> = (0..cnf.num_vars().min(4))
            .map(|i| Var::new(i as u32).lit(rng.coin()))
            .collect();
        let mut s = Solver::new();
        if !s.add_cnf(cnf) {
            return;
        }
        if s.solve_with(&assumptions) == SolveResult::Unsat {
            let core = s.failed_assumptions().to_vec();
            for c in &core {
                assert!(assumptions.contains(c), "core must be a subset");
            }
            assert_eq!(s.solve_with(&core), SolveResult::Unsat);
        }
    });
}

/// Solving twice gives the same verdict (the solver is stateless
/// modulo learnt clauses, which must not change satisfiability).
#[test]
fn resolving_is_stable() {
    for_random_cnfs(0x57AB, 192, 8, 20, |cnf, _| {
        let mut s = Solver::new();
        if !s.add_cnf(cnf) {
            return;
        }
        let first = s.solve();
        let second = s.solve();
        assert_eq!(first, second);
    });
}

/// simplify() never changes satisfiability.
#[test]
fn simplify_preserves_satisfiability() {
    for_random_cnfs(0x51CC, 192, 8, 20, |cnf, _| {
        let mut s1 = Solver::new();
        let c1 = s1.add_cnf(cnf);
        let mut s2 = Solver::new();
        let c2 = s2.add_cnf(cnf);
        let r1 = if c1 { s1.solve() } else { SolveResult::Unsat };
        let r2 = if c2 && s2.simplify() {
            s2.solve()
        } else {
            SolveResult::Unsat
        };
        assert_eq!(r1.is_sat(), r2.is_sat());
    });
}

/// Interleaving `simplify()` (which triggers arena compaction) with
/// solving must be fully transparent: identical SAT/UNSAT verdicts,
/// and every model returned after compaction still satisfies the
/// original formula. This is the property jSAT relies on when it
/// retires blocking clauses mid-search.
#[test]
fn simplify_and_gc_preserve_verdicts_and_models() {
    for_random_cnfs(0x6C6C, 192, 9, 26, |cnf, rng| {
        // Reference verdict on a pristine solver.
        let mut reference = Solver::new();
        let verdict = if reference.add_cnf(cnf) {
            reference.solve()
        } else {
            SolveResult::Unsat
        };

        // Subject: same formula, with unit strengthenings and
        // simplify()/GC rounds interleaved between repeated solves.
        let mut s = Solver::new();
        let mut consistent = s.add_cnf(cnf);
        let mut strengthened = cnf.clone();
        for round in 0..3 {
            let got = if consistent && s.is_ok() {
                s.solve()
            } else {
                SolveResult::Unsat
            };
            if round == 0 {
                assert_eq!(
                    got.is_sat(),
                    verdict.is_sat(),
                    "verdict changed under simplify/GC"
                );
            } else {
                assert_eq!(got.is_sat(), strengthened.brute_force_satisfiable());
            }
            if got == SolveResult::Sat {
                let model = model_of(&s, cnf.num_vars());
                assert!(
                    strengthened.eval(&model),
                    "model after simplify/GC violates the formula"
                );
            }
            if got != SolveResult::Sat {
                break;
            }
            // Strengthen by a random unit, mirroring it in the oracle
            // copy, then force a simplify (and with it a compaction
            // opportunity).
            if cnf.num_vars() > 0 {
                let unit = Var::new(rng.below(cnf.num_vars()) as u32).lit(rng.coin());
                consistent &= s.add_clause([unit]);
                strengthened.add_unit(unit);
            }
            if consistent {
                consistent = s.simplify();
            }
        }
    });
}

/// Adding a satisfied model as a blocking clause makes the old
/// model infeasible (the enumeration pattern jSAT relies on).
#[test]
fn blocking_clauses_exclude_models() {
    for_random_cnfs(0xB10C, 128, 6, 14, |cnf, _| {
        let mut s = Solver::new();
        if !s.add_cnf(cnf) {
            return;
        }
        let mut models_seen = 0u32;
        while s.solve() == SolveResult::Sat && models_seen < 70 {
            models_seen += 1;
            let block: Vec<_> = (0..cnf.num_vars())
                .map(|i| {
                    let v = Var::new(i as u32);
                    v.lit(!s.value(v).unwrap_or(false))
                })
                .collect();
            if !s.add_clause(block) {
                break;
            }
        }
        // Full enumeration must terminate within 2^vars models.
        assert!(models_seen <= 1 << cnf.num_vars());
    });
}
