//! Seeded property sweep for the flat watch-list layout (ISSUE 3).
//!
//! Drives the solver through heavy solve / `simplify` (with
//! subsumption) / aggressive `reduce_db` / explicit `garbage_collect`
//! cycles — every operation that smudges, cleans, relocates, or
//! compacts watch segments — and asserts that verdicts still agree
//! with `brute_force_satisfiable` and that models satisfy the formula.
//!
//! Run under `cargo test` this also exercises the debug assertion in
//! the solver's `free_clause` that no clause locked as a trail
//! literal's reason is ever freed (the `is_locked` binary-slot
//! regression of ISSUE 3 is exactly the bug that assertion guards).
//!
//! The workspace is dependency-free, so instead of proptest the sweep
//! runs over a deterministic [`SplitMix64`] stream — reproducible from
//! the case number on failure.

use sebmc_logic::rng::SplitMix64;
use sebmc_logic::{Cnf, Lit, Var};
use sebmc_sat::{SolveResult, Solver};

fn random_clause(rng: &mut SplitMix64, n: usize) -> Vec<Lit> {
    let len = rng.range_inclusive(1, 4);
    (0..len)
        .map(|_| Var::new(rng.below(n) as u32).lit(rng.coin()))
        .collect()
}

#[test]
fn verdicts_survive_heavy_churn_cycles() {
    for case in 0..60u64 {
        let mut rng = SplitMix64::new(0x5eed_0003 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let n = rng.range_inclusive(6, 11);
        let mut s = Solver::new();
        s.ensure_vars(n);
        // Reduce the learnt database at (almost) every opportunity so
        // lazy watcher deletion and the glue/locked protections run
        // constantly, not just on big instances.
        s.set_max_learnts(1.0);
        let mut cnf = Cnf::with_vars(n);
        'rounds: for round in 0..6 {
            for _ in 0..rng.range_inclusive(2, 10) {
                let c = random_clause(&mut rng, n);
                cnf.add_clause(c.iter().copied());
                s.add_clause(c);
            }
            let got = if s.is_ok() {
                s.solve()
            } else {
                SolveResult::Unsat
            };
            let expect = cnf.brute_force_satisfiable();
            assert_eq!(
                got.is_sat(),
                expect,
                "case {case} round {round}: verdict diverged from brute force"
            );
            if !expect {
                // Once UNSAT without assumptions, always UNSAT.
                assert_eq!(s.solve(), SolveResult::Unsat);
                break 'rounds;
            }
            let model: Vec<bool> = (0..n)
                .map(|i| s.value(Var::new(i as u32)).unwrap_or(false))
                .collect();
            assert!(
                cnf.eval(&model),
                "case {case} round {round}: model must satisfy the formula"
            );
            // Churn: level-0 simplification (satisfied-clause removal,
            // literal stripping, subsumption/strengthening) followed
            // by a forced arena compaction that rewrites every watch.
            assert!(s.simplify(), "case {case}: simplify on a SAT formula");
            s.garbage_collect();
        }
    }
}

/// The jSAT blocking-clause workload: guarded clause groups retired
/// through `simplify`, interleaved with solving — the watch lists are
/// rebuilt wholesale each retraction while memory stays flat.
#[test]
fn activation_retraction_churn_keeps_accounting_flat() {
    let mut rng = SplitMix64::new(0xb10c_cafe);
    let mut s = Solver::new();
    let n = 24;
    let v: Vec<Lit> = (0..n).map(|_| s.new_var().positive()).collect();
    for w in v.windows(2) {
        s.add_clause([!w[0], w[1]]);
    }
    let base_lits = s.stats().live_lits;
    for round in 0..20 {
        let act = s.new_var().positive();
        // A guarded block of wide clauses, jSAT style.
        for _ in 0..8 {
            let mut c = vec![!act];
            for _ in 0..5 {
                c.push(v[rng.below(n)]);
            }
            s.add_clause(c);
        }
        assert_eq!(s.solve_with(&[act]), SolveResult::Sat, "round {round}");
        // Retire the whole block and physically reclaim it.
        s.add_clause([!act]);
        assert!(s.simplify());
        s.garbage_collect();
        assert_eq!(
            s.clause_db_resident_bytes(),
            s.clause_db_live_bytes(),
            "round {round}: post-GC arena is garbage-free"
        );
        assert!(
            s.stats().live_lits <= base_lits,
            "round {round}: retired blocks must not accumulate \
             ({} live lits, base {base_lits})",
            s.stats().live_lits
        );
        assert!(s.stats().watch_resident_bytes > 0);
        assert!(s.stats().peak_watch_bytes >= s.stats().watch_resident_bytes);
    }
    assert_eq!(s.solve(), SolveResult::Sat);
}

/// Incremental solving under assumptions across churn cycles: the
/// failed-assumption core machinery must survive watch-list cleaning
/// and compaction too.
#[test]
fn assumption_cores_survive_churn() {
    for case in 0..20u64 {
        let mut rng = SplitMix64::new(0xc0de ^ case.wrapping_mul(0x9e37_79b9));
        let n = rng.range_inclusive(5, 9);
        let mut s = Solver::new();
        s.ensure_vars(n);
        s.set_max_learnts(1.0);
        let mut cnf = Cnf::with_vars(n);
        for _ in 0..rng.range_inclusive(5, 20) {
            let c = random_clause(&mut rng, n);
            cnf.add_clause(c.iter().copied());
            s.add_clause(c);
        }
        if !s.is_ok() {
            continue;
        }
        assert!(s.simplify() || !s.is_ok());
        if !s.is_ok() {
            continue;
        }
        let assumption = Var::new(rng.below(n) as u32).lit(rng.coin());
        match s.solve_with(&[assumption]) {
            SolveResult::Sat => {
                assert_eq!(s.lit_value_model(assumption), Some(true), "case {case}");
            }
            SolveResult::Unsat => {
                // The reported core must itself be sufficient.
                let core = s.failed_assumptions().to_vec();
                assert!(core.iter().all(|l| *l == assumption), "case {case}");
                assert_eq!(s.solve_with(&core), SolveResult::Unsat, "case {case}");
            }
            SolveResult::Unknown => unreachable!("no limits set"),
        }
        // The solver stays usable for an unassumed solve afterwards.
        let expect = cnf.brute_force_satisfiable();
        assert_eq!(s.solve().is_sat(), expect, "case {case}: post-core solve");
    }
}
