//! The result cache: repeated traffic answered without solving.
//!
//! A long-lived daemon sees the same queries again and again — the
//! same design, the same bound, re-submitted by CI runs or by many
//! users. The cache keys on everything that determines the *verdict*:
//! the model's structural fingerprint
//! ([`sebmc::model_fingerprint`] — names excluded, so a renamed copy
//! of a design still hits), the semantics, the bound, whether the run
//! was certified, and whether static reduction was applied. The
//! engine selection is deliberately **not** part of the key: decided
//! verdicts are engine-independent (the engines agree or one of them
//! is wrong), so a verdict computed by `jsat` answers an `unroll`
//! query for the same problem. Budgets are also excluded — a decided
//! verdict holds under every budget.
//!
//! Only *decided*, *unquarantined* verdicts are cached: `Unknown`
//! outcomes depend on budgets and load, so replaying them would turn
//! one transient timeout into a permanent wrong answer.
//!
//! A hit re-serves the cold run's report: same verdict, bound,
//! winners, certificate summary, and witness/proof artifact *paths*
//! (the files themselves stay on disk where the cold run streamed
//! them — the cache never copies artifacts). The hit's stats are the
//! cold run's with `solver_effort` and `duration` zeroed, because the
//! service spent no solver effort answering it; every other field
//! (peak formula bytes, encode sizes) still describes the run that
//! produced the verdict.
//!
//! Memory is bounded by [`ResultCache::max_total_bytes`]: every entry
//! is charged an estimated footprint and least-recently-used entries
//! are evicted until the new entry fits. An entry larger than the
//! whole budget is simply not cached.

use std::collections::HashMap;
use std::time::Duration;

use sebmc::{BmcResult, Semantics};

use crate::report::JobReport;

/// Everything that determines a cached verdict.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Structural model fingerprint ([`sebmc::model_fingerprint`]).
    pub fingerprint: u64,
    /// Exactly-`k` vs within-`k`.
    pub semantics: Semantics,
    /// The sweep's `max_bound`.
    pub max_bound: usize,
    /// Whether the run certified its bounds.
    pub certify: bool,
    /// Whether static reduction was applied at admission.
    pub reduce: bool,
}

struct Entry {
    report: JobReport,
    bytes: usize,
    last_used: u64,
}

/// A bounded LRU of decided job reports (see the module docs).
pub struct ResultCache {
    /// The byte budget all entries share.
    pub max_total_bytes: usize,
    entries: HashMap<CacheKey, Entry>,
    used_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Estimated in-memory footprint of a cached report: strings, winners,
/// an in-memory trace if the report still carries one, and a fixed
/// overhead for the struct itself.
fn entry_bytes(r: &JobReport) -> usize {
    let mut bytes = 512; // struct + map slot overhead
    bytes += r.name.len() + r.model.len();
    bytes += r.engines.len() * 16 + r.winners.len() * 24;
    bytes += r.witness_path.as_ref().map_or(0, String::len);
    bytes += r.proof_path.as_ref().map_or(0, String::len);
    if let BmcResult::Reachable(Some(trace)) = &r.verdict {
        // One packed state + one input vector per step, conservatively
        // 16 bytes per element.
        bytes += (trace.len() + 1) * 32;
    }
    if let BmcResult::Unknown(reason) = &r.verdict {
        bytes += reason.len();
    }
    bytes
}

impl ResultCache {
    /// An empty cache with the given byte budget.
    pub fn new(max_total_bytes: usize) -> Self {
        ResultCache {
            max_total_bytes,
            entries: HashMap::new(),
            used_bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Bytes currently charged to entries.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries evicted to make room, since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether this report is eligible for caching: a decided verdict
    /// from an untroubled (not quarantined, not shed) run.
    pub fn cacheable(report: &JobReport) -> bool {
        !report.quarantined
            && matches!(
                report.verdict,
                BmcResult::Reachable(_) | BmcResult::Unreachable
            )
    }

    /// Looks the key up; on a hit, returns the cached report re-keyed
    /// for the new submission (`job_id`/`name` replaced, `cached` set,
    /// solver effort and duration zeroed, queue/solve wall-clock
    /// zeroed).
    pub fn lookup(&mut self, key: &CacheKey, job_id: usize, name: &str) -> Option<JobReport> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                let mut r = e.report.clone();
                r.job_id = job_id;
                r.name = name.to_string();
                r.cached = true;
                r.stats.solver_effort = 0;
                r.stats.duration = Duration::ZERO;
                r.queue_wait = Duration::ZERO;
                r.solve_time = Duration::ZERO;
                Some(r)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a finished report under `key`, evicting least-recently-
    /// used entries until it fits; returns how many entries were
    /// evicted. Uncacheable reports and reports larger than the whole
    /// budget are ignored (and evict nothing).
    pub fn insert(&mut self, key: CacheKey, report: &JobReport) -> usize {
        if !Self::cacheable(report) {
            return 0;
        }
        let bytes = entry_bytes(report);
        if bytes > self.max_total_bytes {
            return 0;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.used_bytes -= old.bytes;
        }
        let mut evicted_now = 0usize;
        while self.used_bytes + bytes > self.max_total_bytes {
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            let evicted = self.entries.remove(&victim).expect("victim present");
            self.used_bytes -= evicted.bytes;
            self.evictions += 1;
            evicted_now += 1;
        }
        let mut stored = report.clone();
        stored.cached = false;
        self.entries.insert(
            key,
            Entry {
                report: stored,
                bytes,
                last_used: self.tick,
            },
        );
        self.used_bytes += bytes;
        evicted_now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc::RunStats;

    fn key(fp: u64) -> CacheKey {
        CacheKey {
            fingerprint: fp,
            semantics: Semantics::Exactly,
            max_bound: 6,
            certify: false,
            reduce: true,
        }
    }

    fn decided(id: usize) -> JobReport {
        JobReport {
            job_id: id,
            name: format!("job{id}"),
            model: "m".into(),
            engines: vec!["jsat"],
            verdict: BmcResult::Unreachable,
            bound: None,
            bounds_checked: 7,
            bounds_skipped: 0,
            winners: vec![(0, "jsat")],
            byte_cap: None,
            stats: RunStats {
                solver_effort: 42,
                duration: Duration::from_millis(9),
                peak_formula_bytes: 1234,
                ..RunStats::default()
            },
            certificate: None,
            witness_path: None,
            witness_steps: None,
            queue_wait: Duration::from_millis(3),
            solve_time: Duration::from_millis(9),
            attempts: 1,
            resumed_from: None,
            deferrals: 0,
            downgraded: false,
            quarantined: false,
            failures: Vec::new(),
            proof_path: None,
            cached: false,
            priority: 4,
        }
    }

    #[test]
    fn hit_rekeys_and_zeroes_effort() {
        let mut c = ResultCache::new(1 << 20);
        c.insert(key(1), &decided(0));
        let hit = c.lookup(&key(1), 7, "resub").expect("hit");
        assert_eq!(hit.job_id, 7);
        assert_eq!(hit.name, "resub");
        assert!(hit.cached);
        assert_eq!(hit.stats.solver_effort, 0, "no solver effort on a hit");
        assert_eq!(hit.stats.peak_formula_bytes, 1234, "cold-run peaks kept");
        assert_eq!(hit.bounds_checked, 7);
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn differing_key_fields_miss() {
        let mut c = ResultCache::new(1 << 20);
        c.insert(key(1), &decided(0));
        assert!(c.lookup(&key(2), 1, "x").is_none(), "fingerprint differs");
        let mut k = key(1);
        k.max_bound = 7;
        assert!(c.lookup(&k, 1, "x").is_none(), "bound differs");
        let mut k = key(1);
        k.semantics = Semantics::Within;
        assert!(c.lookup(&k, 1, "x").is_none(), "semantics differs");
        let mut k = key(1);
        k.certify = true;
        assert!(c.lookup(&k, 1, "x").is_none(), "certify differs");
        assert_eq!(c.stats(), (0, 4));
    }

    #[test]
    fn unknown_and_quarantined_are_not_cached() {
        let mut c = ResultCache::new(1 << 20);
        let mut unknown = decided(0);
        unknown.verdict = BmcResult::Unknown("budget exhausted".into());
        c.insert(key(1), &unknown);
        let mut poisoned = decided(0);
        poisoned.quarantined = true;
        c.insert(key(2), &poisoned);
        assert!(c.is_empty());
    }

    #[test]
    fn respects_byte_budget_with_lru_eviction() {
        let one = entry_bytes(&decided(0));
        // Room for two entries, not three.
        let mut c = ResultCache::new(one * 2 + one / 2);
        c.insert(key(1), &decided(1));
        c.insert(key(2), &decided(2));
        assert_eq!(c.len(), 2);
        assert!(c.used_bytes() <= c.max_total_bytes);
        // Touch key 1 so key 2 is the LRU victim.
        assert!(c.lookup(&key(1), 9, "touch").is_some());
        assert_eq!(c.insert(key(3), &decided(3)), 1, "one entry evicted");
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
        assert!(c.used_bytes() <= c.max_total_bytes, "accounting holds");
        assert!(c.lookup(&key(2), 9, "gone").is_none(), "LRU evicted");
        assert!(c.lookup(&key(1), 9, "kept").is_some());
        assert!(c.lookup(&key(3), 9, "kept").is_some());
        // An entry bigger than the whole budget is refused outright.
        let mut tiny = ResultCache::new(16);
        tiny.insert(key(4), &decided(4));
        assert!(tiny.is_empty());
        assert_eq!(tiny.used_bytes(), 0);
    }
}
