//! The always-on checking daemon behind `sebmc serve`.
//!
//! [`serve_on`] turns a bound [`TcpListener`] plus a
//! [`ServiceConfig`] into a long-running server: one
//! [`ServiceHandle`] worker pool shared by every connection, one
//! lightweight thread per connection speaking the line-delimited JSON
//! protocol (see `docs/protocol.md` and [`frames`]). Each connection
//! is a distinct *client* to the scheduler (its id feeds the queue's
//! fairness tie-break), submissions go through the same [`JobSpec`]
//! decoding as job files and the batch CLI, and finished reports are
//! pushed back over the submitting connection as they land — a
//! connection only ever sees its own jobs.
//!
//! Shutdown is protocol-driven: any client may send
//! `{"op":"shutdown","mode":"graceful"|"now"}`. Graceful stops
//! accepting connections and submissions, runs every queued job to
//! completion, and delivers every report before the server returns;
//! `now` additionally fires the service cancel token so running jobs
//! stop at their next safe point (still producing reports — the
//! one-job-one-report invariant holds through shutdown). Reports whose
//! connection vanished before delivery are returned in
//! [`ServeSummary::leftover`], so nothing is silently dropped.

use std::io::{self, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sebmc_logic::json::Json;
use sebmc_telemetry::Telemetry;

use crate::handle::{ServiceHandle, ShutdownMode};
use crate::protocol::{frames, LineEvent, LineReader};
use crate::report::JobReport;
use crate::spec::JobSpec;
use crate::ServiceConfig;

/// `stop` value: accepting connections and submissions.
const RUN: u8 = 0;
/// `stop` value: graceful shutdown requested.
const STOP_GRACEFUL: u8 = 1;
/// `stop` value: immediate shutdown requested.
const STOP_NOW: u8 = 2;

/// Tunables of the accept/read loops (defaults suit both production
/// and tests; they only trade shutdown latency against idle CPU).
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// How often the accept loop polls the (non-blocking) listener and
    /// the stop flag.
    pub accept_poll: Duration,
    /// Per-connection socket read timeout: the cadence at which a
    /// connection thread interleaves report pushes with request reads.
    pub client_read_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            accept_poll: Duration::from_millis(25),
            client_read_timeout: Duration::from_millis(50),
        }
    }
}

/// What a server run amounted to, returned by [`serve_on`] after
/// shutdown completes.
#[derive(Debug)]
pub struct ServeSummary {
    /// Connections accepted over the server's lifetime.
    pub connections: usize,
    /// Submissions accepted (cache hits included).
    pub jobs_submitted: usize,
    /// Frames refused: malformed, overloaded, or after shutdown began.
    pub jobs_rejected: usize,
    /// Reports pushed to their submitting connections.
    pub reports_delivered: usize,
    /// Finished reports whose connection was gone before delivery
    /// (sorted by job id).
    pub leftover: Vec<JobReport>,
    /// Result-cache `(hits, misses)`, when the cache was enabled.
    pub cache: Option<(u64, u64)>,
    /// How long the server ran, accept to drained.
    pub uptime: Duration,
}

impl ServeSummary {
    /// One-line JSON rendering (the `sebmc serve` exit summary).
    pub fn to_json(&self) -> String {
        let cache = self.cache.map_or("null".to_string(), |(h, m)| {
            format!("{{\"hits\":{h},\"misses\":{m}}}")
        });
        format!(
            "{{\"uptime_ms\":{},\"connections\":{},\"jobs_submitted\":{},\"jobs_rejected\":{},\
             \"reports_delivered\":{},\"leftover\":{},\"cache\":{}}}",
            self.uptime.as_millis(),
            self.connections,
            self.jobs_submitted,
            self.jobs_rejected,
            self.reports_delivered,
            self.leftover.len(),
            cache
        )
    }
}

/// Shared submission/delivery counters.
#[derive(Default)]
struct Counters {
    submitted: AtomicUsize,
    rejected: AtomicUsize,
    delivered: AtomicUsize,
}

/// Runs the daemon on an already-bound listener until a client sends a
/// shutdown command, then drains (see the module docs) and returns the
/// run's summary. The listener is consumed and closed on shutdown.
pub fn serve_on(
    listener: TcpListener,
    mut config: ServiceConfig,
    opts: ServeOptions,
) -> io::Result<ServeSummary> {
    listener.set_nonblocking(true)?;
    let workers = config.workers.max(1);
    let cache_enabled = config.result_cache_bytes.is_some();
    let cancel = config.cancel.clone();
    // The daemon always carries telemetry — the `stats` frame must
    // answer even when the operator configured none.
    let telemetry = match &config.telemetry {
        Some(t) => Arc::clone(t),
        None => {
            let t = Arc::new(Telemetry::new());
            config.telemetry = Some(Arc::clone(&t));
            t
        }
    };
    let started = Instant::now();
    let handle = Arc::new(ServiceHandle::start(config));
    let stop = Arc::new(AtomicU8::new(RUN));
    let counters = Arc::new(Counters::default());

    let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut connections = 0usize;
    let mut next_client: u64 = 1;
    while stop.load(Ordering::Relaxed) == RUN {
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections += 1;
                let client_id = next_client;
                next_client += 1;
                let handle = Arc::clone(&handle);
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                let telemetry = Arc::clone(&telemetry);
                let read_timeout = opts.client_read_timeout;
                conns.push(
                    thread::Builder::new()
                        .name(format!("sebmc-conn-{client_id}"))
                        .spawn(move || {
                            connection_loop(
                                stream,
                                client_id,
                                &handle,
                                &stop,
                                &counters,
                                &telemetry,
                                workers,
                                cache_enabled,
                                read_timeout,
                            );
                        })
                        .expect("spawn connection thread"),
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Idle beat: keep the depth gauge honest even while no
                // submission or pickup is moving it.
                telemetry.metrics.queue_depth.set(handle.pending() as u64);
                thread::sleep(opts.accept_poll);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // New connections are refused from here on.
    drop(listener);
    let mode = if stop.load(Ordering::Relaxed) == STOP_NOW {
        cancel.cancel();
        ShutdownMode::Now
    } else {
        ShutdownMode::Graceful
    };
    // Connection threads exit once every report they own is delivered
    // (graceful: jobs run to completion first; now: cancellation turns
    // them into prompt Unknown reports).
    for c in conns {
        let _ = c.join();
    }
    let cache = handle.cache_stats();
    let leftover = handle.shutdown(mode);
    telemetry.flush();
    Ok(ServeSummary {
        connections,
        jobs_submitted: counters.submitted.load(Ordering::Relaxed),
        jobs_rejected: counters.rejected.load(Ordering::Relaxed),
        reports_delivered: counters.delivered.load(Ordering::Relaxed),
        leftover,
        cache,
        uptime: started.elapsed(),
    })
}

fn write_line(out: &mut TcpStream, line: &str) -> io::Result<()> {
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// One connection: greet, then interleave pushing finished reports
/// with serving requests until the peer hangs up — or shutdown has
/// begun *and* every job this connection submitted has been delivered.
#[allow(clippy::too_many_arguments)]
fn connection_loop(
    stream: TcpStream,
    client_id: u64,
    handle: &ServiceHandle,
    stop: &AtomicU8,
    counters: &Counters,
    telemetry: &Telemetry,
    workers: usize,
    cache_enabled: bool,
    read_timeout: Duration,
) {
    if stream.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let Ok(mut out) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(stream);
    if write_line(&mut out, &frames::hello(workers, cache_enabled)).is_err() {
        return;
    }
    // Jobs submitted on this connection whose reports are still owed.
    let mut owed: Vec<usize> = Vec::new();
    loop {
        let mut i = 0;
        while i < owed.len() {
            match handle.try_take(owed[i]) {
                Some(report) => {
                    if write_line(&mut out, &frames::report(&report)).is_err() {
                        return;
                    }
                    counters.delivered.fetch_add(1, Ordering::Relaxed);
                    owed.swap_remove(i);
                }
                None => i += 1,
            }
        }
        // The exit check sits on the *empty-read* path, not before the
        // read: frames the client pipelined behind its shutdown command
        // still get read and answered (with a clean `error` for
        // submissions) during one final read-timeout window, instead of
        // the connection closing under the client's write.
        match reader.read_line() {
            LineEvent::Timeout => {
                if stop.load(Ordering::Relaxed) != RUN && owed.is_empty() {
                    return;
                }
            }
            LineEvent::Eof => return,
            LineEvent::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let reply = handle_frame(
                    &line, client_id, handle, stop, counters, telemetry, &mut owed,
                );
                if write_line(&mut out, &reply).is_err() {
                    return;
                }
            }
        }
    }
}

/// Decodes and executes one client frame, returning the response
/// frame. Frames with an `"op"` are commands; anything else is a
/// [`JobSpec`] submission.
fn handle_frame(
    line: &str,
    client_id: u64,
    handle: &ServiceHandle,
    stop: &AtomicU8,
    counters: &Counters,
    telemetry: &Telemetry,
    owed: &mut Vec<usize>,
) -> String {
    let frame = match Json::parse(line) {
        Ok(f) => f,
        Err(e) => return frames::error(&format!("bad frame: {e}")),
    };
    match frame.get("op").and_then(Json::as_str) {
        Some("ping") => frames::pong(),
        Some("stats") => frames::stats(&telemetry.snapshot_json()),
        Some("shutdown") => match frame
            .get("mode")
            .and_then(Json::as_str)
            .unwrap_or("graceful")
        {
            "graceful" => {
                stop.store(STOP_GRACEFUL, Ordering::Relaxed);
                frames::shutdown_ack("graceful")
            }
            "now" => {
                stop.store(STOP_NOW, Ordering::Relaxed);
                frames::shutdown_ack("now")
            }
            other => frames::error(&format!("unknown shutdown mode: {other}")),
        },
        Some(other) => frames::error(&format!("unknown op: {other}")),
        None => {
            if stop.load(Ordering::Relaxed) != RUN {
                counters.rejected.fetch_add(1, Ordering::Relaxed);
                return frames::error("shutting down");
            }
            match JobSpec::from_json(&frame).and_then(JobSpec::into_job) {
                Err(e) => {
                    counters.rejected.fetch_add(1, Ordering::Relaxed);
                    frames::error(&e)
                }
                Ok(job) => match handle.submit_for_client(job, client_id) {
                    Ok(id) => {
                        counters.submitted.fetch_add(1, Ordering::Relaxed);
                        owed.push(id);
                        frames::accepted(id)
                    }
                    Err(e) => {
                        counters.rejected.fetch_add(1, Ordering::Relaxed);
                        frames::error(&e.to_string())
                    }
                },
            }
        }
    }
}
