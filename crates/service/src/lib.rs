//! A multi-worker bounded-model-checking service over engine sessions.
//!
//! The paper's space-efficient encodings pay off at scale when *many*
//! instances and bounds are checked without re-encoding. This crate is
//! the driver that amortizes that state: a queue of [`Job`]s served by
//! a fixed pool of [`std::thread::scope`] workers, one live engine
//! session (or a [`DeepeningPortfolio`] of
//! sessions) per job, deepened bound-by-bound.
//!
//! # Job lifecycle
//!
//! 1. **Submit** — [`CheckService::submit`] enqueues a [`Job`] and
//!    returns its id; the queue-wait clock starts.
//! 2. **Admit** — when a worker picks the job up, admission control
//!    lowers the service's byte cap onto the job's budget:
//!    the session runs under
//!    `min(job.budget.max_formula_bytes, config.max_job_bytes)`, wired
//!    into the SAT arena's exact live-byte accounting. The service can
//!    only tighten a job's cap, never loosen it. Under
//!    [`ServiceConfig::max_total_bytes`], admission also *reserves*
//!    aggregate memory: jobs that would push the service past the cap
//!    are deferred, then downgraded (portfolio → first engine), and a
//!    persistently blocked queue sheds the youngest running job — see
//!    *Degradation* below.
//! 3. **Run** — one engine means one deepening [`Session`](sebmc::Session)
//!    over bounds `0..=max_bound`; several engines mean
//!    **portfolio-level deepening**: every bound is raced across the
//!    live sessions on a child
//!    [`CancelToken`], the first decided verdict
//!    is shared and the losers — solver state intact — race again at
//!    the next bound. Bounds no engine supports are skipped, not
//!    failed. Each job runs under a **supervisor**: a panicking
//!    attempt is caught, recorded as a [`FailureReport`], and — under
//!    the job's [`RetryPolicy`] — retried with exponential backoff,
//!    *resuming at the first undecided bound* with only the wall-clock
//!    budget left over from earlier attempts. Jobs that exhaust every
//!    attempt are quarantined (reported, listed on
//!    [`ServiceReport::quarantined`]), never dropped.
//! 4. **Report** — every job ends in exactly one [`JobReport`]:
//!    reachable (with bound and witness), unreachable through
//!    `max_bound`, or `Unknown` (budget exhausted, cancelled, service
//!    cancelled, shed, quarantined, or unsupported-bound skips).
//!    Cancelled and budget-exhausted jobs are *reported*, never
//!    dropped. [`CheckService::run`] returns a [`ServiceReport`]
//!    aggregating all jobs (peaks maxed, effort summed, queue/solve
//!    wall-clock split).
//!
//! # Cancellation
//!
//! Three cooperative levels, all prompt (engines poll at their solver
//! safe points):
//!
//! * **Per-bound** (internal): each raced bound runs on a fresh child
//!   token so cancelling a bound's losers never kills their sessions.
//! * **Per-job**: the job's own [`Budget::cancel`](sebmc::Budget)
//!   token. Keep a clone before submitting; firing it aborts the job
//!   whether queued (reported `Unknown("cancelled")` without running)
//!   or mid-solve.
//! * **Whole-service**: [`ServiceConfig::cancel`]. Firing it stops
//!   every running job at its next safe point and fails the rest of
//!   the queue as `Unknown("service cancelled")`.
//!
//! The service fires only its own child tokens — a job's token is read,
//! never fired, so caller-held budgets stay reusable.
//!
//! # Degradation under memory pressure
//!
//! With [`ServiceConfig::max_total_bytes`] set, every admitted job
//! reserves its worst case (its per-session byte cap × its engine
//! count; an uncapped job reserves the whole service budget). A job
//! that does not fit is **deferred** in 2 ms steps; a portfolio job
//! still blocked after repeated deferrals is **downgraded** to its
//! first engine (shrinking its reservation); and when deferral has
//! clearly stalled, the service **sheds** the youngest running job —
//! its report says `Unknown("shed: memory pressure")`, it is counted
//! in [`ServiceReport::jobs_shed`], and the blocked job proceeds. The
//! whole ladder is deterministic: deferral counts, not wall clocks,
//! drive the transitions.
//!
//! # Fault injection
//!
//! A [`sebmc_logic::fault::FaultPlan`] on a job's
//! [`Budget`](sebmc::Budget) threads fault-injection safe points
//! through this stack: the service's per-attempt dispatch, every
//! engine `check_bound` entry, and the SAT solver's budget poll. The
//! supervisor/retry/shedding machinery above is tested by injecting
//! panics, stalls, spurious cancellations, and byte-budget exhaustion
//! at exact safe-point hits (see `tests/fault_injection.rs`).
//!
//! # Example
//!
//! ```
//! use sebmc_service::{CheckService, EngineKind, Job, ServiceConfig};
//! use sebmc_model::builders::token_ring;
//!
//! let mut svc = CheckService::new(ServiceConfig::with_workers(2));
//! svc.submit(Job::new(
//!     token_ring(4),
//!     vec![EngineKind::Jsat, EngineKind::Unroll],
//!     6,
//! ));
//! let report = svc.run();
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.jobs[0].verdict.is_reachable());
//! assert_eq!(report.jobs[0].bound, Some(3));
//! ```

#![forbid(unsafe_code)]

mod cache;
mod handle;
mod job;
mod protocol;
mod queue;
mod report;
pub mod serve;
mod spec;

pub use cache::{CacheKey, ResultCache};
pub use handle::{ServiceHandle, ShutdownMode, SubmitError};
pub use job::{
    parse_job_file, suite_jobs, suite_model, EngineKind, Job, RetryPolicy, DEFAULT_PRIORITY,
};
pub use protocol::{frames, LineEvent, LineReader, WireClient};
pub use report::{
    cert_json, job_json, json_escape, stats_json, FailureReport, JobReport, ServiceReport,
};
pub use sebmc_telemetry::{MetricsRegistry, Telemetry, TraceSink};
pub use serve::{serve_on, ServeOptions, ServeSummary};
pub use spec::JobSpec;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use crate::queue::PendingJob;

use sebmc::{
    truncate_panic_payload, BmcResult, CancelToken, Certificate, DeepeningPortfolio, RunStats,
};
use sebmc_logic::fault::{FaultSite, FaultVerdict};
use sebmc_model::Trace;

/// How often the service's cancellation bridge polls job/service
/// tokens while jobs are running.
pub(crate) const BRIDGE_POLL: Duration = Duration::from_millis(2);
/// How often a deferred job re-tries admission under memory pressure.
const DEFER_POLL: Duration = Duration::from_millis(2);
/// Deferrals before a blocked portfolio job is downgraded to its first
/// engine.
const DOWNGRADE_AFTER_DEFERRALS: usize = 25;
/// Deferrals before the service starts shedding the youngest running
/// job to unblock the queue.
const SHED_AFTER_DEFERRALS: usize = 100;
/// Deferral interval between repeated shed requests (a shed victim
/// needs a few polls to wind down and release its reservation).
const SHED_RETRY_EVERY: usize = 50;

/// Locks a mutex, recovering the data from a poisoned lock: a panic on
/// another worker must never cascade into this one.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Static configuration of a [`CheckService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool (clamped to at least 1).
    pub workers: usize,
    /// Service-wide per-job byte cap: admission control lowers it onto
    /// every session's `max_formula_bytes` (taking the `min` with the
    /// job's own cap). `None` means jobs run under their own caps only.
    pub max_job_bytes: Option<usize>,
    /// Service-wide *aggregate* byte budget: the sum of all running
    /// jobs' reservations (per-session cap × engine count; uncapped
    /// jobs reserve the whole budget) stays under it, via the
    /// defer → downgrade → shed ladder (see the crate docs). `None`
    /// disables aggregate accounting.
    pub max_total_bytes: Option<usize>,
    /// Witness streaming: when set, each reachable job's trace is
    /// written to `<dir>/jobNNN_<name>.wit` in the HWMCC stimulus
    /// format and the [`JobReport`] keeps only the path and length —
    /// the full in-memory [`Trace`] is dropped, so a large batch's
    /// report stays small. `None` keeps traces in memory as before.
    pub witness_dir: Option<PathBuf>,
    /// Proof export: when set, each *single-engine* job streams its
    /// binary-DRAT proof to `<dir>/jobNNN_<name>.drat`; the file is
    /// kept (and its path reported) only when the job sweeps to a
    /// clean `Unreachable` verdict. Portfolio jobs skip export — N
    /// racing sessions cannot share one proof file.
    pub proof_dir: Option<PathBuf>,
    /// The whole-service kill switch; keep a clone
    /// ([`CancelToken::clone`]) to stop the service from outside.
    pub cancel: CancelToken,
    /// Retry/deadline policy applied at submission to every job whose
    /// own policy is the default — per-job policies always win. `None`
    /// leaves default-policy jobs untouched.
    pub retry_defaults: Option<RetryPolicy>,
    /// Result-cache byte budget: decided verdicts are cached keyed on
    /// `(model fingerprint, semantics, bound, certify, reduce)` and
    /// duplicate submissions are answered without solving (see
    /// [`ResultCache`]). `None` disables the cache (the batch-mode
    /// default; `sebmc serve` enables it).
    pub result_cache_bytes: Option<usize>,
    /// Queue-depth cap for overload shedding: submissions beyond this
    /// many *pending* (not yet running) jobs are rejected with
    /// [`SubmitError::Overloaded`] instead of queued. `None` accepts
    /// unboundedly.
    pub max_queue_depth: Option<usize>,
    /// Priority aging interval: a waiting job gains one effective
    /// priority level (toward the maximum of 9) per this much queue
    /// wait, so low-priority jobs cannot starve behind a stream of
    /// high-priority traffic.
    pub priority_aging: Duration,
    /// Shared telemetry: metrics counters at every queue/cache/worker
    /// transition, optional JSONL span tracing, and solver progress
    /// sinks installed on every attempt's budget. `None` (the default)
    /// records nothing — every instrumentation site is one `Option`
    /// branch.
    pub telemetry: Option<Arc<Telemetry>>,
}

/// Default [`ServiceConfig::priority_aging`]: one level per 250 ms
/// waited, so a priority-0 job outranks everything within ~2.5 s.
pub const DEFAULT_PRIORITY_AGING: Duration = Duration::from_millis(250);

impl ServiceConfig {
    /// A config with the given pool size and no service byte cap.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            max_job_bytes: None,
            max_total_bytes: None,
            witness_dir: None,
            proof_dir: None,
            cancel: CancelToken::new(),
            retry_defaults: None,
            result_cache_bytes: None,
            max_queue_depth: None,
            priority_aging: DEFAULT_PRIORITY_AGING,
            telemetry: None,
        }
    }

    /// Returns `self` with the service-wide byte cap set.
    pub fn with_max_job_bytes(mut self, bytes: usize) -> Self {
        self.max_job_bytes = Some(bytes);
        self
    }

    /// Returns `self` with the aggregate memory budget set.
    pub fn with_max_total_bytes(mut self, bytes: usize) -> Self {
        self.max_total_bytes = Some(bytes);
        self
    }

    /// Returns `self` streaming witnesses into `dir` (created on first
    /// use).
    pub fn with_witness_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.witness_dir = Some(dir.into());
        self
    }

    /// Returns `self` exporting DRAT proofs into `dir` (created on
    /// first use).
    pub fn with_proof_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.proof_dir = Some(dir.into());
        self
    }

    /// Returns `self` with the given whole-service cancel token (so
    /// callers stop reaching into the `cancel` field to share one).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Returns `self` applying `policy` to every submitted job whose
    /// retry policy is still the default.
    pub fn with_retry_defaults(mut self, policy: RetryPolicy) -> Self {
        self.retry_defaults = Some(policy);
        self
    }

    /// Returns `self` with a result cache of the given byte budget.
    pub fn with_result_cache_bytes(mut self, bytes: usize) -> Self {
        self.result_cache_bytes = Some(bytes);
        self
    }

    /// Returns `self` rejecting submissions once this many jobs are
    /// pending.
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = Some(depth);
        self
    }

    /// Returns `self` with the given priority aging interval
    /// (`Duration::ZERO` disables aging).
    pub fn with_priority_aging(mut self, aging: Duration) -> Self {
        self.priority_aging = aging;
        self
    }

    /// Returns `self` recording into the given telemetry instance.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::with_workers(
            std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
        )
    }
}

/// A running attempt's tokens, registered with the cancellation
/// bridge: fire `child` when the job's or the service's token fires,
/// or when the memory governor sheds this job.
pub(crate) struct BridgeSlot {
    pub(crate) job_token: CancelToken,
    pub(crate) child: CancelToken,
    pub(crate) shed: Arc<AtomicBool>,
}

/// Aggregate-memory admission control (see the crate docs).
///
/// Admission is **FIFO in pickup order**: when the queue hands a job
/// to a worker it is *enrolled* here with a monotonically increasing
/// ticket, and a job may only reserve memory once every
/// earlier-ticketed job has been admitted (or has finished). That
/// prevents small late jobs from starving a large early one forever —
/// and makes the defer/downgrade/shed ladder deterministic, because
/// the set of jobs holding reservations at any admission decision
/// does not depend on worker scheduling. With all-default priorities
/// the pickup order *is* the submission order, so the PR 6 fault
/// drills keep their exact semantics; with mixed priorities the gate
/// follows the scheduler's order instead of penalising a
/// queue-jumping job.
///
/// With no `max_total` every call is a cheap no-op: jobs are admitted
/// unconditionally and nothing is tracked.
pub(crate) struct MemGovernor {
    max_total: Option<usize>,
    state: Mutex<GovState>,
}

#[derive(Default)]
struct GovState {
    reserved: usize,
    seq: u64,
    /// Picked-up jobs not yet admitted (nor finished), as
    /// `(ticket, job_id)`: the FIFO gate.
    waiting: Vec<(u64, usize)>,
    running: Vec<RunningJob>,
}

struct RunningJob {
    job_id: usize,
    seq: u64,
    reservation: usize,
    shed: Arc<AtomicBool>,
}

impl MemGovernor {
    pub(crate) fn new(max_total: Option<usize>) -> Self {
        MemGovernor {
            max_total,
            state: Mutex::new(GovState::default()),
        }
    }

    /// Registers a picked-up job under its pickup ticket. Called under
    /// the queue lock (so tickets and pickup order agree) before the
    /// job's worker first calls [`MemGovernor::try_admit`].
    pub(crate) fn enroll(&self, job_id: usize, ticket: u64) {
        if self.max_total.is_none() {
            return;
        }
        lock_unpoisoned(&self.state).waiting.push((ticket, job_id));
    }

    /// Reserves `reservation` bytes for the job if it holds the oldest
    /// still-waiting ticket and the memory fits (or nothing else is
    /// running — a service that admits nothing is worse than one that
    /// briefly over-commits a clamped job).
    fn try_admit(&self, job_id: usize, reservation: usize, shed: &Arc<AtomicBool>) -> bool {
        let Some(cap) = self.max_total else {
            return true;
        };
        let mut st = lock_unpoisoned(&self.state);
        if st.waiting.iter().min().map(|&(_, id)| id) != Some(job_id) {
            return false;
        }
        if st.reserved.saturating_add(reservation) <= cap || st.running.is_empty() {
            st.waiting.retain(|&(_, id)| id != job_id);
            st.reserved = st.reserved.saturating_add(reservation);
            st.seq += 1;
            let seq = st.seq;
            st.running.push(RunningJob {
                job_id,
                seq,
                reservation,
                shed: shed.clone(),
            });
            true
        } else {
            false
        }
    }

    /// Retires the job: drops its reservation and removes it from the
    /// FIFO gate (idempotent; also correct for jobs that aborted
    /// before ever being admitted).
    pub(crate) fn release(&self, job_id: usize) {
        if self.max_total.is_none() {
            return;
        }
        let mut st = lock_unpoisoned(&self.state);
        st.waiting.retain(|&(_, id)| id != job_id);
        if let Some(pos) = st.running.iter().position(|r| r.job_id == job_id) {
            let r = st.running.swap_remove(pos);
            st.reserved = st.reserved.saturating_sub(r.reservation);
        }
    }

    /// Last-resort load shedding: flags the *youngest* running job
    /// (highest admission sequence) not already being shed. The bridge
    /// fires its child token; its report becomes
    /// `Unknown("shed: memory pressure")`.
    pub(crate) fn shed_youngest(&self) -> bool {
        let st = lock_unpoisoned(&self.state);
        let victim = st
            .running
            .iter()
            .filter(|r| !r.shed.load(Ordering::Relaxed))
            .max_by_key(|r| r.seq);
        match victim {
            Some(v) => {
                v.shed.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }
}

/// The batch-mode face of the checking service: collect jobs, then
/// [`CheckService::run`] them all to one [`ServiceReport`].
///
/// Since PR 9 this is a thin **compatibility wrapper** over
/// [`ServiceHandle`] — submission, scheduling, admission, supervision
/// and reporting all happen on the handle's long-lived worker pool, so
/// there is exactly one execution path whether the service runs a
/// batch, is driven programmatically, or serves a socket (`sebmc
/// serve`). New code that wants to keep workers alive across jobs,
/// stream results as they finish, or shut down gracefully should use
/// [`ServiceHandle`] directly; `run(self)` remains for the one-shot
/// "submit everything, wait for everything" shape.
pub struct CheckService {
    config: ServiceConfig,
    jobs: Vec<(Job, Instant)>,
}

impl CheckService {
    /// An empty service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        CheckService {
            config,
            jobs: Vec::new(),
        }
    }

    /// Enqueues a job and returns its id (its index in
    /// [`ServiceReport::jobs`]). The queue-wait clock starts now.
    pub fn submit(&mut self, job: Job) -> usize {
        self.jobs.push((job, Instant::now()));
        self.jobs.len() - 1
    }

    /// Number of jobs submitted so far.
    pub fn queued(&self) -> usize {
        self.jobs.len()
    }

    /// Drains the queue on the worker pool and returns the aggregate
    /// report. Blocks until every job is finished (or cancelled —
    /// cancelled jobs still get reports).
    ///
    /// Implementation: a paused [`ServiceHandle`] is started, every
    /// collected job is submitted (with its original submission
    /// timestamp, so queue-wait accounting is unchanged), the workers
    /// are released, and the handle is gracefully shut down once every
    /// report is in. Starting paused guarantees the whole batch is
    /// visible to the scheduler and the memory governor before the
    /// first pickup, exactly like the pre-handle implementation.
    pub fn run(self) -> ServiceReport {
        let CheckService { config, jobs } = self;
        let workers = config.workers.max(1);
        let run_start = Instant::now();
        let handle = ServiceHandle::start_paused(config);
        let n_jobs = jobs.len();
        for (job, submitted) in jobs {
            handle
                .submit_at(job, 0, submitted)
                .expect("a fresh handle accepts submissions");
        }
        handle.resume();
        let mut reports = Vec::with_capacity(n_jobs);
        for _ in 0..n_jobs {
            reports.push(
                handle
                    .next_report(None)
                    .expect("every submitted job produces a report"),
            );
        }
        let (queue_high_water, queue_pops) = handle.queue_telemetry();
        handle.shutdown(ShutdownMode::Graceful);
        reports.sort_by_key(|r| r.job_id);
        ServiceReport::new(workers, run_start.elapsed(), reports)
            .with_queue_telemetry(queue_high_water, queue_pops)
    }
}

/// A report for a job that never solved anything (cancelled while
/// queued or deferred, or lost to a service-layer panic): solve
/// wall-clock is zero by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn abort_report(
    id: usize,
    name: String,
    model: String,
    engines: Vec<&'static str>,
    byte_cap: Option<usize>,
    reason: &str,
    queue_wait: Duration,
    deferrals: usize,
    priority: u8,
) -> JobReport {
    JobReport {
        job_id: id,
        name,
        model,
        engines,
        verdict: BmcResult::Unknown(reason.to_string()),
        bound: None,
        bounds_checked: 0,
        bounds_skipped: 0,
        winners: Vec::new(),
        byte_cap,
        stats: RunStats::default(),
        certificate: None,
        witness_path: None,
        witness_steps: None,
        queue_wait,
        solve_time: Duration::ZERO,
        attempts: 0,
        resumed_from: None,
        deferrals,
        downgraded: false,
        quarantined: false,
        failures: Vec::new(),
        proof_path: None,
        cached: false,
        priority,
    }
}

fn aborted(q: &PendingJob, reason: &str, queue_wait: Duration, deferrals: usize) -> JobReport {
    abort_report(
        q.id,
        q.job.name.clone(),
        q.job.model.name().to_string(),
        q.job.engines.iter().map(|e| e.build().name()).collect(),
        q.job.budget.max_formula_bytes,
        reason,
        queue_wait,
        deferrals,
        q.job.priority,
    )
}

/// Mutable accumulators of one job's deepening sweep. Lives *outside*
/// the per-attempt panic containment, so everything decided before a
/// failure survives into the retry: the sweep resumes at
/// [`SweepProgress::next_bound`], never at bound 0.
#[derive(Default)]
struct SweepProgress {
    /// First bound the next attempt will look at.
    next_bound: usize,
    /// The reachable bound, once found.
    bound: Option<usize>,
    winners: Vec<(usize, &'static str)>,
    checked: usize,
    skipped: usize,
    cert: Option<Certificate>,
    /// Per-bound outcome stats absorbed as bounds finish: a panic can
    /// only lose the in-flight bound's effort, not the whole attempt's.
    stats: RunStats,
}

impl SweepProgress {
    fn last_decided(&self) -> Option<usize> {
        self.winners.last().map(|(k, _)| *k)
    }
}

/// Sanitizes a job name into a filename fragment.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Streams a reachable job's witness into the configured directory,
/// returning the file path. The file holds the HWMCC stimulus format
/// ([`Trace::to_hwmcc`]).
fn write_witness(dir: &Path, id: usize, name: &str, trace: &Trace) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("job{id:03}_{}.wit", sanitize_name(name)));
    std::fs::write(&path, trace.to_hwmcc())?;
    Ok(path.to_string_lossy().into_owned())
}

/// The DRAT export path for a job under the service proof directory.
fn proof_file_path(dir: &Path, id: usize, name: &str) -> PathBuf {
    dir.join(format!("job{id:03}_{}.drat", sanitize_name(name)))
}

/// The verdict of a clean deepening sweep that found nothing: a true
/// `Unreachable` only when no bound was skipped.
fn sweep_verdict(max_bound: usize, skipped: usize) -> BmcResult {
    if skipped > 0 {
        BmcResult::Unknown(format!(
            "unreachable at every supported bound 0..={max_bound}, \
             but {skipped} unsupported bounds were skipped"
        ))
    } else {
        BmcResult::Unreachable
    }
}

/// How one attempt's outcome steers the supervisor.
enum AttemptClass {
    /// The job is done; report this verdict.
    Final(BmcResult),
    /// The attempt failed for a recoverable reason; retry if the
    /// policy allows, quarantine otherwise.
    Retry(String),
}

/// Runs one admitted job to completion — admission, supervised
/// attempts, retry/backoff, and report assembly — on the calling
/// worker thread.
pub(crate) fn process_job(
    mut q: PendingJob,
    config: &ServiceConfig,
    slot: &Mutex<Option<BridgeSlot>>,
    governor: &MemGovernor,
    queue_wait: Duration,
) -> JobReport {
    // Cancelled while queued: reported (queue wait included), never
    // run, solve wall-clock zero.
    if config.cancel.is_cancelled() {
        return aborted(&q, "service cancelled", queue_wait, 0);
    }
    if q.job.budget.cancel.is_cancelled() {
        return aborted(&q, "cancelled", queue_wait, 0);
    }

    let run_start = Instant::now();
    // Admission-time static reduction: runs once, *before* the memory
    // governor, so reservations and every attempt's encoding see the
    // post-reduction cone. The attempts' budgets carry `reduce =
    // false` so no session re-runs the analysis on the already-reduced
    // model; the winning witness is lifted back below.
    let mut recon: Option<sebmc_analysis::Reconstruction> = None;
    let mut reduction_counters = (0usize, 0usize, 0usize);
    if q.job.budget.reduce {
        q.job.budget.reduce = false;
        if let Some(red) = sebmc_analysis::reduce(&q.job.model) {
            reduction_counters = (
                red.analysis.latches_swept(),
                red.analysis.coi_latches,
                red.analysis.inputs_removed(),
            );
            q.job.model = red.model;
            recon = Some(red.recon);
        }
    }
    let mut engines = q.job.engines.clone();
    // Admission control: the service cap can only tighten the job's.
    let mut byte_cap = match (q.job.budget.max_formula_bytes, config.max_job_bytes) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };

    // --- Aggregate-memory admission: defer → downgrade → shed. ------
    let shed = Arc::new(AtomicBool::new(false));
    let mut deferrals = 0usize;
    let mut downgraded = false;
    if let Some(total) = governor.max_total {
        if !engines.is_empty() {
            let per_session = |cap: Option<usize>| cap.unwrap_or(total).min(total);
            let mut reservation = per_session(byte_cap).saturating_mul(engines.len());
            if reservation > total {
                // Even alone this job over-reserves the service: clamp
                // it up front instead of deferring forever.
                if engines.len() > 1 {
                    engines.truncate(1);
                    downgraded = true;
                }
                byte_cap = Some(per_session(byte_cap));
                reservation = per_session(byte_cap);
            }
            loop {
                if config.cancel.is_cancelled() {
                    return aborted(&q, "service cancelled", queue_wait, deferrals);
                }
                if q.job.budget.cancel.is_cancelled() {
                    return aborted(&q, "cancelled", queue_wait, deferrals);
                }
                if governor.try_admit(q.id, reservation, &shed) {
                    break;
                }
                deferrals += 1;
                if !downgraded && deferrals >= DOWNGRADE_AFTER_DEFERRALS && engines.len() > 1 {
                    engines.truncate(1);
                    downgraded = true;
                    reservation = per_session(byte_cap);
                    continue; // re-try admission with the smaller ask
                }
                if deferrals >= SHED_AFTER_DEFERRALS
                    && (deferrals - SHED_AFTER_DEFERRALS).is_multiple_of(SHED_RETRY_EVERY)
                {
                    governor.shed_youngest();
                }
                thread::sleep(DEFER_POLL);
            }
        }
    }

    let PendingJob { id, job, .. } = q;
    if engines.is_empty() {
        let mut r = abort_report(
            id,
            job.name.clone(),
            job.model.name().to_string(),
            Vec::new(),
            byte_cap,
            "no engines selected",
            queue_wait,
            deferrals,
            job.priority,
        );
        r.attempts = 1;
        return r;
    }
    let engine_names: Vec<&'static str> = engines.iter().map(|e| e.build().name()).collect();

    // --- Supervised attempts. ----------------------------------------
    let policy = job.retry.clone();
    let max_attempts = policy.max_attempts.max(1);
    let orig_timeout = job.budget.timeout;
    let job_deadline = policy.job_deadline.map(|d| run_start + d);
    let proof_out: Option<PathBuf> = match (&config.proof_dir, engines.len()) {
        (Some(dir), 1) => {
            std::fs::create_dir_all(dir).ok();
            Some(proof_file_path(dir, id, &job.name))
        }
        _ => None,
    };

    let mut progress = SweepProgress::default();
    (
        progress.stats.latches_swept,
        progress.stats.coi_latches,
        progress.stats.inputs_removed,
    ) = reduction_counters;
    let mut failures: Vec<FailureReport> = Vec::new();
    let mut consumed = Duration::ZERO;
    let mut resumed_from: Option<usize> = None;
    let mut quarantined = false;
    let mut attempt: u32 = 0;

    let verdict: BmcResult = loop {
        attempt += 1;
        if attempt > 1 {
            resumed_from = Some(progress.next_bound);
        }
        // Cancellations/sheds that land between attempts are final.
        if shed.load(Ordering::Relaxed) {
            if let Some(t) = &config.telemetry {
                t.trace("shed", &[("job", id.into()), ("attempt", attempt.into())]);
            }
            break BmcResult::Unknown("shed: memory pressure".into());
        }
        if config.cancel.is_cancelled() {
            break BmcResult::Unknown("service cancelled".into());
        }
        if job.budget.cancel.is_cancelled() {
            break BmcResult::Unknown("cancelled".into());
        }
        // The attempt runs under whatever the *original* budget has
        // left: retries carry forward consumed wall clock, so a job's
        // attempts can never outspend the budget it was submitted
        // with.
        let remaining = orig_timeout.map(|t| t.saturating_sub(consumed));
        if remaining == Some(Duration::ZERO) {
            break BmcResult::Unknown("budget exhausted".into());
        }
        let deadline_left = job_deadline.map(|d| d.saturating_duration_since(Instant::now()));
        if deadline_left == Some(Duration::ZERO) {
            break BmcResult::Unknown("deadline exceeded".into());
        }
        let mut attempt_timeout = remaining;
        // Which constraint clips the attempt decides whether running
        // into it is retryable (per-attempt cap) or final (whole-job
        // deadline).
        let mut attempt_clipped = false;
        let mut deadline_clipped = false;
        if let Some(at) = policy.attempt_timeout {
            if attempt_timeout.is_none_or(|r| at < r) {
                attempt_timeout = Some(at);
                attempt_clipped = true;
            }
        }
        if let Some(left) = deadline_left {
            if attempt_timeout.is_none_or(|r| left < r) {
                attempt_timeout = Some(left);
                attempt_clipped = false;
                deadline_clipped = true;
            }
        }

        let child = CancelToken::new();
        *lock_unpoisoned(slot) = Some(BridgeSlot {
            job_token: job.budget.cancel_token(),
            child: child.clone(),
            shed: shed.clone(),
        });
        let mut budget = job.budget.clone().with_cancel(child.clone());
        budget.max_formula_bytes = byte_cap;
        budget.timeout = attempt_timeout;
        budget.proof_out = proof_out.clone();
        // The service attempt dispatch is the third progress safe
        // point: every attempt's budget reports into the shared
        // telemetry (solver polls, engine bound transitions).
        if let Some(t) = &config.telemetry {
            budget.progress = t.progress_handle();
            t.trace(
                "attempt_start",
                &[
                    ("job", id.into()),
                    ("attempt", attempt.into()),
                    ("resume_bound", progress.next_bound.into()),
                ],
            );
        }

        let attempt_start = Instant::now();
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // The service-layer fault-injection safe point: injected
            // panics land inside this catch and become retryable
            // failures, exactly like organic ones.
            let flag = budget.cancel.flag();
            if budget.fault.hit(FaultSite::Service, Some(&*flag)) == FaultVerdict::Oom {
                return BmcResult::Unknown("budget exhausted".into());
            }
            if engines.len() == 1 {
                run_attempt_single(engines[0], &job, &budget, &mut progress, attempt_start)
            } else {
                run_attempt_portfolio(&engines, &job, &budget, &mut progress, attempt_start)
            }
        }));
        *lock_unpoisoned(slot) = None;
        let attempt_elapsed = attempt_start.elapsed();
        consumed += attempt_elapsed;

        let class = match run {
            Ok(BmcResult::Reachable(t)) => AttemptClass::Final(BmcResult::Reachable(t)),
            Ok(BmcResult::Unreachable) => AttemptClass::Final(BmcResult::Unreachable),
            Ok(BmcResult::Unknown(r)) => classify_unknown(
                r,
                &shed,
                config,
                &job,
                attempt_clipped,
                deadline_clipped,
                attempt_elapsed,
                attempt_timeout,
            ),
            Err(payload) => AttemptClass::Retry(format!(
                "worker panicked: {}",
                truncate_panic_payload(payload.as_ref())
            )),
        };
        match class {
            AttemptClass::Final(v) => {
                if let Some(t) = &config.telemetry {
                    t.trace(
                        "attempt_end",
                        &[
                            ("job", id.into()),
                            ("attempt", attempt.into()),
                            ("outcome", "final".into()),
                        ],
                    );
                }
                break v;
            }
            AttemptClass::Retry(reason) => {
                if let Some(t) = &config.telemetry {
                    t.trace(
                        "attempt_end",
                        &[
                            ("job", id.into()),
                            ("attempt", attempt.into()),
                            ("outcome", "retry".into()),
                            ("reason", reason.as_str().into()),
                        ],
                    );
                }
                failures.push(FailureReport {
                    attempt,
                    bound_reached: progress.last_decided(),
                    reason: reason.clone(),
                    stats: progress.stats.clone(),
                });
                if attempt >= max_attempts {
                    // The poison list: every attempt failed. The last
                    // failure's reason becomes the verdict; nothing is
                    // dropped.
                    quarantined = true;
                    if let Some(t) = &config.telemetry {
                        t.trace(
                            "quarantine",
                            &[
                                ("job", id.into()),
                                ("attempts", attempt.into()),
                                ("reason", reason.as_str().into()),
                            ],
                        );
                    }
                    break BmcResult::Unknown(reason);
                }
                // Exponential, jittered, *interruptible* backoff.
                let pause = policy.backoff_before(attempt);
                if let Some(t) = &config.telemetry {
                    t.trace(
                        "backoff",
                        &[
                            ("job", id.into()),
                            ("attempt", attempt.into()),
                            ("ms", (pause.as_millis() as u64).into()),
                        ],
                    );
                }
                let end = Instant::now() + pause;
                loop {
                    if job.budget.cancel.is_cancelled()
                        || config.cancel.is_cancelled()
                        || shed.load(Ordering::Relaxed)
                    {
                        break;
                    }
                    let left = end.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    thread::sleep(left.min(BRIDGE_POLL));
                }
            }
        }
    };
    let mut verdict = verdict;

    // Lift the winning witness from the reduced model back to the
    // original variable order before anything downstream (witness
    // streaming, certification replay) sees it. A failed lift is a
    // reduction bug: degrade to Unknown rather than surface a trace
    // the submitted model rejects.
    if let Some(recon) = &recon {
        if let BmcResult::Reachable(Some(reduced_trace)) = &verdict {
            verdict = match recon.lift_trace(reduced_trace) {
                Ok(lifted) => match recon.original().check_trace(&lifted) {
                    Ok(()) => BmcResult::Reachable(Some(lifted)),
                    Err(why) => BmcResult::Unknown(format!("reduction lift failed: {why}")),
                },
                Err(why) => BmcResult::Unknown(format!("reduction lift failed: {why}")),
            };
        }
    }

    // Witness streaming: persist the trace and drop it from the
    // report. On a write error the in-memory trace is kept — a verdict
    // is never silently stripped of its evidence.
    let mut witness_path = None;
    let mut witness_steps = None;
    if let Some(dir) = &config.witness_dir {
        if let BmcResult::Reachable(slot @ Some(_)) = &mut verdict {
            let trace = slot.as_ref().expect("matched Some");
            if let Ok(path) = write_witness(dir, id, &job.name, trace) {
                witness_steps = Some(trace.len());
                witness_path = Some(path);
                *slot = None;
            }
        }
    }

    // Proof retention: keep the exported DRAT stream only for a clean
    // Unreachable sweep (the "Unsat-certified" case); anything else
    // leaves no partial proof file behind.
    let mut proof_path = None;
    if let Some(p) = &proof_out {
        if verdict.is_unreachable() && p.exists() {
            proof_path = Some(p.to_string_lossy().into_owned());
        } else {
            let _ = std::fs::remove_file(p);
        }
    }

    JobReport {
        job_id: id,
        name: job.name.clone(),
        model: job.model.name().to_string(),
        engines: engine_names,
        verdict,
        bound: progress.bound,
        bounds_checked: progress.checked,
        bounds_skipped: progress.skipped,
        winners: progress.winners,
        byte_cap,
        stats: progress.stats,
        certificate: progress.cert,
        witness_path,
        witness_steps,
        queue_wait,
        solve_time: run_start.elapsed(),
        attempts: attempt,
        resumed_from,
        deferrals,
        downgraded,
        quarantined,
        failures,
        proof_path,
        cached: false,
        priority: job.priority,
    }
}

/// Sorts an attempt's `Unknown` into final verdicts vs retryable
/// failures. Order matters: a shed or an external cancellation
/// *explains* a fired child token; only an unexplained one is the
/// injected/spurious kind worth retrying.
#[allow(clippy::too_many_arguments)]
fn classify_unknown(
    reason: String,
    shed: &Arc<AtomicBool>,
    config: &ServiceConfig,
    job: &Job,
    attempt_clipped: bool,
    deadline_clipped: bool,
    attempt_elapsed: Duration,
    attempt_timeout: Option<Duration>,
) -> AttemptClass {
    if reason == "cancelled" {
        if shed.load(Ordering::Relaxed) {
            return AttemptClass::Final(BmcResult::Unknown("shed: memory pressure".into()));
        }
        if config.cancel.is_cancelled() {
            return AttemptClass::Final(BmcResult::Unknown("service cancelled".into()));
        }
        if job.budget.cancel.is_cancelled() {
            return AttemptClass::Final(BmcResult::Unknown("cancelled".into()));
        }
        // The attempt's child token fired, but nobody legitimate fired
        // it: a spurious (injected or stray) cancellation.
        return AttemptClass::Retry("spurious cancellation".into());
    }
    if reason == "budget exhausted" {
        if deadline_clipped {
            return AttemptClass::Final(BmcResult::Unknown("deadline exceeded".into()));
        }
        // Retry only when the *per-attempt* cap was the binding
        // constraint and the attempt actually ran into it (a fast
        // "budget exhausted" is the byte cap, which no retry fixes).
        let ran_into_cap =
            attempt_timeout.is_some_and(|t| attempt_elapsed + Duration::from_millis(5) >= t);
        if attempt_clipped && ran_into_cap {
            return AttemptClass::Retry("attempt deadline exceeded".into());
        }
        return AttemptClass::Final(BmcResult::Unknown(reason));
    }
    if reason.starts_with("engine panicked") {
        return AttemptClass::Retry(reason);
    }
    AttemptClass::Final(BmcResult::Unknown(reason))
}

/// One attempt of a single-engine job: a fresh deepening session,
/// swept from the first undecided bound.
fn run_attempt_single(
    kind: EngineKind,
    job: &Job,
    budget: &sebmc::Budget,
    progress: &mut SweepProgress,
    attempt_start: Instant,
) -> BmcResult {
    let mut session = kind
        .build()
        .start(&job.model, job.semantics, budget.clone());
    for k in progress.next_bound..=job.max_bound {
        if budget.expired(attempt_start) {
            return BmcResult::Unknown(budget.unknown_reason());
        }
        if !session.supports_bound(k) {
            progress.skipped += 1;
            progress.next_bound = k + 1;
            continue;
        }
        let out = session.check_bound(k);
        progress.stats.absorb(&out.stats);
        Certificate::fold_into(&mut progress.cert, out.certificate.as_ref());
        match out.result {
            BmcResult::Reachable(t) => {
                progress.checked += 1;
                progress.bound = Some(k);
                progress.winners.push((k, session.name()));
                progress.next_bound = k + 1;
                return BmcResult::Reachable(t);
            }
            BmcResult::Unreachable => {
                progress.checked += 1;
                progress.winners.push((k, session.name()));
                progress.next_bound = k + 1;
            }
            BmcResult::Unknown(r) => return BmcResult::Unknown(r),
        }
    }
    sweep_verdict(job.max_bound, progress.skipped)
}

/// One attempt of a portfolio job: fresh live sessions, every bound
/// raced from the first undecided one.
fn run_attempt_portfolio(
    engines: &[EngineKind],
    job: &Job,
    budget: &sebmc::Budget,
    progress: &mut SweepProgress,
    attempt_start: Instant,
) -> BmcResult {
    let built = engines.iter().map(job::EngineKind::build).collect();
    let mut p = DeepeningPortfolio::start(&job.model, job.semantics, built, budget.clone());
    for k in progress.next_bound..=job.max_bound {
        if budget.expired(attempt_start) {
            return BmcResult::Unknown(budget.unknown_reason());
        }
        let out = p.check_bound(k);
        for e in &out.entries {
            progress.stats.absorb(&e.outcome.stats);
        }
        if !out.supported {
            progress.skipped += 1;
            progress.next_bound = k + 1;
            continue;
        }
        match out.winner {
            Some(i) => {
                progress.checked += 1;
                progress.winners.push((k, out.entries[i].engine));
                // The job's certificate is the chain of race winners'
                // per-bound certificates.
                Certificate::fold_into(
                    &mut progress.cert,
                    out.entries[i].outcome.certificate.as_ref(),
                );
                match &out.entries[i].outcome.result {
                    BmcResult::Reachable(t) => {
                        progress.bound = Some(k);
                        progress.next_bound = k + 1;
                        return BmcResult::Reachable(t.clone());
                    }
                    _ => progress.next_bound = k + 1,
                }
            }
            // No engine decided: budget/cancellation (or every engine
            // retired). A deadline that expired mid-race reaches the
            // sessions as a fired *race* token, so their entries all
            // say "cancelled" — report the job-level reason ("budget
            // exhausted") instead.
            None => {
                return if budget.expired(attempt_start) && !budget.cancel.is_cancelled() {
                    BmcResult::Unknown(budget.unknown_reason())
                } else {
                    out.verdict().clone()
                };
            }
        }
    }
    sweep_verdict(job.max_bound, progress.skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc::Budget;
    use sebmc_model::builders::{shift_register, token_ring, traffic_light};

    #[test]
    fn single_engine_job_deepens_to_the_first_reachable_bound() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1));
        svc.submit(Job::new(shift_register(4), vec![EngineKind::Jsat], 8));
        let r = svc.run();
        assert_eq!(r.jobs.len(), 1);
        let j = &r.jobs[0];
        assert!(j.verdict.is_reachable());
        assert_eq!(j.bound, Some(4));
        assert_eq!(j.bounds_checked, 5, "bounds 0..=4 checked");
        assert_eq!(j.winners.len(), 5);
        assert!(j.stats.solver_effort > 0 || j.stats.bounds_checked == 5);
        assert_eq!(j.attempts, 1);
        assert!(j.failures.is_empty());
        assert_eq!(r.reachable, 1);
        assert_eq!(r.jobs_retried, 0);
    }

    #[test]
    fn portfolio_job_races_bounds_and_reports_winners() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1));
        svc.submit(Job::new(
            token_ring(4),
            vec![EngineKind::Jsat, EngineKind::Unroll],
            6,
        ));
        let r = svc.run();
        let j = &r.jobs[0];
        assert!(j.verdict.is_reachable(), "{}", j.verdict);
        assert_eq!(j.bound, Some(3));
        assert_eq!(j.engines.len(), 2);
        // Every checked bound has a recorded winner.
        assert_eq!(j.winners.len(), j.bounds_checked);
        assert!(j
            .winners
            .iter()
            .all(|(_, e)| *e == "jsat" || *e == "sat-unroll"));
    }

    #[test]
    fn unreachable_sweep_is_reported_as_unreachable() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(2));
        svc.submit(Job::new(traffic_light(), vec![EngineKind::Unroll], 5));
        let r = svc.run();
        assert!(r.jobs[0].verdict.is_unreachable());
        assert_eq!(r.unreachable, 1);
    }

    #[test]
    fn admission_control_takes_the_min_of_job_and_service_caps() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1).with_max_job_bytes(10_000));
        svc.submit(
            Job::new(shift_register(4), vec![EngineKind::Unroll], 3)
                .with_budget(Budget::with_memory_bytes(50_000)),
        );
        svc.submit(
            Job::new(shift_register(4), vec![EngineKind::Unroll], 3)
                .with_budget(Budget::with_memory_bytes(5_000)),
        );
        let r = svc.run();
        assert_eq!(r.jobs[0].byte_cap, Some(10_000), "service cap tightens");
        assert_eq!(r.jobs[1].byte_cap, Some(5_000), "job cap kept when tighter");
    }

    #[test]
    fn budget_exhausted_jobs_are_reported_unknown_not_dropped() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1));
        // A byte cap far too small to encode bound 50.
        svc.submit(
            Job::new(shift_register(16), vec![EngineKind::Unroll], 50)
                .with_budget(Budget::with_memory_bytes(256)),
        );
        let r = svc.run();
        assert_eq!(r.jobs.len(), 1);
        assert!(r.jobs[0].verdict.is_unknown(), "{}", r.jobs[0].verdict);
        assert_eq!(r.unknown, 1);
    }

    #[test]
    fn per_job_cancellation_before_start_skips_the_job() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1));
        let job = Job::new(shift_register(4), vec![EngineKind::Jsat], 6);
        let token = job.budget.cancel_token();
        token.cancel();
        svc.submit(job);
        svc.submit(Job::new(token_ring(3), vec![EngineKind::Jsat], 4));
        let r = svc.run();
        assert_eq!(
            r.jobs[0].verdict,
            BmcResult::Unknown("cancelled".into()),
            "pre-cancelled job reported, not run"
        );
        assert_eq!(r.jobs[0].solve_time, Duration::ZERO);
        assert!(r.jobs[1].verdict.is_reachable(), "siblings unaffected");
    }

    #[test]
    fn service_cancellation_fails_the_remaining_queue() {
        let config = ServiceConfig::with_workers(1);
        config.cancel.cancel();
        let mut svc = CheckService::new(config);
        svc.submit(Job::new(token_ring(3), vec![EngineKind::Jsat], 4));
        let r = svc.run();
        assert_eq!(
            r.jobs[0].verdict,
            BmcResult::Unknown("service cancelled".into())
        );
    }

    /// Witness streaming (ROADMAP open item): with a witness dir the
    /// trace lands in an HWMCC-format file and the report carries only
    /// the path and length — no in-memory trace.
    #[test]
    fn witness_streaming_replaces_the_in_memory_trace() {
        let dir = std::env::temp_dir().join(format!("sebmc-wit-{}", std::process::id()));
        let mut svc = CheckService::new(ServiceConfig::with_workers(1).with_witness_dir(&dir));
        svc.submit(Job::new(shift_register(4), vec![EngineKind::Unroll], 6));
        svc.submit(Job::new(traffic_light(), vec![EngineKind::Unroll], 3));
        let r = svc.run();
        let j = &r.jobs[0];
        assert_eq!(j.verdict, BmcResult::Reachable(None), "trace dropped");
        assert_eq!(j.bound, Some(4));
        assert_eq!(j.witness_steps, Some(4));
        let path = j.witness_path.as_ref().expect("witness file path");
        let content = std::fs::read_to_string(path).expect("witness file exists");
        assert!(content.starts_with("1\nb0\n"), "HWMCC header: {content}");
        assert!(content.ends_with(".\n"));
        assert_eq!(
            content.lines().count(),
            2 + 1 + 4 + 1,
            "header + init + one input line per step + terminator"
        );
        // Unreachable jobs get no witness file.
        assert!(r.jobs[1].witness_path.is_none());
        let json = r.to_json();
        assert!(json.contains("\"witness_steps\":4"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Proof export (carried ROADMAP follow-up): with a proof dir a
    /// single-engine Unreachable job leaves a non-empty binary-DRAT
    /// file behind and reports its path; decided-reachable and
    /// portfolio jobs leave nothing.
    #[test]
    fn proof_export_keeps_drat_files_for_unreachable_jobs() {
        let dir = std::env::temp_dir().join(format!("sebmc-drat-{}", std::process::id()));
        let mut svc = CheckService::new(ServiceConfig::with_workers(1).with_proof_dir(&dir));
        svc.submit(Job::new(traffic_light(), vec![EngineKind::Unroll], 4));
        svc.submit(Job::new(shift_register(4), vec![EngineKind::Unroll], 6));
        svc.submit(Job::new(
            traffic_light(),
            vec![EngineKind::Unroll, EngineKind::Jsat],
            3,
        ));
        let r = svc.run();
        let unsat = &r.jobs[0];
        assert!(unsat.verdict.is_unreachable());
        let p = unsat.proof_path.as_ref().expect("proof path reported");
        let bytes = std::fs::read(p).expect("proof file exists");
        assert!(!bytes.is_empty(), "DRAT stream has content");
        // Reachable job: no proof kept.
        assert!(r.jobs[1].proof_path.is_none());
        // Portfolio job: export skipped entirely.
        assert!(r.jobs[2].proof_path.is_none());
        let kept: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(kept.len(), 1, "only the Unsat job's file remains: {kept:?}");
        let json = r.to_json();
        assert!(json.contains("\"proof_path\":\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Certification and proof export compose: the tee sink checks on
    /// the fly *and* writes the file.
    #[test]
    fn certify_and_proof_export_compose() {
        let dir = std::env::temp_dir().join(format!("sebmc-drat-tee-{}", std::process::id()));
        let mut svc = CheckService::new(ServiceConfig::with_workers(1).with_proof_dir(&dir));
        svc.submit(
            Job::new(traffic_light(), vec![EngineKind::Unroll], 4)
                .with_budget(Budget::none().with_certify(true)),
        );
        let r = svc.run();
        let j = &r.jobs[0];
        assert!(j.verdict.is_unreachable());
        assert!(j.certificate.as_ref().unwrap().fully_certified());
        let p = j.proof_path.as_ref().expect("proof file kept");
        assert!(!std::fs::read(p).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A certified batch: every decided job carries a fully-certified
    /// certificate and the aggregate counts them.
    #[test]
    fn certified_jobs_carry_certificates() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1));
        let budget = Budget::none().with_certify(true);
        svc.submit(
            Job::new(traffic_light(), vec![EngineKind::Unroll], 4).with_budget(budget.clone()),
        );
        svc.submit(
            Job::new(shift_register(4), vec![EngineKind::Jsat], 6).with_budget(budget.clone()),
        );
        // A portfolio job: the winners' chain certifies the verdict.
        svc.submit(
            Job::new(token_ring(4), vec![EngineKind::Jsat, EngineKind::Unroll], 6)
                .with_budget(budget),
        );
        let r = svc.run();
        for j in &r.jobs {
            let cert = j.certificate.as_ref().expect("certificate present");
            assert!(
                cert.fully_certified(),
                "job {} ({}): {cert:?}",
                j.job_id,
                j.name
            );
            assert_eq!(cert.bounds_attempted as usize, j.bounds_checked);
        }
        assert_eq!(r.jobs_certified, 3);
        assert!(r.certificate.as_ref().unwrap().fully_certified());
        assert!(r.total.peak_proof_bytes > 0, "proof bytes in the stats");
    }

    #[test]
    fn report_json_smoke() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(2));
        for job in suite_jobs(true, &[EngineKind::Jsat], 2, &Budget::none()) {
            svc.submit(job);
        }
        let r = svc.run();
        assert_eq!(r.jobs.len(), 13);
        let json = r.to_json();
        assert!(json.contains("\"jobs_total\":13"));
        assert!(json.contains("\"workers\":2"));
        assert!(json.contains("\"jobs_quarantined\":0"));
    }
}
