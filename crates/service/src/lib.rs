//! A multi-worker bounded-model-checking service over engine sessions.
//!
//! The paper's space-efficient encodings pay off at scale when *many*
//! instances and bounds are checked without re-encoding. This crate is
//! the driver that amortizes that state: a queue of [`Job`]s served by
//! a fixed pool of [`std::thread::scope`] workers, one live engine
//! session (or a [`DeepeningPortfolio`] of
//! sessions) per job, deepened bound-by-bound.
//!
//! # Job lifecycle
//!
//! 1. **Submit** — [`CheckService::submit`] enqueues a [`Job`] and
//!    returns its id; the queue-wait clock starts.
//! 2. **Admit** — when a worker picks the job up, admission control
//!    lowers the service's byte cap onto the job's budget:
//!    the session runs under
//!    `min(job.budget.max_formula_bytes, config.max_job_bytes)`, wired
//!    into the SAT arena's exact live-byte accounting. The service can
//!    only tighten a job's cap, never loosen it.
//! 3. **Run** — one engine means one deepening [`Session`](sebmc::Session)
//!    over bounds `0..=max_bound`; several engines mean
//!    **portfolio-level deepening**: every bound is raced across the
//!    live sessions on a child
//!    [`CancelToken`], the first decided verdict
//!    is shared and the losers — solver state intact — race again at
//!    the next bound. Bounds no engine supports are skipped, not
//!    failed.
//! 4. **Report** — every job ends in exactly one [`JobReport`]:
//!    reachable (with bound and witness), unreachable through
//!    `max_bound`, or `Unknown` (budget exhausted, cancelled, service
//!    cancelled, or unsupported-bound skips). Cancelled and
//!    budget-exhausted jobs are *reported*, never dropped.
//!    [`CheckService::run`] returns a [`ServiceReport`] aggregating
//!    all jobs (peaks maxed, effort summed, queue/solve wall-clock
//!    split).
//!
//! # Cancellation
//!
//! Three cooperative levels, all prompt (engines poll at their solver
//! safe points):
//!
//! * **Per-bound** (internal): each raced bound runs on a fresh child
//!   token so cancelling a bound's losers never kills their sessions.
//! * **Per-job**: the job's own [`Budget::cancel`](sebmc::Budget)
//!   token. Keep a clone before submitting; firing it aborts the job
//!   whether queued (reported `Unknown("cancelled")` without running)
//!   or mid-solve.
//! * **Whole-service**: [`ServiceConfig::cancel`]. Firing it stops
//!   every running job at its next safe point and fails the rest of
//!   the queue as `Unknown("service cancelled")`.
//!
//! The service fires only its own child tokens — a job's token is read,
//! never fired, so caller-held budgets stay reusable.
//!
//! # Example
//!
//! ```
//! use sebmc_service::{CheckService, EngineKind, Job, ServiceConfig};
//! use sebmc_model::builders::token_ring;
//!
//! let mut svc = CheckService::new(ServiceConfig::with_workers(2));
//! svc.submit(Job::new(
//!     token_ring(4),
//!     vec![EngineKind::Jsat, EngineKind::Unroll],
//!     6,
//! ));
//! let report = svc.run();
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.jobs[0].verdict.is_reachable());
//! assert_eq!(report.jobs[0].bound, Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod report;

pub use job::{parse_job_file, suite_jobs, suite_model, EngineKind, Job};
pub use report::{cert_json, json_escape, stats_json, JobReport, ServiceReport};

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use sebmc::{BmcResult, CancelToken, Certificate, DeepeningPortfolio, RunStats};
use sebmc_model::Trace;

/// How often the service's cancellation bridge polls job/service
/// tokens while jobs are running.
const BRIDGE_POLL: Duration = Duration::from_millis(2);

/// Static configuration of a [`CheckService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool (clamped to at least 1).
    pub workers: usize,
    /// Service-wide per-job byte cap: admission control lowers it onto
    /// every session's `max_formula_bytes` (taking the `min` with the
    /// job's own cap). `None` means jobs run under their own caps only.
    pub max_job_bytes: Option<usize>,
    /// Witness streaming: when set, each reachable job's trace is
    /// written to `<dir>/jobNNN_<name>.wit` in the HWMCC stimulus
    /// format and the [`JobReport`] keeps only the path and length —
    /// the full in-memory [`Trace`] is dropped, so a large batch's
    /// report stays small. `None` keeps traces in memory as before.
    pub witness_dir: Option<PathBuf>,
    /// The whole-service kill switch; keep a clone
    /// ([`CancelToken::clone`]) to stop the service from outside.
    pub cancel: CancelToken,
}

impl ServiceConfig {
    /// A config with the given pool size and no service byte cap.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            max_job_bytes: None,
            witness_dir: None,
            cancel: CancelToken::new(),
        }
    }

    /// Returns `self` with the service-wide byte cap set.
    pub fn with_max_job_bytes(mut self, bytes: usize) -> Self {
        self.max_job_bytes = Some(bytes);
        self
    }

    /// Returns `self` streaming witnesses into `dir` (created on first
    /// use).
    pub fn with_witness_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.witness_dir = Some(dir.into());
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::with_workers(
            std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
        )
    }
}

/// A job with its submission timestamp (queue-wait accounting).
struct QueuedJob {
    id: usize,
    job: Job,
    submitted: Instant,
}

/// A running job's tokens, registered with the cancellation bridge:
/// fire `child` when either the job's or the service's token fires.
struct BridgeSlot {
    job_token: CancelToken,
    child: CancelToken,
}

/// The checking service: a job queue plus the worker pool that drains
/// it. See the [crate docs](crate) for the job lifecycle.
pub struct CheckService {
    config: ServiceConfig,
    jobs: Vec<QueuedJob>,
}

impl CheckService {
    /// An empty service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        CheckService {
            config,
            jobs: Vec::new(),
        }
    }

    /// Enqueues a job and returns its id (its index in
    /// [`ServiceReport::jobs`]). The queue-wait clock starts now.
    pub fn submit(&mut self, job: Job) -> usize {
        let id = self.jobs.len();
        self.jobs.push(QueuedJob {
            id,
            job,
            submitted: Instant::now(),
        });
        id
    }

    /// Number of jobs submitted so far.
    pub fn queued(&self) -> usize {
        self.jobs.len()
    }

    /// Drains the queue on the worker pool and returns the aggregate
    /// report. Blocks until every job is finished (or cancelled —
    /// cancelled jobs still get reports).
    pub fn run(self) -> ServiceReport {
        let CheckService { config, jobs } = self;
        let workers = config.workers.max(1);
        let n_jobs = jobs.len();
        let run_start = Instant::now();
        let queue: Mutex<VecDeque<QueuedJob>> = Mutex::new(jobs.into());
        let reports: Mutex<Vec<Option<JobReport>>> =
            Mutex::new((0..n_jobs).map(|_| None).collect());
        let slots: Vec<Mutex<Option<BridgeSlot>>> =
            (0..workers).map(|_| Mutex::new(None)).collect();
        let pool_done = AtomicBool::new(false);
        thread::scope(|s| {
            // The cancellation bridge: propagates per-job and
            // whole-service cancellations into the running jobs' child
            // tokens, promptly, without the workers having to poll.
            s.spawn(|| {
                while !pool_done.load(Ordering::Relaxed) {
                    let service_cancelled = config.cancel.is_cancelled();
                    for slot in &slots {
                        let guard = slot.lock().unwrap();
                        if let Some(b) = guard.as_ref() {
                            if service_cancelled || b.job_token.is_cancelled() {
                                b.child.cancel();
                            }
                        }
                    }
                    thread::sleep(BRIDGE_POLL);
                }
            });
            let handles: Vec<_> = (0..workers)
                .map(|wid| {
                    let queue = &queue;
                    let reports = &reports;
                    let config = &config;
                    let slot = &slots[wid];
                    s.spawn(move || loop {
                        let next = queue.lock().unwrap().pop_front();
                        let Some(q) = next else { break };
                        let queue_wait = q.submitted.elapsed();
                        let report = if config.cancel.is_cancelled() {
                            aborted_report(&q, "service cancelled", queue_wait)
                        } else if q.job.budget.cancel.is_cancelled() {
                            aborted_report(&q, "cancelled", queue_wait)
                        } else {
                            let child = CancelToken::new();
                            *slot.lock().unwrap() = Some(BridgeSlot {
                                job_token: q.job.budget.cancel_token(),
                                child: child.clone(),
                            });
                            let r = run_job(q, child, config, queue_wait);
                            *slot.lock().unwrap() = None;
                            r
                        };
                        let id = report.job_id;
                        reports.lock().unwrap()[id] = Some(report);
                    })
                })
                .collect();
            for h in handles {
                let _ = h.join();
            }
            pool_done.store(true, Ordering::Relaxed);
        });
        let jobs = reports
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("every submitted job produces a report"))
            .collect();
        ServiceReport::new(workers, run_start.elapsed(), jobs)
    }
}

/// A report for a job that never ran (cancelled while queued).
fn aborted_report(q: &QueuedJob, reason: &str, queue_wait: Duration) -> JobReport {
    JobReport {
        job_id: q.id,
        name: q.job.name.clone(),
        model: q.job.model.name().to_string(),
        engines: q.job.engines.iter().map(|e| e.build().name()).collect(),
        verdict: BmcResult::Unknown(reason.to_string()),
        bound: None,
        bounds_checked: 0,
        bounds_skipped: 0,
        winners: Vec::new(),
        byte_cap: q.job.budget.max_formula_bytes,
        stats: RunStats::default(),
        certificate: None,
        witness_path: None,
        witness_steps: None,
        queue_wait,
        solve_time: Duration::ZERO,
    }
}

/// Mutable accumulators of one deepening sweep (returned out of the
/// panic-containment closure in one piece).
#[derive(Default)]
struct SweepState {
    bound: Option<usize>,
    winners: Vec<(usize, &'static str)>,
    checked: usize,
    skipped: usize,
    cert: Option<Certificate>,
}

/// Streams a reachable job's witness into the configured directory,
/// returning the file path. The file holds the HWMCC stimulus format
/// ([`Trace::to_hwmcc`]).
fn write_witness(dir: &Path, id: usize, name: &str, trace: &Trace) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let sanitized: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("job{id:03}_{sanitized}.wit"));
    std::fs::write(&path, trace.to_hwmcc())?;
    Ok(path.to_string_lossy().into_owned())
}

/// Renders a panic payload (the argument of `panic!`) as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// The verdict of a clean deepening sweep that found nothing: a true
/// `Unreachable` only when no bound was skipped.
fn sweep_verdict(max_bound: usize, skipped: usize) -> BmcResult {
    if skipped > 0 {
        BmcResult::Unknown(format!(
            "unreachable at every supported bound 0..={max_bound}, \
             but {skipped} unsupported bounds were skipped"
        ))
    } else {
        BmcResult::Unreachable
    }
}

/// Runs one admitted job to completion on the calling worker thread.
///
/// `child` is the job's effective cancel token (fired by the bridge on
/// per-job or whole-service cancellation); the job's own token is
/// never fired.
fn run_job(
    q: QueuedJob,
    child: CancelToken,
    config: &ServiceConfig,
    queue_wait: Duration,
) -> JobReport {
    let QueuedJob { id, job, .. } = q;
    let run_start = Instant::now();
    // Admission control: the service cap can only tighten the job's.
    let byte_cap = match (job.budget.max_formula_bytes, config.max_job_bytes) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let mut budget = job.budget.clone().with_cancel(child);
    budget.max_formula_bytes = byte_cap;

    let mut bound = None;
    let mut winners: Vec<(usize, &'static str)> = Vec::new();
    let mut bounds_checked = 0usize;
    let mut bounds_skipped = 0usize;
    let mut certificate: Option<Certificate> = None;
    let stats;
    let engines: Vec<&'static str>;

    let mut verdict = if job.engines.is_empty() {
        engines = Vec::new();
        stats = RunStats::default();
        BmcResult::Unknown("no engines selected".into())
    } else if job.engines.len() == 1 {
        // One engine: a plain deepening session. The whole sweep runs
        // inside a catch so a panicking engine costs *this job its
        // verdict*, not the worker thread (an unwound worker would
        // strand the rest of the queue and break the one-report-per-job
        // contract).
        let kind = job.engines[0];
        engines = vec![kind.build().name()];
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut session = kind
                .build()
                .start(&job.model, job.semantics, budget.clone());
            let mut sweep = SweepState::default();
            let verdict = 'sweep: {
                for k in 0..=job.max_bound {
                    if budget.expired(run_start) {
                        break 'sweep BmcResult::Unknown(budget.unknown_reason());
                    }
                    if !session.supports_bound(k) {
                        sweep.skipped += 1;
                        continue;
                    }
                    sweep.checked += 1;
                    let out = session.check_bound(k);
                    Certificate::fold_into(&mut sweep.cert, out.certificate.as_ref());
                    match out.result {
                        BmcResult::Reachable(t) => {
                            sweep.bound = Some(k);
                            sweep.winners.push((k, session.name()));
                            break 'sweep BmcResult::Reachable(t);
                        }
                        BmcResult::Unreachable => {
                            sweep.winners.push((k, session.name()));
                        }
                        BmcResult::Unknown(r) => break 'sweep BmcResult::Unknown(r),
                    }
                }
                sweep_verdict(job.max_bound, sweep.skipped)
            };
            (verdict, sweep, session.cumulative_stats())
        }));
        match run {
            Ok((v, sweep, cum)) => {
                bound = sweep.bound;
                winners = sweep.winners;
                bounds_checked = sweep.checked;
                bounds_skipped = sweep.skipped;
                certificate = sweep.cert;
                stats = cum;
                v
            }
            Err(payload) => {
                stats = RunStats::default();
                BmcResult::Unknown(format!(
                    "engine panicked: {}",
                    panic_message(payload.as_ref())
                ))
            }
        }
    } else {
        // Several engines: portfolio-level deepening, one race per
        // bound over the live sessions.
        let built = job.engines.iter().map(|e| e.build()).collect();
        let mut p = DeepeningPortfolio::start(&job.model, job.semantics, built, budget.clone());
        engines = p.engine_names();
        let v = 'sweep: {
            for k in 0..=job.max_bound {
                if budget.expired(run_start) {
                    break 'sweep BmcResult::Unknown(budget.unknown_reason());
                }
                let out = p.check_bound(k);
                if !out.supported {
                    bounds_skipped += 1;
                    continue;
                }
                bounds_checked += 1;
                match out.winner {
                    Some(i) => {
                        winners.push((k, out.entries[i].engine));
                        // The job's certificate is the chain of race
                        // winners' per-bound certificates.
                        Certificate::fold_into(
                            &mut certificate,
                            out.entries[i].outcome.certificate.as_ref(),
                        );
                        match &out.entries[i].outcome.result {
                            BmcResult::Reachable(t) => {
                                bound = Some(k);
                                break 'sweep BmcResult::Reachable(t.clone());
                            }
                            _ => continue,
                        }
                    }
                    // No engine decided: budget/cancellation (or every
                    // engine retired). A deadline that expired mid-race
                    // reaches the sessions as a fired *race* token, so
                    // their entries all say "cancelled" — report the
                    // job-level reason ("budget exhausted") instead.
                    None => {
                        break 'sweep if budget.expired(run_start) && !budget.cancel.is_cancelled() {
                            BmcResult::Unknown(budget.unknown_reason())
                        } else {
                            out.verdict().clone()
                        };
                    }
                }
            }
            sweep_verdict(job.max_bound, bounds_skipped)
        };
        stats = p.cumulative_stats();
        v
    };

    // A cancellation that arrived through the service token reads
    // better labelled as such.
    if let BmcResult::Unknown(r) = &verdict {
        if r == "cancelled" && config.cancel.is_cancelled() && !job.budget.cancel.is_cancelled() {
            verdict = BmcResult::Unknown("service cancelled".into());
        }
    }

    // Witness streaming: persist the trace and drop it from the
    // report. On a write error the in-memory trace is kept — a verdict
    // is never silently stripped of its evidence.
    let mut witness_path = None;
    let mut witness_steps = None;
    if let Some(dir) = &config.witness_dir {
        if let BmcResult::Reachable(slot @ Some(_)) = &mut verdict {
            let trace = slot.as_ref().expect("matched Some");
            if let Ok(path) = write_witness(dir, id, &job.name, trace) {
                witness_steps = Some(trace.len());
                witness_path = Some(path);
                *slot = None;
            }
        }
    }

    JobReport {
        job_id: id,
        name: job.name,
        model: job.model.name().to_string(),
        engines,
        verdict,
        bound,
        bounds_checked,
        bounds_skipped,
        winners,
        byte_cap,
        stats,
        certificate,
        witness_path,
        witness_steps,
        queue_wait,
        solve_time: run_start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebmc::Budget;
    use sebmc_model::builders::{shift_register, token_ring, traffic_light};

    #[test]
    fn single_engine_job_deepens_to_the_first_reachable_bound() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1));
        svc.submit(Job::new(shift_register(4), vec![EngineKind::Jsat], 8));
        let r = svc.run();
        assert_eq!(r.jobs.len(), 1);
        let j = &r.jobs[0];
        assert!(j.verdict.is_reachable());
        assert_eq!(j.bound, Some(4));
        assert_eq!(j.bounds_checked, 5, "bounds 0..=4 checked");
        assert_eq!(j.winners.len(), 5);
        assert!(j.stats.solver_effort > 0 || j.stats.bounds_checked == 5);
        assert_eq!(r.reachable, 1);
    }

    #[test]
    fn portfolio_job_races_bounds_and_reports_winners() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1));
        svc.submit(Job::new(
            token_ring(4),
            vec![EngineKind::Jsat, EngineKind::Unroll],
            6,
        ));
        let r = svc.run();
        let j = &r.jobs[0];
        assert!(j.verdict.is_reachable(), "{}", j.verdict);
        assert_eq!(j.bound, Some(3));
        assert_eq!(j.engines.len(), 2);
        // Every checked bound has a recorded winner.
        assert_eq!(j.winners.len(), j.bounds_checked);
        assert!(j
            .winners
            .iter()
            .all(|(_, e)| *e == "jsat" || *e == "sat-unroll"));
    }

    #[test]
    fn unreachable_sweep_is_reported_as_unreachable() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(2));
        svc.submit(Job::new(traffic_light(), vec![EngineKind::Unroll], 5));
        let r = svc.run();
        assert!(r.jobs[0].verdict.is_unreachable());
        assert_eq!(r.unreachable, 1);
    }

    #[test]
    fn admission_control_takes_the_min_of_job_and_service_caps() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1).with_max_job_bytes(10_000));
        svc.submit(
            Job::new(shift_register(4), vec![EngineKind::Unroll], 3)
                .with_budget(Budget::with_memory_bytes(50_000)),
        );
        svc.submit(
            Job::new(shift_register(4), vec![EngineKind::Unroll], 3)
                .with_budget(Budget::with_memory_bytes(5_000)),
        );
        let r = svc.run();
        assert_eq!(r.jobs[0].byte_cap, Some(10_000), "service cap tightens");
        assert_eq!(r.jobs[1].byte_cap, Some(5_000), "job cap kept when tighter");
    }

    #[test]
    fn budget_exhausted_jobs_are_reported_unknown_not_dropped() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1));
        // A byte cap far too small to encode bound 50.
        svc.submit(
            Job::new(shift_register(16), vec![EngineKind::Unroll], 50)
                .with_budget(Budget::with_memory_bytes(256)),
        );
        let r = svc.run();
        assert_eq!(r.jobs.len(), 1);
        assert!(r.jobs[0].verdict.is_unknown(), "{}", r.jobs[0].verdict);
        assert_eq!(r.unknown, 1);
    }

    #[test]
    fn per_job_cancellation_before_start_skips_the_job() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1));
        let job = Job::new(shift_register(4), vec![EngineKind::Jsat], 6);
        let token = job.budget.cancel_token();
        token.cancel();
        svc.submit(job);
        svc.submit(Job::new(token_ring(3), vec![EngineKind::Jsat], 4));
        let r = svc.run();
        assert_eq!(
            r.jobs[0].verdict,
            BmcResult::Unknown("cancelled".into()),
            "pre-cancelled job reported, not run"
        );
        assert_eq!(r.jobs[0].solve_time, Duration::ZERO);
        assert!(r.jobs[1].verdict.is_reachable(), "siblings unaffected");
    }

    #[test]
    fn service_cancellation_fails_the_remaining_queue() {
        let config = ServiceConfig::with_workers(1);
        config.cancel.cancel();
        let mut svc = CheckService::new(config);
        svc.submit(Job::new(token_ring(3), vec![EngineKind::Jsat], 4));
        let r = svc.run();
        assert_eq!(
            r.jobs[0].verdict,
            BmcResult::Unknown("service cancelled".into())
        );
    }

    /// Witness streaming (ROADMAP open item): with a witness dir the
    /// trace lands in an HWMCC-format file and the report carries only
    /// the path and length — no in-memory trace.
    #[test]
    fn witness_streaming_replaces_the_in_memory_trace() {
        let dir = std::env::temp_dir().join(format!("sebmc-wit-{}", std::process::id()));
        let mut svc = CheckService::new(ServiceConfig::with_workers(1).with_witness_dir(&dir));
        svc.submit(Job::new(shift_register(4), vec![EngineKind::Unroll], 6));
        svc.submit(Job::new(traffic_light(), vec![EngineKind::Unroll], 3));
        let r = svc.run();
        let j = &r.jobs[0];
        assert_eq!(j.verdict, BmcResult::Reachable(None), "trace dropped");
        assert_eq!(j.bound, Some(4));
        assert_eq!(j.witness_steps, Some(4));
        let path = j.witness_path.as_ref().expect("witness file path");
        let content = std::fs::read_to_string(path).expect("witness file exists");
        assert!(content.starts_with("1\nb0\n"), "HWMCC header: {content}");
        assert!(content.ends_with(".\n"));
        assert_eq!(
            content.lines().count(),
            2 + 1 + 4 + 1,
            "header + init + one input line per step + terminator"
        );
        // Unreachable jobs get no witness file.
        assert!(r.jobs[1].witness_path.is_none());
        let json = r.to_json();
        assert!(json.contains("\"witness_steps\":4"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A certified batch: every decided job carries a fully-certified
    /// certificate and the aggregate counts them.
    #[test]
    fn certified_jobs_carry_certificates() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(1));
        let budget = Budget::none().with_certify(true);
        svc.submit(
            Job::new(traffic_light(), vec![EngineKind::Unroll], 4).with_budget(budget.clone()),
        );
        svc.submit(
            Job::new(shift_register(4), vec![EngineKind::Jsat], 6).with_budget(budget.clone()),
        );
        // A portfolio job: the winners' chain certifies the verdict.
        svc.submit(
            Job::new(token_ring(4), vec![EngineKind::Jsat, EngineKind::Unroll], 6)
                .with_budget(budget),
        );
        let r = svc.run();
        for j in &r.jobs {
            let cert = j.certificate.as_ref().expect("certificate present");
            assert!(
                cert.fully_certified(),
                "job {} ({}): {cert:?}",
                j.job_id,
                j.name
            );
            assert_eq!(cert.bounds_attempted as usize, j.bounds_checked);
        }
        assert_eq!(r.jobs_certified, 3);
        assert!(r.certificate.as_ref().unwrap().fully_certified());
        assert!(r.total.peak_proof_bytes > 0, "proof bytes in the stats");
    }

    #[test]
    fn report_json_smoke() {
        let mut svc = CheckService::new(ServiceConfig::with_workers(2));
        for job in suite_jobs(true, &[EngineKind::Jsat], 2, &Budget::none()) {
            svc.submit(job);
        }
        let r = svc.run();
        assert_eq!(r.jobs.len(), 13);
        let json = r.to_json();
        assert!(json.contains("\"jobs_total\":13"));
        assert!(json.contains("\"workers\":2"));
    }
}
