//! The long-lived service handle: workers that outlive any one batch.
//!
//! PR 6's [`CheckService::run`](crate::CheckService::run) consumed the
//! service — submit everything, run, get one report, workers gone.
//! That shape cannot back a daemon. [`ServiceHandle`] inverts it: the
//! worker pool and the cancellation bridge start once
//! ([`ServiceHandle::start`]) and stay alive across jobs; submissions
//! ([`ServiceHandle::submit`]) return immediately with a job id;
//! finished reports are picked up as they land
//! ([`ServiceHandle::next_report`], [`ServiceHandle::try_take`]); and
//! the pool is torn down exactly once, by an explicit
//! [`ServiceHandle::shutdown`] that either drains the queue
//! ([`ShutdownMode::Graceful`]) or cancels it ([`ShutdownMode::Now`]).
//! Either way the PR 4 invariant stands: **every accepted job ends in
//! exactly one [`JobReport`]** — shutdown returns the reports nobody
//! collected.
//!
//! Scheduling is the priority/deadline/fairness/aging order of the
//! [queue module](crate::queue); admission keeps PR 6's
//! defer → downgrade → shed ladder, with the memory governor's FIFO
//! gate following *pickup* order (so with all-default priorities the
//! drills' semantics are bit-for-bit those of the old FIFO). When
//! [`ServiceConfig::result_cache_bytes`] is set, a submission whose
//! [`CacheKey`] matches a decided verdict is answered at submit time —
//! the report lands in the done set with `cached: true` and zero
//! solver effort, and no worker ever sees the job.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sebmc::model_fingerprint;

use crate::cache::{CacheKey, ResultCache};
use crate::job::{Job, RetryPolicy};
use crate::queue::{JobQueue, PendingJob};
use crate::report::JobReport;
use crate::{abort_report, lock_unpoisoned, process_job, BridgeSlot, MemGovernor, ServiceConfig};

/// Why a submission was refused (the job is handed back untouched
/// inside the error).
#[derive(Debug)]
pub enum SubmitError {
    /// The handle is shutting down (or already shut down); no new work
    /// is accepted.
    ShuttingDown(Box<Job>),
    /// The pending queue is at
    /// [`ServiceConfig::max_queue_depth`]; resubmit after the backlog
    /// drains.
    Overloaded(Box<Job>),
}

impl SubmitError {
    /// The refused job, handed back for resubmission.
    pub fn into_job(self) -> Job {
        match self {
            SubmitError::ShuttingDown(j) | SubmitError::Overloaded(j) => *j,
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::ShuttingDown(_) => write!(f, "shutting down"),
            SubmitError::Overloaded(_) => write!(f, "overloaded: queue full"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How [`ServiceHandle::shutdown`] treats work still in the system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShutdownMode {
    /// Stop accepting, *run every queued job to completion*, then stop
    /// the workers.
    Graceful,
    /// Stop accepting and fire the service cancel token: running jobs
    /// stop at their next safe point, queued jobs are reported
    /// `Unknown("service cancelled")` without running.
    Now,
}

/// Mutable scheduling state, all under one mutex so pickup decisions
/// (pop + governor enrollment + per-client accounting) are atomic.
struct QueueState {
    pending: JobQueue,
    /// Submissions accepted? Cleared by shutdown.
    accepting: bool,
    /// Workers exit once the queue is empty? Set by shutdown.
    draining: bool,
    /// Workers held back from picking up (batch mode: submit all, then
    /// release).
    paused: bool,
    next_id: usize,
    next_seq: u64,
    next_ticket: u64,
    /// Jobs currently on a worker, per client (the fairness input).
    running: HashMap<u64, usize>,
    /// Jobs currently on a worker, total.
    in_flight: usize,
    /// Highest pending-queue depth ever observed (always tracked, so
    /// [`crate::ServiceReport`] can publish it with or without
    /// telemetry).
    high_water: usize,
    /// Queue pops by *effective* (post-aging) priority level 0..=9.
    pops: [u64; 10],
}

/// Everything the workers, the bridge, and the handle share.
struct Shared {
    config: ServiceConfig,
    queue: Mutex<QueueState>,
    /// Signalled on submit/resume/shutdown and when a job finishes
    /// (for [`ServiceHandle::outstanding`] watchers).
    queue_cv: Condvar,
    /// Finished reports awaiting pickup, by job id.
    done: Mutex<HashMap<usize, JobReport>>,
    done_cv: Condvar,
    governor: MemGovernor,
    /// One cancellation-bridge slot per worker.
    slots: Vec<Mutex<Option<BridgeSlot>>>,
    stop_bridge: AtomicBool,
    cache: Option<Mutex<ResultCache>>,
}

/// A running checking service: a live worker pool behind a
/// submit/collect/shutdown API (see the module docs).
///
/// Dropping the handle without calling [`ServiceHandle::shutdown`]
/// shuts it down in [`ShutdownMode::Now`] (uncollected reports are
/// discarded); call `shutdown` yourself to keep them.
pub struct ServiceHandle {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    bridge: Mutex<Option<JoinHandle<()>>>,
}

impl ServiceHandle {
    /// Starts the worker pool and cancellation bridge; submissions are
    /// picked up immediately.
    pub fn start(config: ServiceConfig) -> Self {
        Self::start_inner(config, false)
    }

    /// Starts with pickup *paused*: jobs queue but no worker takes one
    /// until [`ServiceHandle::resume`]. This is how batch mode
    /// guarantees the scheduler and the memory governor see the whole
    /// batch before the first admission decision.
    pub fn start_paused(config: ServiceConfig) -> Self {
        Self::start_inner(config, true)
    }

    fn start_inner(config: ServiceConfig, paused: bool) -> Self {
        let workers = config.workers.max(1);
        let cache = config
            .result_cache_bytes
            .map(|b| Mutex::new(ResultCache::new(b)));
        let governor = MemGovernor::new(config.max_total_bytes);
        let slots = (0..workers).map(|_| Mutex::new(None)).collect();
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(QueueState {
                pending: JobQueue::default(),
                accepting: true,
                draining: false,
                paused,
                next_id: 0,
                next_seq: 0,
                next_ticket: 0,
                running: HashMap::new(),
                in_flight: 0,
                high_water: 0,
                pops: [0; 10],
            }),
            queue_cv: Condvar::new(),
            done: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            governor,
            slots,
            stop_bridge: AtomicBool::new(false),
            cache,
        });
        let mut pool = Vec::with_capacity(workers);
        for wid in 0..workers {
            let sh = Arc::clone(&shared);
            pool.push(
                thread::Builder::new()
                    .name(format!("sebmc-worker-{wid}"))
                    .spawn(move || worker_loop(&sh, wid))
                    .expect("spawn service worker"),
            );
        }
        let sh = Arc::clone(&shared);
        let bridge = thread::Builder::new()
            .name("sebmc-bridge".into())
            .spawn(move || bridge_loop(&sh))
            .expect("spawn cancellation bridge");
        ServiceHandle {
            shared,
            workers: Mutex::new(pool),
            bridge: Mutex::new(Some(bridge)),
        }
    }

    /// Releases a paused handle's workers.
    pub fn resume(&self) {
        lock_unpoisoned(&self.shared.queue).paused = false;
        self.shared.queue_cv.notify_all();
    }

    /// Submits a job and returns its id. A duplicate of a cached
    /// decided verdict is answered immediately (the report is already
    /// in the done set when this returns, `cached: true`).
    pub fn submit(&self, job: Job) -> Result<usize, SubmitError> {
        self.submit_for_client(job, 0)
    }

    /// [`ServiceHandle::submit`] on behalf of a specific client
    /// (client 0 is the in-process caller): the scheduler's fairness
    /// tie-break prefers clients with fewer jobs running.
    pub fn submit_for_client(&self, job: Job, client: u64) -> Result<usize, SubmitError> {
        self.submit_at(job, client, Instant::now())
    }

    /// Submission with an explicit queue-wait epoch (batch mode
    /// replays original submission times so wait accounting is
    /// unchanged).
    pub(crate) fn submit_at(
        &self,
        mut job: Job,
        client: u64,
        submitted: Instant,
    ) -> Result<usize, SubmitError> {
        let shared = &self.shared;
        if let Some(defaults) = &shared.config.retry_defaults {
            if job.retry == RetryPolicy::default() {
                job.retry = defaults.clone();
            }
        }
        // Fingerprinting walks the whole AIG — do it before taking the
        // queue lock.
        let cache_key = shared.cache.as_ref().map(|_| CacheKey {
            fingerprint: model_fingerprint(&job.model),
            semantics: job.semantics,
            max_bound: job.max_bound,
            certify: job.budget.certify,
            reduce: job.budget.reduce,
        });
        let telemetry = shared.config.telemetry.as_deref();
        let mut st = lock_unpoisoned(&shared.queue);
        if !st.accepting {
            if let Some(t) = telemetry {
                t.metrics.jobs_rejected.inc();
            }
            return Err(SubmitError::ShuttingDown(Box::new(job)));
        }
        if let Some(depth) = shared.config.max_queue_depth {
            if st.pending.len() >= depth {
                if let Some(t) = telemetry {
                    t.metrics.jobs_rejected.inc();
                }
                return Err(SubmitError::Overloaded(Box::new(job)));
            }
        }
        let id = st.next_id;
        st.next_id += 1;
        if let (Some(cache), Some(key)) = (&shared.cache, &cache_key) {
            if let Some(mut hit) = lock_unpoisoned(cache).lookup(key, id, &job.name) {
                hit.priority = job.priority;
                drop(st);
                if let Some(t) = telemetry {
                    t.metrics.jobs_submitted.inc();
                    t.metrics.jobs_cached.inc();
                    t.metrics.cache_hits.inc();
                    t.trace(
                        "cache_hit",
                        &[("job", id.into()), ("name", job.name.as_str().into())],
                    );
                }
                lock_unpoisoned(&shared.done).insert(id, hit);
                self.shared.done_cv.notify_all();
                return Ok(id);
            }
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        if let Some(t) = telemetry {
            t.metrics.jobs_submitted.inc();
            if cache_key.is_some() {
                t.metrics.cache_misses.inc();
            }
            t.trace(
                "submit",
                &[
                    ("job", id.into()),
                    ("name", job.name.as_str().into()),
                    ("priority", u64::from(job.priority).into()),
                    ("client", client.into()),
                ],
            );
        }
        st.pending.push(PendingJob {
            id,
            job,
            submitted,
            client,
            seq,
            cache_key,
        });
        let depth = st.pending.len();
        st.high_water = st.high_water.max(depth);
        if let Some(t) = telemetry {
            t.metrics.queue_depth.set(depth as u64);
            t.metrics.queue_depth_high_water.set_max(depth as u64);
        }
        drop(st);
        self.shared.queue_cv.notify_all();
        Ok(id)
    }

    /// Takes job `id`'s report if it has finished (non-blocking).
    pub fn try_take(&self, id: usize) -> Option<JobReport> {
        lock_unpoisoned(&self.shared.done).remove(&id)
    }

    /// Takes the finished report with the smallest job id, waiting up
    /// to `timeout` (`None` = forever) for one to land. Returns `None`
    /// on timeout — callers are responsible for only waiting
    /// indefinitely when a report is certain to arrive.
    pub fn next_report(&self, timeout: Option<Duration>) -> Option<JobReport> {
        self.wait_report(timeout, |done| done.keys().min().copied())
    }

    /// [`ServiceHandle::next_report`] restricted to the given ids.
    pub fn next_report_among(&self, ids: &[usize], timeout: Option<Duration>) -> Option<JobReport> {
        self.wait_report(timeout, |done| {
            ids.iter().copied().filter(|id| done.contains_key(id)).min()
        })
    }

    fn wait_report(
        &self,
        timeout: Option<Duration>,
        pick: impl Fn(&HashMap<usize, JobReport>) -> Option<usize>,
    ) -> Option<JobReport> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut done = lock_unpoisoned(&self.shared.done);
        loop {
            if let Some(id) = pick(&done) {
                return done.remove(&id);
            }
            match deadline {
                None => {
                    done = self
                        .shared
                        .done_cv
                        .wait(done)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return None;
                    }
                    done = self
                        .shared
                        .done_cv
                        .wait_timeout(done, left)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }

    /// Jobs queued but not yet picked up.
    pub fn pending(&self) -> usize {
        lock_unpoisoned(&self.shared.queue).pending.len()
    }

    /// Jobs not yet finished: pending plus in flight on a worker
    /// (collected and cache-answered reports are not counted).
    pub fn outstanding(&self) -> usize {
        let st = lock_unpoisoned(&self.shared.queue);
        st.pending.len() + st.in_flight
    }

    /// Whether submissions are still accepted (false once shutdown has
    /// begun).
    pub fn is_accepting(&self) -> bool {
        lock_unpoisoned(&self.shared.queue).accepting
    }

    /// `(hits, misses)` of the result cache, `None` when disabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.shared
            .cache
            .as_ref()
            .map(|c| lock_unpoisoned(c).stats())
    }

    /// Queue scheduling telemetry: the pending-queue's high-water mark
    /// and per-effective-priority pop counts (always tracked,
    /// independent of [`ServiceConfig::telemetry`]).
    pub fn queue_telemetry(&self) -> (usize, [u64; 10]) {
        let st = lock_unpoisoned(&self.shared.queue);
        (st.high_water, st.pops)
    }

    /// Stops the service and returns every finished-but-uncollected
    /// report, sorted by job id. Graceful mode runs the backlog to
    /// completion first; Now mode cancels it (every queued and running
    /// job still ends in a report — `Unknown("service cancelled")` for
    /// the ones that never got to run). Idempotent: a second call
    /// returns whatever landed since the first.
    pub fn shutdown(&self, mode: ShutdownMode) -> Vec<JobReport> {
        if mode == ShutdownMode::Now {
            self.shared.config.cancel.cancel();
        }
        {
            let mut st = lock_unpoisoned(&self.shared.queue);
            st.accepting = false;
            st.draining = true;
            st.paused = false;
        }
        self.shared.queue_cv.notify_all();
        let pool: Vec<_> = lock_unpoisoned(&self.workers).drain(..).collect();
        for w in pool {
            let _ = w.join();
        }
        self.shared.stop_bridge.store(true, Ordering::Relaxed);
        if let Some(b) = lock_unpoisoned(&self.bridge).take() {
            let _ = b.join();
        }
        let mut left: Vec<JobReport> = lock_unpoisoned(&self.shared.done)
            .drain()
            .map(|(_, r)| r)
            .collect();
        left.sort_by_key(|r| r.job_id);
        left
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if !lock_unpoisoned(&self.workers).is_empty() {
            self.shutdown(ShutdownMode::Now);
        }
    }
}

/// One worker: pick up → run supervised → publish the report. The
/// pickup block (pop, governor enrollment, per-client accounting) runs
/// under the queue lock so scheduling decisions are atomic.
fn worker_loop(shared: &Shared, wid: usize) {
    loop {
        let picked = {
            let mut st = lock_unpoisoned(&shared.queue);
            loop {
                if st.paused || (st.pending.is_empty() && !st.draining) {
                    st = shared
                        .queue_cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                    continue;
                }
                if st.pending.is_empty() {
                    return; // draining and nothing left: worker exits
                }
                let now = Instant::now();
                let QueueState {
                    pending, running, ..
                } = &mut *st;
                let Some(p) = pending.pop(now, shared.config.priority_aging, running) else {
                    continue;
                };
                let eff = p.effective_priority(now, shared.config.priority_aging);
                st.pops[usize::from(eff)] += 1;
                let ticket = st.next_ticket;
                st.next_ticket += 1;
                shared.governor.enroll(p.id, ticket);
                *st.running.entry(p.client).or_insert(0) += 1;
                st.in_flight += 1;
                if let Some(t) = shared.config.telemetry.as_deref() {
                    t.metrics.queue_pops[usize::from(eff)].inc();
                    t.metrics.queue_depth.set(st.pending.len() as u64);
                    t.metrics.jobs_in_flight.add(1);
                    t.trace(
                        "pop",
                        &[
                            ("job", p.id.into()),
                            ("client", p.client.into()),
                            ("eff_priority", u64::from(eff).into()),
                        ],
                    );
                }
                break p;
            }
        };
        let id = picked.id;
        let client = picked.client;
        let cache_key = picked.cache_key;
        let queue_wait = picked.submitted.elapsed();
        // Identity captured up front: if the *service layer* panics
        // outside the per-attempt containment, the job still gets a
        // report.
        let name = picked.job.name.clone();
        let model = picked.job.model.name().to_string();
        let engines: Vec<&'static str> = picked
            .job
            .engines
            .iter()
            .map(|e| e.build().name())
            .collect();
        let byte_cap = picked.job.budget.max_formula_bytes;
        let priority = picked.job.priority;
        let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_job(
                picked,
                &shared.config,
                &shared.slots[wid],
                &shared.governor,
                queue_wait,
            )
        }))
        .unwrap_or_else(|_| {
            let mut r = abort_report(
                id,
                name,
                model,
                engines,
                byte_cap,
                "service error: worker panicked outside attempt containment",
                queue_wait,
                0,
                priority,
            );
            r.quarantined = true;
            r
        });
        shared.governor.release(id);
        *lock_unpoisoned(&shared.slots[wid]) = None;
        let mut evicted = 0usize;
        if let (Some(cache), Some(key)) = (&shared.cache, cache_key) {
            evicted = lock_unpoisoned(cache).insert(key, &report);
        }
        if let Some(t) = shared.config.telemetry.as_deref() {
            t.metrics.jobs_completed.inc();
            t.metrics.jobs_in_flight.sub(1);
            t.metrics.cache_evictions.add(evicted as u64);
            t.metrics
                .queue_wait_ms
                .record(queue_wait.as_millis() as u64);
            t.metrics
                .solve_latency_ms
                .record(report.solve_time.as_millis() as u64);
            t.metrics
                .jobs_retried
                .add(u64::from(report.attempts.saturating_sub(1)));
            if report.quarantined {
                t.metrics.jobs_quarantined.inc();
            }
            if matches!(&report.verdict, sebmc::BmcResult::Unknown(r) if r == "shed: memory pressure")
            {
                t.metrics.jobs_shed.inc();
            }
            t.metrics
                .peak_arena_bytes
                .set_max(report.stats.peak_formula_bytes as u64);
            t.metrics
                .peak_watch_bytes
                .set_max(report.stats.peak_watch_bytes as u64);
            t.metrics
                .peak_proof_bytes
                .set_max(report.stats.peak_proof_bytes as u64);
        }
        {
            let mut st = lock_unpoisoned(&shared.queue);
            if let Some(n) = st.running.get_mut(&client) {
                *n -= 1;
                if *n == 0 {
                    st.running.remove(&client);
                }
            }
            st.in_flight -= 1;
        }
        // Wake outstanding() watchers and fellow workers alike.
        shared.queue_cv.notify_all();
        lock_unpoisoned(&shared.done).insert(id, report);
        shared.done_cv.notify_all();
    }
}

/// The cancellation bridge: every [`crate::BRIDGE_POLL`], fan service
/// cancellations, per-job cancellations, and governor sheds into the
/// running attempts' child tokens.
fn bridge_loop(shared: &Shared) {
    while !shared.stop_bridge.load(Ordering::Relaxed) {
        let service_cancelled = shared.config.cancel.is_cancelled();
        for slot in &shared.slots {
            let guard = lock_unpoisoned(slot);
            if let Some(s) = guard.as_ref() {
                if service_cancelled || s.job_token.is_cancelled() || s.shed.load(Ordering::Relaxed)
                {
                    s.child.cancel();
                }
            }
        }
        thread::sleep(crate::BRIDGE_POLL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::EngineKind;
    use sebmc::Budget;
    use sebmc_model::builders::traffic_light;
    use sebmc_telemetry::Telemetry;
    use std::io::Write;

    /// A `Write` the test reads back after the trace sink flushes.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock_unpoisoned(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn job(priority: u8) -> Job {
        Job::new(traffic_light(), vec![EngineKind::Jsat], 2).with_priority(priority)
    }

    fn num_field(line: &str, key: &str) -> u64 {
        let pat = format!("\"{key}\":");
        let at = line.find(&pat).expect("field present") + pat.len();
        line[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("numeric field")
    }

    /// `(job, eff_priority)` of every `"pop"` trace event, in order —
    /// the scheduler's actual pickup sequence, no timing involved.
    fn pop_order(buf: &SharedBuf) -> Vec<(usize, u64)> {
        let bytes = lock_unpoisoned(&buf.0).clone();
        String::from_utf8(bytes)
            .expect("trace is utf-8")
            .lines()
            .filter(|l| l.contains("\"ev\":\"pop\""))
            .map(|l| (num_field(l, "job") as usize, num_field(l, "eff_priority")))
            .collect()
    }

    #[test]
    fn aging_lifts_a_starved_job_to_the_front_of_pickup() {
        let buf = SharedBuf::default();
        let telemetry = Arc::new(Telemetry::with_trace_writer(Box::new(buf.clone())));
        let handle = ServiceHandle::start_paused(
            ServiceConfig::with_workers(1)
                .with_priority_aging(Duration::from_millis(250))
                .with_telemetry(Arc::clone(&telemetry)),
        );
        // Backdated 10 s: the priority-0 job has aged 0 → 9, so it
        // must outrank the fresh priority-8 job submitted after it.
        let starved = handle
            .submit_at(job(0), 0, Instant::now() - Duration::from_secs(10))
            .expect("accepts");
        let fresh = handle
            .submit_at(job(8), 0, Instant::now())
            .expect("accepts");
        handle.resume();
        handle.shutdown(ShutdownMode::Graceful);
        telemetry.flush();
        let order = pop_order(&buf);
        assert_eq!(
            order,
            vec![(starved, 9), (fresh, 8)],
            "aged 0→9 is picked before fresh 8"
        );
        let (high_water, pops) = handle.queue_telemetry();
        assert_eq!(high_water, 2, "both jobs queued while paused");
        assert_eq!(pops[9], 1, "the starved job popped at its aged level");
        assert_eq!(pops[8], 1);
        assert_eq!(pops.iter().sum::<u64>(), 2);
    }

    #[test]
    fn pickup_prefers_the_less_loaded_client_at_equal_priority() {
        let buf = SharedBuf::default();
        let telemetry = Arc::new(Telemetry::with_trace_writer(Box::new(buf.clone())));
        let handle = ServiceHandle::start(
            ServiceConfig::with_workers(2)
                .with_priority_aging(Duration::ZERO)
                .with_telemetry(Arc::clone(&telemetry)),
        );
        // Client 1 occupies a worker: its job stalls 500 ms at the
        // first engine safe point (the delay polls its cancel token,
        // so shutdown stays prompt even if assertions fail).
        let mut held_budget = Budget::none();
        held_budget.fault = "delay@engine:1:500".parse().expect("fault plan");
        let held = handle
            .submit_for_client(job(4).with_budget(held_budget), 1)
            .expect("accepts");
        // Wait (not sleep-and-hope) until it is actually on a worker.
        while lock_unpoisoned(&handle.shared.queue).in_flight == 0 {
            thread::yield_now();
        }
        // Hold pickup while both contenders queue, so the tie-break is
        // decided by load, not by arrival timing.
        lock_unpoisoned(&handle.shared.queue).paused = true;
        let same_client = handle.submit_for_client(job(4), 1).expect("accepts");
        let other_client = handle.submit_for_client(job(4), 2).expect("accepts");
        handle.resume();
        handle.shutdown(ShutdownMode::Graceful);
        telemetry.flush();
        let order: Vec<usize> = pop_order(&buf).into_iter().map(|(id, _)| id).collect();
        assert_eq!(
            order,
            vec![held, other_client, same_client],
            "with client 1 already running a job, client 2's equal-priority \
             submission wins the tie-break despite its later sequence number"
        );
    }
}
