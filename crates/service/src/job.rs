//! Jobs: what the service checks, and how job lists are described.
//!
//! A [`Job`] names one bounded-reachability question — a model, a
//! semantics, an engine selection, a bound range to deepen through,
//! and a [`Budget`]. Job lists can be built programmatically
//! ([`suite_jobs`] wraps the built-in benchmark suite) or parsed from
//! a plain-text job file ([`parse_job_file`], a thin wrapper around
//! [`JobSpec::parse_line`](crate::JobSpec::parse_line) — the same
//! [`JobSpec`](crate::JobSpec) that the CLI builds and the wire
//! protocol transmits).

use std::time::Duration;

use sebmc::{
    Budget, CancelToken, Engine, JSat, QbfBackend, QbfLinear, QbfSquaring, Semantics, UnrollSat,
};
use sebmc_model::{suite, Model};

/// The priority a job gets when none is specified: the middle of the
/// 0..=9 range, leaving headroom in both directions.
pub const DEFAULT_PRIORITY: u8 = 4;

/// The engines a job may select. Unlike `Box<dyn Engine>`, the kind is
/// `Copy` and buildable on any worker thread, which is what a queued
/// job needs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's special-purpose jSAT procedure (formula (4)).
    Jsat,
    /// Incrementally unrolled classical BMC (formulation (1)).
    Unroll,
    /// Linear QBF encoding on the QDPLL back-end (formulation (2)).
    QbfLinear,
    /// Iterative squaring on the expansion back-end (formulation (3)).
    QbfSquaring,
}

impl EngineKind {
    /// All engine kinds, in CLI order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Jsat,
        EngineKind::Unroll,
        EngineKind::QbfLinear,
        EngineKind::QbfSquaring,
    ];

    /// The CLI spelling of this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineKind::Jsat => "jsat",
            EngineKind::Unroll => "unroll",
            EngineKind::QbfLinear => "qbf-linear",
            EngineKind::QbfSquaring => "qbf-squaring",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Result<EngineKind, String> {
        match s {
            "jsat" => Ok(EngineKind::Jsat),
            "unroll" => Ok(EngineKind::Unroll),
            "qbf-linear" => Ok(EngineKind::QbfLinear),
            "qbf-squaring" => Ok(EngineKind::QbfSquaring),
            other => Err(format!(
                "unknown engine '{other}' (expected jsat|unroll|qbf-linear|qbf-squaring)"
            )),
        }
    }

    /// Parses a comma-separated engine list (at least one entry).
    pub fn parse_list(s: &str) -> Result<Vec<EngineKind>, String> {
        let kinds: Vec<EngineKind> = s
            .split(',')
            .filter(|p| !p.is_empty())
            .map(EngineKind::parse)
            .collect::<Result<_, _>>()?;
        if kinds.is_empty() {
            return Err("empty engine list".into());
        }
        Ok(kinds)
    }

    /// Instantiates the engine.
    pub fn build(&self) -> Box<dyn Engine + Send> {
        match self {
            EngineKind::Jsat => Box::new(JSat::default()),
            EngineKind::Unroll => Box::new(UnrollSat::default()),
            EngineKind::QbfLinear => Box::new(QbfLinear::new(QbfBackend::Qdpll)),
            EngineKind::QbfSquaring => Box::new(QbfSquaring::new(QbfBackend::Expansion)),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// When and how a failed job attempt is retried.
///
/// An attempt *fails* when the engine (or service plumbing) panics,
/// when a spurious cancellation fires the attempt's child token while
/// the job and service tokens are untouched, or when the per-attempt
/// deadline expires with job-level budget still left. Genuine verdicts
/// — decided bounds, job/service cancellations, exhausted job budgets —
/// are never retried.
///
/// Retries resume the deepening sweep at the first *undecided* bound
/// (bounds already decided by earlier attempts are not re-checked) and
/// run under the wall-clock budget *remaining* from the original
/// [`Budget`], so a job's attempts can never consume more than the
/// budget it was submitted with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first run included); clamped to at least 1.
    pub max_attempts: u32,
    /// Base backoff before attempt `n+1`: `backoff * 2^(n-1)` plus
    /// jitter. The backoff sleep polls the job/service cancel tokens,
    /// so a waiting job stays promptly cancellable.
    pub backoff: Duration,
    /// Seed of the deterministic backoff jitter (SplitMix64); equal
    /// seeds give equal retry schedules.
    pub jitter_seed: u64,
    /// Per-attempt wall-clock cap. An attempt cut short by this (with
    /// job budget remaining) is retried, not failed.
    pub attempt_timeout: Option<Duration>,
    /// Whole-job deadline measured from the moment a worker picks the
    /// job up, backoff included. Expiry is final, never retried.
    pub job_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::from_millis(10),
            jitter_seed: 0,
            attempt_timeout: None,
            job_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy with `retries` retries after the first attempt.
    pub fn with_retries(retries: u32) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            ..RetryPolicy::default()
        }
    }

    /// The backoff before the given retry (the delay between attempt
    /// `attempt` failing and attempt `attempt + 1` starting):
    /// exponential in the attempt number, plus up to 50% deterministic
    /// jitter derived from `jitter_seed` and the attempt.
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let base = self.backoff.saturating_mul(1u32 << shift);
        let mut rng =
            sebmc_logic::rng::SplitMix64::new(self.jitter_seed ^ u64::from(attempt) << 32);
        let jitter_ms = (base.as_millis() as u64 / 2).max(1);
        base + Duration::from_millis(rng.next_u64() % jitter_ms)
    }
}

/// One unit of service work: deepen `model` through bounds
/// `0..=max_bound` with the selected engines under `budget`.
///
/// One engine means a plain deepening session; several engines mean
/// **portfolio-level deepening** (every bound raced across live
/// sessions, first decided verdict shared).
///
/// The job's [`Budget::cancel`] token is the *per-job* kill switch:
/// keep a clone ([`Budget::cancel_token`]) before submitting and fire
/// it to abort just this job, whether it is still queued or already
/// running.
#[derive(Clone)]
pub struct Job {
    /// Free-form job label (defaults to the model name).
    pub name: String,
    /// The instance to check.
    pub model: Model,
    /// Exactly-`k` or within-`k` reachability.
    pub semantics: Semantics,
    /// Engine selection; two or more race per bound.
    pub engines: Vec<EngineKind>,
    /// Deepen bounds `0..=max_bound` (stopping at the first reachable).
    pub max_bound: usize,
    /// Per-job budget; the service may *lower* (never raise) its byte
    /// cap during admission.
    pub budget: Budget,
    /// Retry/deadline policy for failed attempts (default: one attempt,
    /// no deadlines).
    pub retry: RetryPolicy,
    /// Scheduling priority, `0` (lowest) ..= `9` (highest, default
    /// [`DEFAULT_PRIORITY`]). The queue ages waiting jobs upward so
    /// low-priority jobs cannot starve.
    pub priority: u8,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("model", &self.model.name())
            .field("semantics", &self.semantics)
            .field("engines", &self.engines)
            .field("max_bound", &self.max_bound)
            .field("budget", &self.budget)
            .finish()
    }
}

impl Job {
    /// A job named after its model, with `Semantics::Exactly` and no
    /// budget limits (fresh cancel token).
    pub fn new(model: Model, engines: Vec<EngineKind>, max_bound: usize) -> Self {
        Job {
            name: model.name().to_string(),
            model,
            semantics: Semantics::Exactly,
            engines,
            max_bound,
            budget: Budget::none(),
            retry: RetryPolicy::default(),
            priority: DEFAULT_PRIORITY,
        }
    }

    /// Returns `self` with the given budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Returns `self` with the given semantics.
    pub fn with_semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Returns `self` with the given retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns `self` with the given scheduling priority (clamped to
    /// 0..=9).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority.min(9);
        self
    }
}

/// Builds one job per model of the built-in benchmark suite
/// ([`suite::suite13`] or the small ground-truth variant).
///
/// Every job gets a *clone* of `budget` re-armed with a **fresh**
/// cancel token, so firing one job's token never aborts its siblings
/// (a cloned budget would share the flag).
pub fn suite_jobs(
    small: bool,
    engines: &[EngineKind],
    max_bound: usize,
    budget: &Budget,
) -> Vec<Job> {
    let models = if small {
        suite::suite13_small()
    } else {
        suite::suite13()
    };
    models
        .into_iter()
        .map(|m| {
            Job::new(m, engines.to_vec(), max_bound)
                .with_budget(budget.clone().with_cancel(CancelToken::new()))
        })
        .collect()
}

/// Looks a model up by name in the built-in suites (the small
/// ground-truth suite first, then the paper-scale one).
pub fn suite_model(name: &str) -> Option<Model> {
    suite::suite13_small()
        .into_iter()
        .chain(suite::suite13())
        .find(|m| m.name() == name)
}

/// Parses one job per non-comment line of a job file.
///
/// ```text
/// # model            engines        max-bound  options…
/// suite:ring_4       jsat,unroll    6          timeout-ms=5000
/// designs/foo.aag    jsat           20         mem-mb=64 within name=foo-smoke
/// ```
///
/// * `suite:<name>` resolves a built-in suite model by name
///   (`ring_4`, `shift_16`, `traffic`, …); anything else is read as an
///   AIGER file path.
/// * `engines` is a comma-separated subset of
///   `jsat|unroll|qbf-linear|qbf-squaring`; two or more race per bound.
/// * options: `timeout-ms=N`, `mem-mb=N` (budget), `within`
///   (within-`k` semantics), `certify` (machine-check every decided
///   bound), `name=<label>`, `priority=N` (scheduling priority 0–9),
///   `retries=N` (extra attempts after a failed first one),
///   `backoff-ms=N` (base retry backoff), `deadline-ms=N` (whole-job
///   deadline), `attempt-timeout-ms=N` (per-attempt cap), `no-reduce`
///   (skip the static model reduction normally applied at admission).
///
/// Each line parses to a [`crate::JobSpec`] — the same description the
/// CLI builds and the `sebmc serve` wire protocol transmits — and is
/// materialised with [`crate::JobSpec::into_job`]. Malformed lines are
/// errors (with their line number), never silently skipped.
pub fn parse_job_file(text: &str) -> Result<Vec<Job>, String> {
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let job = crate::JobSpec::parse_line(line)
            .and_then(crate::JobSpec::into_job)
            .map_err(|e| format!("job file line {}: {e}", lineno + 1))?;
        jobs.push(job);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_round_trips() {
        for k in EngineKind::ALL {
            assert_eq!(EngineKind::parse(k.as_str()), Ok(k));
            assert!(!k.build().name().is_empty());
        }
        assert!(EngineKind::parse("bdd").is_err());
        assert_eq!(
            EngineKind::parse_list("jsat,unroll").unwrap(),
            vec![EngineKind::Jsat, EngineKind::Unroll]
        );
        assert!(EngineKind::parse_list("").is_err());
    }

    #[test]
    fn suite_jobs_have_independent_cancel_tokens() {
        let jobs = suite_jobs(true, &[EngineKind::Jsat], 4, &Budget::none());
        assert_eq!(jobs.len(), 13);
        jobs[0].budget.cancel.cancel();
        assert!(!jobs[1].budget.cancel.is_cancelled());
    }

    #[test]
    fn job_file_parses_suite_models_and_options() {
        let text = "\
# a comment
suite:ring_4 jsat,unroll 6 timeout-ms=5000
suite:traffic unroll 3 within mem-mb=8 name=tl certify
";
        let jobs = parse_job_file(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].model.name(), "ring_4");
        assert_eq!(jobs[0].engines.len(), 2);
        assert_eq!(jobs[0].max_bound, 6);
        assert_eq!(jobs[0].budget.timeout, Some(Duration::from_millis(5000)));
        assert!(!jobs[0].budget.certify);
        assert_eq!(jobs[1].name, "tl");
        assert_eq!(jobs[1].semantics, Semantics::Within);
        assert_eq!(jobs[1].budget.max_formula_bytes, Some(8 * 1024 * 1024));
        assert!(jobs[1].budget.certify);
    }

    #[test]
    fn job_file_parses_retry_options() {
        let jobs = parse_job_file(
            "suite:ring_4 jsat 4 retries=2 deadline-ms=750 attempt-timeout-ms=100\n",
        )
        .unwrap();
        assert_eq!(jobs[0].retry.max_attempts, 3, "retries are extra attempts");
        assert_eq!(jobs[0].retry.job_deadline, Some(Duration::from_millis(750)));
        assert_eq!(
            jobs[0].retry.attempt_timeout,
            Some(Duration::from_millis(100))
        );
        assert!(parse_job_file("suite:ring_4 jsat 4 retries=x\n").is_err());
    }

    #[test]
    fn backoff_is_exponential_deterministic_and_jittered() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff: Duration::from_millis(8),
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        let a1 = p.backoff_before(1);
        let a3 = p.backoff_before(3);
        assert!(a1 >= Duration::from_millis(8) && a1 < Duration::from_millis(16));
        assert!(a3 >= Duration::from_millis(32) && a3 < Duration::from_millis(64));
        assert_eq!(a1, p.backoff_before(1), "same seed, same schedule");
        let other = RetryPolicy {
            jitter_seed: 8,
            ..p.clone()
        };
        // Different seeds may collide on one attempt, but not on all.
        assert!(
            (1..=3).any(|a| p.backoff_before(a) != other.backoff_before(a)),
            "jitter must depend on the seed"
        );
    }

    #[test]
    fn job_file_rejects_malformed_lines_with_line_numbers() {
        for (text, needle) in [
            ("suite:ring_4 jsat", "missing max bound"),
            ("suite:ring_4 bdd 4", "unknown engine"),
            ("suite:nope jsat 4", "no built-in suite model"),
            ("suite:ring_4 jsat four", "bad max bound"),
            ("suite:ring_4 jsat 4 frob=1", "unknown option"),
        ] {
            let err = parse_job_file(text).unwrap_err();
            assert!(err.contains("line 1"), "{err}");
            assert!(err.contains(needle), "{err} ~ {needle}");
        }
    }
}
