//! [`JobSpec`]: the single source of truth for describing a job.
//!
//! Historically the workspace had three divergent ways to construct a
//! [`Job`]: the builder methods on [`Job`] itself, the job-file line
//! options of [`parse_job_file`](crate::parse_job_file), and the
//! `sebmc batch` CLI flags. `JobSpec` collapses them: a job file line
//! parses to a `JobSpec`, the CLI builds a `JobSpec`, and the `sebmc
//! serve` wire protocol transmits a `JobSpec` as one line of JSON —
//! the same encode/decode everywhere. [`JobSpec::into_job`] is the one
//! place that resolves the model reference and materialises the
//! [`Job`] (always with a fresh cancel token).

use std::time::Duration;

use sebmc::{Budget, CancelToken, Semantics};
use sebmc_logic::json::{obj, Json};

use crate::job::{suite_model, EngineKind, Job, RetryPolicy, DEFAULT_PRIORITY};

/// A declarative job description: everything a [`Job`] needs except
/// the materialised model and cancel token.
///
/// The `model` field is a *reference*, not a model: `suite:<name>`
/// resolves a built-in suite model, anything else is read as an AIGER
/// file path (relative to the resolving process — for `sebmc serve`,
/// the daemon's working directory).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Job label; defaults to the resolved model's name when `None`.
    pub name: Option<String>,
    /// Model reference: `suite:<name>` or an AIGER file path.
    pub model: String,
    /// Engine selection; two or more race per bound.
    pub engines: Vec<EngineKind>,
    /// Deepen bounds `0..=max_bound`.
    pub max_bound: usize,
    /// Exactly-`k` or within-`k` reachability.
    pub semantics: Semantics,
    /// Scheduling priority, `0` (lowest) ..= `9` (highest); the queue
    /// ages waiting jobs upward so low priorities cannot starve.
    pub priority: u8,
    /// Wall-clock budget in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Per-session byte cap in mebibytes.
    pub mem_mb: Option<u64>,
    /// Machine-check every decided bound (DRAT certification).
    pub certify: bool,
    /// Run the static model reduction at admission (default `true`).
    pub reduce: bool,
    /// Extra attempts after a failed first one.
    pub retries: u32,
    /// Base retry backoff in milliseconds (`None` = policy default).
    pub backoff_ms: Option<u64>,
    /// Per-attempt wall-clock cap in milliseconds.
    pub attempt_timeout_ms: Option<u64>,
    /// Whole-job deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A spec for `model` with the given engines and bound, everything
    /// else at its default.
    pub fn new(model: impl Into<String>, engines: Vec<EngineKind>, max_bound: usize) -> Self {
        JobSpec {
            name: None,
            model: model.into(),
            engines,
            max_bound,
            semantics: Semantics::Exactly,
            priority: DEFAULT_PRIORITY,
            timeout_ms: None,
            mem_mb: None,
            certify: false,
            reduce: true,
            retries: 0,
            backoff_ms: None,
            attempt_timeout_ms: None,
            deadline_ms: None,
        }
    }

    /// Parses one job-file line (the `sebmc batch` format):
    ///
    /// ```text
    /// <model> <engines> <max-bound> [options…]
    /// ```
    ///
    /// Options: `within`, `certify`, `no-reduce`, `timeout-ms=N`,
    /// `mem-mb=N`, `name=<label>`, `priority=N` (0–9), `retries=N`,
    /// `backoff-ms=N`, `deadline-ms=N`, `attempt-timeout-ms=N`.
    pub fn parse_line(line: &str) -> Result<JobSpec, String> {
        let mut fields = line.split_whitespace();
        let model = fields.next().ok_or("missing model")?;
        let engines = EngineKind::parse_list(fields.next().ok_or("missing engine list")?)?;
        let bound_s = fields.next().ok_or("missing max bound")?;
        let max_bound: usize = bound_s
            .parse()
            .map_err(|_| format!("bad max bound '{bound_s}'"))?;
        let mut spec = JobSpec::new(model, engines, max_bound);
        for opt in fields {
            spec.apply_option(opt)?;
        }
        Ok(spec)
    }

    /// Applies one job-file option token (also used by the CLI to fold
    /// per-job overrides onto flag defaults).
    pub fn apply_option(&mut self, opt: &str) -> Result<(), String> {
        if opt == "within" {
            self.semantics = Semantics::Within;
        } else if opt == "certify" {
            self.certify = true;
        } else if opt == "no-reduce" {
            self.reduce = false;
        } else if let Some(v) = opt.strip_prefix("timeout-ms=") {
            self.timeout_ms = Some(v.parse().map_err(|_| format!("bad timeout-ms '{v}'"))?);
        } else if let Some(v) = opt.strip_prefix("mem-mb=") {
            self.mem_mb = Some(v.parse().map_err(|_| format!("bad mem-mb '{v}'"))?);
        } else if let Some(v) = opt.strip_prefix("name=") {
            self.name = Some(v.to_string());
        } else if let Some(v) = opt.strip_prefix("priority=") {
            let p: u8 = v.parse().map_err(|_| format!("bad priority '{v}'"))?;
            if p > 9 {
                return Err(format!("bad priority '{v}' (expected 0..=9)"));
            }
            self.priority = p;
        } else if let Some(v) = opt.strip_prefix("retries=") {
            self.retries = v.parse().map_err(|_| format!("bad retries '{v}'"))?;
        } else if let Some(v) = opt.strip_prefix("backoff-ms=") {
            self.backoff_ms = Some(v.parse().map_err(|_| format!("bad backoff-ms '{v}'"))?);
        } else if let Some(v) = opt.strip_prefix("deadline-ms=") {
            self.deadline_ms = Some(v.parse().map_err(|_| format!("bad deadline-ms '{v}'"))?);
        } else if let Some(v) = opt.strip_prefix("attempt-timeout-ms=") {
            self.attempt_timeout_ms = Some(
                v.parse()
                    .map_err(|_| format!("bad attempt-timeout-ms '{v}'"))?,
            );
        } else {
            return Err(format!("unknown option '{opt}'"));
        }
        Ok(())
    }

    /// Encodes the spec as the wire-protocol submission object. Fields
    /// at their defaults are omitted, so a minimal submission is
    /// `{"model":"suite:ring_4","engines":["jsat"],"max_bound":6}`.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = Vec::new();
        if let Some(n) = &self.name {
            fields.push(("name", Json::Str(n.clone())));
        }
        fields.push(("model", Json::Str(self.model.clone())));
        fields.push((
            "engines",
            Json::Arr(
                self.engines
                    .iter()
                    .map(|e| Json::Str(e.as_str().to_string()))
                    .collect(),
            ),
        ));
        #[allow(clippy::cast_precision_loss)]
        fields.push(("max_bound", Json::Num(self.max_bound as f64)));
        if self.semantics == Semantics::Within {
            fields.push(("semantics", Json::Str("within".into())));
        }
        if self.priority != DEFAULT_PRIORITY {
            fields.push(("priority", Json::Num(f64::from(self.priority))));
        }
        let num_u64 = |v: u64| {
            #[allow(clippy::cast_precision_loss)]
            Json::Num(v as f64)
        };
        if let Some(v) = self.timeout_ms {
            fields.push(("timeout_ms", num_u64(v)));
        }
        if let Some(v) = self.mem_mb {
            fields.push(("mem_mb", num_u64(v)));
        }
        if self.certify {
            fields.push(("certify", Json::Bool(true)));
        }
        if !self.reduce {
            fields.push(("reduce", Json::Bool(false)));
        }
        if self.retries > 0 {
            fields.push(("retries", Json::Num(f64::from(self.retries))));
        }
        if let Some(v) = self.backoff_ms {
            fields.push(("backoff_ms", num_u64(v)));
        }
        if let Some(v) = self.attempt_timeout_ms {
            fields.push(("attempt_timeout_ms", num_u64(v)));
        }
        if let Some(v) = self.deadline_ms {
            fields.push(("deadline_ms", num_u64(v)));
        }
        obj(fields)
    }

    /// Decodes a wire-protocol submission object.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let model = v
            .get("model")
            .and_then(Json::as_str)
            .ok_or("missing 'model'")?;
        let engines_v = v
            .get("engines")
            .and_then(Json::as_arr)
            .ok_or("missing 'engines'")?;
        let mut engines = Vec::with_capacity(engines_v.len());
        for e in engines_v {
            engines.push(EngineKind::parse(e.as_str().ok_or("bad engine entry")?)?);
        }
        if engines.is_empty() {
            return Err("empty engine list".into());
        }
        let max_bound = v
            .get("max_bound")
            .and_then(Json::as_u64)
            .ok_or("missing 'max_bound'")? as usize;
        let mut spec = JobSpec::new(model, engines, max_bound);
        spec.name = v.get("name").and_then(Json::as_str).map(String::from);
        match v.get("semantics").and_then(Json::as_str) {
            None | Some("exactly") => {}
            Some("within") => spec.semantics = Semantics::Within,
            Some(other) => return Err(format!("unknown semantics '{other}'")),
        }
        if let Some(p) = v.get("priority") {
            let p = p.as_u64().ok_or("bad priority")?;
            if p > 9 {
                return Err(format!("bad priority '{p}' (expected 0..=9)"));
            }
            spec.priority = p as u8;
        }
        let field_u64 = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(x) => x.as_u64().map(Some).ok_or(format!("bad {key}")),
            }
        };
        spec.timeout_ms = field_u64("timeout_ms")?;
        spec.mem_mb = field_u64("mem_mb")?;
        spec.backoff_ms = field_u64("backoff_ms")?;
        spec.attempt_timeout_ms = field_u64("attempt_timeout_ms")?;
        spec.deadline_ms = field_u64("deadline_ms")?;
        if let Some(c) = v.get("certify") {
            spec.certify = c.as_bool().ok_or("bad certify")?;
        }
        if let Some(r) = v.get("reduce") {
            spec.reduce = r.as_bool().ok_or("bad reduce")?;
        }
        if let Some(r) = field_u64("retries")? {
            spec.retries = u32::try_from(r).map_err(|_| "bad retries")?;
        }
        Ok(spec)
    }

    /// Resolves the model reference and materialises the [`Job`]
    /// (fresh cancel token; budget and retry policy built from the
    /// spec's fields).
    pub fn into_job(self) -> Result<Job, String> {
        let model = if let Some(name) = self.model.strip_prefix("suite:") {
            suite_model(name).ok_or_else(|| format!("no built-in suite model named '{name}'"))?
        } else {
            let bytes = std::fs::read(&self.model)
                .map_err(|e| format!("cannot read AIGER file '{}': {e}", self.model))?;
            let file =
                sebmc_aiger::parse_auto(&bytes).map_err(|e| format!("'{}': {e}", self.model))?;
            sebmc_aiger::aiger_to_model(&file, &self.model)
                .map_err(|e| format!("'{}': {e}", self.model))?
        };
        let mut budget = Budget::none().with_cancel(CancelToken::new());
        budget.timeout = self.timeout_ms.map(Duration::from_millis);
        budget.max_formula_bytes = self.mem_mb.map(|mb| (mb as usize) * 1024 * 1024);
        budget.certify = self.certify;
        budget.reduce = self.reduce;
        let defaults = RetryPolicy::default();
        let retry = RetryPolicy {
            max_attempts: self.retries.saturating_add(1),
            backoff: self
                .backoff_ms
                .map_or(defaults.backoff, Duration::from_millis),
            attempt_timeout: self.attempt_timeout_ms.map(Duration::from_millis),
            job_deadline: self.deadline_ms.map(Duration::from_millis),
            ..defaults
        };
        let mut job = Job::new(model, self.engines, self.max_bound)
            .with_semantics(self.semantics)
            .with_budget(budget)
            .with_retry(retry)
            .with_priority(self.priority);
        if let Some(name) = self.name {
            job.name = name;
        }
        Ok(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_json_and_job_agree() {
        let line = "suite:ring_4 jsat,unroll 6 within certify priority=7 timeout-ms=5000 \
                    mem-mb=8 name=smoke retries=2 backoff-ms=5 deadline-ms=750 \
                    attempt-timeout-ms=100";
        let spec = JobSpec::parse_line(line).unwrap();
        assert_eq!(spec.priority, 7);
        assert_eq!(spec.retries, 2);
        // Wire round-trip is lossless.
        let wire = spec.to_json().to_string();
        let back = JobSpec::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, spec);
        // The materialised job carries every option.
        let job = back.into_job().unwrap();
        assert_eq!(job.name, "smoke");
        assert_eq!(job.model.name(), "ring_4");
        assert_eq!(job.semantics, Semantics::Within);
        assert_eq!(job.priority, 7);
        assert_eq!(job.budget.timeout, Some(Duration::from_millis(5000)));
        assert_eq!(job.budget.max_formula_bytes, Some(8 * 1024 * 1024));
        assert!(job.budget.certify);
        assert_eq!(job.retry.max_attempts, 3);
        assert_eq!(job.retry.backoff, Duration::from_millis(5));
        assert_eq!(job.retry.job_deadline, Some(Duration::from_millis(750)));
        assert_eq!(job.retry.attempt_timeout, Some(Duration::from_millis(100)));
    }

    #[test]
    fn minimal_wire_submission_defaults() {
        let v =
            Json::parse(r#"{"model":"suite:ring_4","engines":["jsat"],"max_bound":6}"#).unwrap();
        let spec = JobSpec::from_json(&v).unwrap();
        assert_eq!(
            spec,
            JobSpec::new("suite:ring_4", vec![EngineKind::Jsat], 6)
        );
        assert_eq!(spec.priority, DEFAULT_PRIORITY);
        assert!(spec.reduce);
    }

    #[test]
    fn rejects_bad_specs() {
        for (line, needle) in [
            ("suite:ring_4 jsat", "missing max bound"),
            ("suite:ring_4 bdd 4", "unknown engine"),
            ("suite:ring_4 jsat four", "bad max bound"),
            ("suite:ring_4 jsat 4 priority=12", "bad priority"),
            ("suite:ring_4 jsat 4 frob=1", "unknown option"),
        ] {
            let err = JobSpec::parse_line(line).unwrap_err();
            assert!(err.contains(needle), "{err} ~ {needle}");
        }
        assert!(JobSpec::parse_line("suite:nope jsat 4")
            .unwrap()
            .into_job()
            .unwrap_err()
            .contains("no built-in suite model"));
        for (wire, needle) in [
            (r#"{"engines":["jsat"],"max_bound":4}"#, "missing 'model'"),
            (
                r#"{"model":"suite:ring_4","max_bound":4}"#,
                "missing 'engines'",
            ),
            (
                r#"{"model":"suite:ring_4","engines":[],"max_bound":4}"#,
                "empty engine list",
            ),
            (
                r#"{"model":"suite:ring_4","engines":["jsat"]}"#,
                "missing 'max_bound'",
            ),
            (
                r#"{"model":"suite:ring_4","engines":["jsat"],"max_bound":4,"priority":11}"#,
                "bad priority",
            ),
        ] {
            let err = JobSpec::from_json(&Json::parse(wire).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{err} ~ {needle}");
        }
    }
}
